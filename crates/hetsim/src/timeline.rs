//! Event-driven virtual-time execution of task graphs on the simulated
//! platform.
//!
//! Models CUDA-stream semantics: every *resource* (a device's compute queue,
//! or one of its copy engines) executes its tasks in submission order; a
//! task additionally waits for its cross-resource dependencies. Accelerators
//! with a single copy engine serialize host→device and device→host transfers
//! on the same queue; dual-engine devices run them concurrently — exactly
//! the §III-A distinction FEVES exploits when it overlaps `SF(RF)→SME` with
//! `CF→SME` transfers.

use crate::device::{CopyEngines, DeviceId, DeviceKind};
use crate::noise::DurationModel;
use crate::platform::Platform;
use feves_codec::types::Module;
use serde::{Deserialize, Serialize};

/// Handle to a task in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// Transfer direction across an accelerator link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Host → device.
    H2d,
    /// Device → host.
    D2h,
}

/// Which logical buffer a transfer moves (the paper's CF/RF/SF/MV streams);
/// used by performance characterization to attribute measured bandwidths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferTag {
    /// Current-frame stripe.
    Cf,
    /// Reconstructed reference-frame stripe.
    Rf,
    /// Sub-pixel-frame stripe.
    Sf,
    /// Motion vectors.
    Mv,
}

/// What a task does.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskKind {
    /// Kernel execution of `units` work units of `module` on `device`.
    Compute {
        /// Executing device.
        device: DeviceId,
        /// Inter-loop module the kernel belongs to.
        module: Module,
        /// Work units (see [`feves_codec::workload`]).
        units: f64,
    },
    /// DMA transfer of `bytes` in `dir` on `device`'s link.
    Transfer {
        /// Owning accelerator.
        device: DeviceId,
        /// Direction.
        dir: Dir,
        /// Payload size.
        bytes: usize,
        /// Logical buffer.
        tag: TransferTag,
    },
    /// Zero-duration marker used for synchronization points (τ1, τ2, …).
    Barrier,
}

/// A node of the task graph.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Action.
    pub kind: TaskKind,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
    /// Diagnostic label (e.g. `"ME dev1 rows 10..24"`).
    pub label: String,
}

/// A DAG of compute/transfer tasks, built per encoded frame by the Video
/// Coding Manager.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Add a compute task.
    pub fn compute(
        &mut self,
        device: DeviceId,
        module: Module,
        units: f64,
        deps: Vec<TaskId>,
        label: impl Into<String>,
    ) -> TaskId {
        self.push(
            TaskKind::Compute {
                device,
                module,
                units,
            },
            deps,
            label,
        )
    }

    /// Add a transfer task.
    pub fn transfer(
        &mut self,
        device: DeviceId,
        dir: Dir,
        bytes: usize,
        tag: TransferTag,
        deps: Vec<TaskId>,
        label: impl Into<String>,
    ) -> TaskId {
        self.push(
            TaskKind::Transfer {
                device,
                dir,
                bytes,
                tag,
            },
            deps,
            label,
        )
    }

    /// Add a zero-cost synchronization barrier over `deps`.
    pub fn barrier(&mut self, deps: Vec<TaskId>, label: impl Into<String>) -> TaskId {
        self.push(TaskKind::Barrier, deps, label)
    }

    fn push(&mut self, kind: TaskKind, deps: Vec<TaskId>, label: impl Into<String>) -> TaskId {
        for d in &deps {
            assert!(d.0 < self.tasks.len(), "dependency on future task");
        }
        self.tasks.push(TaskSpec {
            kind,
            deps,
            label: label.into(),
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Task accessor.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.0]
    }

    /// Iterate over all tasks in submission order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskSpec)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }
}

/// Result of simulating a [`TaskGraph`]: per-task start/finish times on the
/// virtual clock, in seconds.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time of each task.
    pub start: Vec<f64>,
    /// Finish time of each task.
    pub finish: Vec<f64>,
    /// Maximum finish time (the frame's τtot when simulating one frame).
    pub makespan: f64,
}

impl Schedule {
    /// Duration of task `id`.
    pub fn duration(&self, id: TaskId) -> f64 {
        self.finish[id.0] - self.start[id.0]
    }

    /// Finish time of task `id`.
    pub fn finish_of(&self, id: TaskId) -> f64 {
        self.finish[id.0]
    }
}

/// Errors from [`simulate`].
#[derive(Debug, PartialEq, Eq)]
pub enum SimError {
    /// The graph references a device the platform does not have, or a
    /// transfer targets a CPU core.
    BadDevice(String),
    /// Queue ordering + dependencies deadlock (cyclic wait).
    Deadlock(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadDevice(m) => write!(f, "bad device: {m}"),
            SimError::Deadlock(m) => write!(f, "deadlock: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulate `graph` on `platform`.
///
/// `speed_mult[d]` scales device `d`'s compute speed for this simulation
/// (1.0 nominal; 0.5 = half speed — the Fig 7 perturbation hook).
/// `durations` injects measurement noise (see [`crate::noise`]).
pub fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    speed_mult: &[f64],
    durations: &mut dyn DurationModel,
) -> Result<Schedule, SimError> {
    let n = graph.len();
    let nd = platform.devices.len();
    if speed_mult.len() != nd {
        return Err(SimError::BadDevice(format!(
            "speed_mult has {} entries for {} devices",
            speed_mult.len(),
            nd
        )));
    }

    // Resource table: compute queue per device, plus copy-engine queues,
    // plus a second kernel stream per accelerator. GPUs since Fermi execute
    // independent kernels concurrently; FEVES routes INT there so ME ∥ INT
    // — the "parallelism across independent modules" of §III-B that the
    // Algorithm 2 constraints assume. CPU cores keep a single queue (the
    // paper's constraint (2) sums ME and INT time on a core).
    let mut copy_engine_of = vec![[usize::MAX; 2]; nd]; // [h2d, d2h] resource ids
    let mut int_stream_of = vec![usize::MAX; nd]; // secondary kernel stream
    let mut next_res = nd;
    let shared_bus: Option<[usize; 2]> = if platform.shared_host_link {
        // One full-duplex bus shared by every accelerator.
        let bus = [next_res, next_res + 1];
        next_res += 2;
        Some(bus)
    } else {
        None
    };
    for (d, dev) in platform.devices.iter().enumerate() {
        match dev.kind {
            DeviceKind::CpuCore => {}
            DeviceKind::Accelerator(engines) => {
                if let Some(bus) = shared_bus {
                    copy_engine_of[d] = bus;
                    int_stream_of[d] = next_res;
                    next_res += 1;
                } else {
                    match engines {
                        CopyEngines::Single => {
                            copy_engine_of[d] = [next_res, next_res];
                            int_stream_of[d] = next_res + 1;
                            next_res += 2;
                        }
                        CopyEngines::Dual => {
                            copy_engine_of[d] = [next_res, next_res + 1];
                            int_stream_of[d] = next_res + 2;
                            next_res += 3;
                        }
                    }
                }
            }
        }
    }
    let n_res = next_res;

    // Assign each task to a resource and compute its base duration.
    let mut resource_of = vec![usize::MAX; n];
    let mut base = vec![0.0f64; n];
    for (id, t) in graph.iter() {
        match &t.kind {
            TaskKind::Compute {
                device,
                module,
                units,
            } => {
                let d = device.0;
                if d >= nd {
                    return Err(SimError::BadDevice(format!(
                        "device {d} of task {}",
                        t.label
                    )));
                }
                // INT runs on the accelerator's secondary kernel stream,
                // concurrent with ME (see resource table above).
                resource_of[id.0] =
                    if matches!(module, Module::Interp) && int_stream_of[d] != usize::MAX {
                        int_stream_of[d]
                    } else {
                        d
                    };
                base[id.0] = platform.devices[d].compute_time(*module, *units, speed_mult[d]);
            }
            TaskKind::Transfer {
                device, dir, bytes, ..
            } => {
                let d = device.0;
                if d >= nd {
                    return Err(SimError::BadDevice(format!(
                        "device {d} of task {}",
                        t.label
                    )));
                }
                let Some(link) = platform.devices[d].link else {
                    return Err(SimError::BadDevice(format!(
                        "transfer {} on link-less device {d}",
                        t.label
                    )));
                };
                let engine = match dir {
                    Dir::H2d => copy_engine_of[d][0],
                    Dir::D2h => copy_engine_of[d][1],
                };
                resource_of[id.0] = engine;
                base[id.0] = link.transfer_time(*bytes, matches!(dir, Dir::H2d));
            }
            TaskKind::Barrier => {
                // Barriers occupy no resource; handled specially below.
            }
        }
    }

    // Apply the duration model (noise) once per task, in submission order,
    // so results are deterministic for a given seed.
    for (id, t) in graph.iter() {
        if !matches!(t.kind, TaskKind::Barrier) {
            base[id.0] = durations.duration(t, base[id.0]);
        }
    }

    // Build per-resource FIFO queues in submission order.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n_res];
    for (id, t) in graph.iter() {
        if !matches!(t.kind, TaskKind::Barrier) {
            queues[resource_of[id.0]].push(id.0);
        }
    }

    // Discrete simulation: repeatedly start the queue-head whose deps are
    // all finished; barriers resolve as soon as their deps do.
    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    let mut head = vec![0usize; n_res];
    let mut res_free = vec![0.0f64; n_res];
    let mut done = vec![false; n];
    let mut n_done = 0usize;

    let deps_ready = |task: usize, done: &[bool]| graph.tasks[task].deps.iter().all(|d| done[d.0]);
    let deps_finish = |task: usize, finish: &[f64]| {
        graph.tasks[task]
            .deps
            .iter()
            .fold(0.0f64, |acc, d| acc.max(finish[d.0]))
    };

    while n_done < n {
        let mut progressed = false;

        // Resolve all ready barriers first (zero duration).
        for (i, t) in graph.tasks.iter().enumerate() {
            if !done[i] && matches!(t.kind, TaskKind::Barrier) && deps_ready(i, &done) {
                let at = deps_finish(i, &finish);
                start[i] = at;
                finish[i] = at;
                done[i] = true;
                n_done += 1;
                progressed = true;
            }
        }

        // Among resource heads whose deps are done, pick the one that can
        // start earliest (deterministic tie-break: lowest resource id).
        let mut pick: Option<(usize, usize, f64)> = None; // (res, task, start)
        for r in 0..n_res {
            if head[r] >= queues[r].len() {
                continue;
            }
            let task = queues[r][head[r]];
            if !deps_ready(task, &done) {
                continue;
            }
            let s = res_free[r].max(deps_finish(task, &finish));
            match pick {
                None => pick = Some((r, task, s)),
                Some((_, _, ps)) if s < ps - 1e-15 => pick = Some((r, task, s)),
                _ => {}
            }
        }
        if let Some((r, task, s)) = pick {
            start[task] = s;
            finish[task] = s + base[task];
            res_free[r] = finish[task];
            head[r] += 1;
            done[task] = true;
            n_done += 1;
            progressed = true;
        }

        if !progressed && n_done < n {
            let stuck: Vec<&str> = graph
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .map(|(_, t)| t.label.as_str())
                .take(5)
                .collect();
            return Err(SimError::Deadlock(format!(
                "{} tasks stuck, e.g. {:?}",
                n - n_done,
                stuck
            )));
        }
    }

    let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    Ok(Schedule {
        start,
        finish,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::Deterministic;
    use crate::platform::Platform;
    use crate::profiles::{cpu_nehalem, gpu_fermi, gpu_kepler};

    fn platform_nf() -> Platform {
        Platform::build(vec![gpu_fermi()], &cpu_nehalem(), 1)
    }

    #[test]
    fn sequential_chain_sums_durations() {
        let p = platform_nf();
        let mut g = TaskGraph::new();
        let gpu = DeviceId(0);
        let a = g.compute(gpu, Module::Me, 1024.0 * 120.0, vec![], "me row");
        let b = g.compute(gpu, Module::Sme, 120.0, vec![a], "sme row");
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        assert!(sched.start[1] >= sched.finish[0] - 1e-15);
        assert!((sched.makespan - (sched.duration(a) + sched.duration(b))).abs() < 1e-12);
    }

    #[test]
    fn independent_devices_overlap() {
        let p = Platform::build(vec![gpu_fermi(), gpu_kepler()], &cpu_nehalem(), 1);
        let mut g = TaskGraph::new();
        let t0 = g.compute(DeviceId(0), Module::Me, 1.0e6, vec![], "me f");
        let t1 = g.compute(DeviceId(1), Module::Me, 1.0e6, vec![], "me k");
        let sched = simulate(&g, &p, &[1.0; 3], &mut Deterministic).unwrap();
        // Both start at 0: true parallelism.
        assert_eq!(sched.start[t0.0], 0.0);
        assert_eq!(sched.start[t1.0], 0.0);
        assert!(sched.makespan < sched.duration(t0) + sched.duration(t1));
    }

    #[test]
    fn single_copy_engine_serializes_directions() {
        let p = platform_nf(); // Fermi: single engine
        let mut g = TaskGraph::new();
        let gpu = DeviceId(0);
        let up = g.transfer(gpu, Dir::H2d, 10_000_000, TransferTag::Cf, vec![], "cf up");
        let down = g.transfer(
            gpu,
            Dir::D2h,
            10_000_000,
            TransferTag::Sf,
            vec![],
            "sf down",
        );
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        assert!(
            sched.start[down.0] >= sched.finish[up.0] - 1e-15,
            "single engine must serialize H2D and D2H"
        );
    }

    #[test]
    fn dual_copy_engine_overlaps_directions() {
        let p = Platform::build(vec![gpu_kepler()], &cpu_nehalem(), 1);
        let mut g = TaskGraph::new();
        let gpu = DeviceId(0);
        let up = g.transfer(gpu, Dir::H2d, 10_000_000, TransferTag::Cf, vec![], "cf up");
        let down = g.transfer(
            gpu,
            Dir::D2h,
            10_000_000,
            TransferTag::Sf,
            vec![],
            "sf down",
        );
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        assert_eq!(sched.start[up.0], 0.0);
        assert_eq!(sched.start[down.0], 0.0, "dual engines overlap directions");
    }

    #[test]
    fn compute_overlaps_transfer_on_accelerator() {
        let p = platform_nf();
        let mut g = TaskGraph::new();
        let gpu = DeviceId(0);
        let k = g.compute(gpu, Module::Me, 2.0e6, vec![], "kernel");
        let t = g.transfer(
            gpu,
            Dir::H2d,
            20_000_000,
            TransferTag::Sf,
            vec![],
            "prefetch",
        );
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        assert_eq!(sched.start[k.0], 0.0);
        assert_eq!(sched.start[t.0], 0.0, "kernel and DMA run concurrently");
    }

    #[test]
    fn speed_multiplier_slows_device() {
        let p = platform_nf();
        let mut g = TaskGraph::new();
        let t = g.compute(DeviceId(0), Module::Me, 1.0e6, vec![], "me");
        let fast = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        let slow = simulate(&g, &p, &[0.5, 1.0], &mut Deterministic).unwrap();
        assert!((slow.duration(t) - 2.0 * fast.duration(t)).abs() < 1e-12);
    }

    #[test]
    fn barrier_resolves_at_max_dep_finish() {
        let p = platform_nf();
        let mut g = TaskGraph::new();
        let a = g.compute(DeviceId(0), Module::Me, 1.0e6, vec![], "a");
        let b = g.compute(DeviceId(1), Module::Me, 5.0e5, vec![], "b");
        let tau = g.barrier(vec![a, b], "tau1");
        let c = g.compute(DeviceId(1), Module::Sme, 100.0, vec![tau], "c");
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        let expect = sched.finish[a.0].max(sched.finish[b.0]);
        assert_eq!(sched.finish[tau.0], expect);
        assert!(sched.start[c.0] >= expect);
    }

    #[test]
    fn transfer_on_cpu_core_is_error() {
        let p = platform_nf();
        let mut g = TaskGraph::new();
        g.transfer(DeviceId(1), Dir::H2d, 100, TransferTag::Cf, vec![], "bogus");
        assert!(matches!(
            simulate(&g, &p, &[1.0, 1.0], &mut Deterministic),
            Err(SimError::BadDevice(_))
        ));
    }

    #[test]
    fn fifo_order_respected_within_resource() {
        // Second-submitted kernel cannot start before the first, even if its
        // deps clear earlier.
        let p = platform_nf();
        let mut g = TaskGraph::new();
        let gpu = DeviceId(0);
        let slow_dep = g.compute(DeviceId(1), Module::Me, 2.0e6, vec![], "cpu dep");
        let k1 = g.compute(gpu, Module::Me, 1.0e6, vec![slow_dep], "k1 (waits)");
        let k2 = g.compute(gpu, Module::Sme, 10.0, vec![], "k2 (queued after)");
        let sched = simulate(&g, &p, &[1.0, 1.0], &mut Deterministic).unwrap();
        assert!(
            sched.start[k2.0] >= sched.finish[k1.0] - 1e-15,
            "stream order: k2 queued behind k1"
        );
    }
}

#[cfg(test)]
mod shared_bus_tests {
    use super::*;
    use crate::noise::Deterministic;
    use crate::platform::Platform;
    use crate::profiles::{cpu_nehalem, gpu_kepler};

    #[test]
    fn shared_bus_serializes_cross_device_transfers() {
        let dedicated = Platform::build(vec![gpu_kepler(), gpu_kepler()], &cpu_nehalem(), 1);
        let shared = dedicated.clone().with_shared_host_link();
        let mut g = TaskGraph::new();
        let a = g.transfer(
            DeviceId(0),
            Dir::H2d,
            20_000_000,
            TransferTag::Sf,
            vec![],
            "a",
        );
        let b = g.transfer(
            DeviceId(1),
            Dir::H2d,
            20_000_000,
            TransferTag::Sf,
            vec![],
            "b",
        );
        let sd = simulate(
            &g,
            &dedicated,
            &dedicated.nominal_speeds(),
            &mut Deterministic,
        )
        .unwrap();
        let ss = simulate(&g, &shared, &shared.nominal_speeds(), &mut Deterministic).unwrap();
        // Dedicated links overlap fully; the shared bus serializes.
        assert_eq!(sd.start[a.0], 0.0);
        assert_eq!(sd.start[b.0], 0.0);
        assert!(
            ss.start[b.0] >= ss.finish[a.0] - 1e-12,
            "bus must serialize"
        );
        assert!(ss.makespan > sd.makespan * 1.8);
    }

    #[test]
    fn shared_bus_is_full_duplex() {
        let shared = Platform::build(vec![gpu_kepler(), gpu_kepler()], &cpu_nehalem(), 1)
            .with_shared_host_link();
        let mut g = TaskGraph::new();
        let up = g.transfer(
            DeviceId(0),
            Dir::H2d,
            20_000_000,
            TransferTag::Sf,
            vec![],
            "up",
        );
        let down = g.transfer(
            DeviceId(1),
            Dir::D2h,
            20_000_000,
            TransferTag::Sf,
            vec![],
            "dn",
        );
        let s = simulate(&g, &shared, &shared.nominal_speeds(), &mut Deterministic).unwrap();
        assert_eq!(s.start[up.0], 0.0);
        assert_eq!(s.start[down.0], 0.0, "opposite directions overlap");
    }
}
