//! Platform descriptions: which devices exist and how they are enumerated.

use crate::device::{DeviceId, DeviceProfile};
use crate::profiles;
use feves_ft::FevesError;
use serde::{Deserialize, Serialize};

/// A heterogeneous platform: `nw` accelerators followed by `nc` CPU cores
/// (the paper's Algorithm 2 enumeration, with device 0 = `GPU₁`).
///
/// ```
/// use feves_hetsim::Platform;
/// let hk = Platform::sys_hk(); // the paper's Haswell + Kepler system
/// assert_eq!(hk.n_accel, 1);
/// assert_eq!(hk.n_cores, 4);
/// assert!(hk.devices[0].is_accelerator());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// All devices; indices `0..n_accel` are accelerators, the rest cores.
    pub devices: Vec<DeviceProfile>,
    /// Number of accelerators (`nw`).
    pub n_accel: usize,
    /// Number of CPU cores (`nc`).
    pub n_cores: usize,
    /// Human-readable platform name (e.g. `"SysHK"`).
    pub name: String,
    /// When true, all accelerators contend for one shared full-duplex host
    /// interconnect (e.g. GPUs behind a PCIe switch) instead of dedicated
    /// per-device links. Per-device copy-engine topology is subsumed by the
    /// bus arbitration in this mode.
    pub shared_host_link: bool,
}

impl Platform {
    /// Build a platform from accelerator profiles and a whole-chip CPU
    /// profile split into `cores` core-devices.
    pub fn build(accelerators: Vec<DeviceProfile>, cpu_chip: &DeviceProfile, cores: usize) -> Self {
        assert!(cores >= 1, "at least one CPU core required");
        let n_accel = accelerators.len();
        let mut devices = accelerators;
        for c in 0..cores {
            devices.push(profiles::cpu_core_of(cpu_chip, cores, c));
        }
        let name = format!(
            "{}+{}x{}",
            devices
                .iter()
                .take(n_accel)
                .map(|d| d.name.as_str())
                .collect::<Vec<_>>()
                .join("+"),
            cores,
            cpu_chip.name
        );
        Platform {
            devices,
            n_accel,
            n_cores: cores,
            name,
            shared_host_link: false,
        }
    }

    /// Switch to a shared host interconnect (see [`Platform::shared_host_link`]).
    pub fn with_shared_host_link(mut self) -> Self {
        self.shared_host_link = true;
        self
    }

    /// Rename the platform.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Total device count (`nw + nc`).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the platform has no devices (never for built platforms).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device ids of the accelerators.
    pub fn accelerators(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.n_accel).map(DeviceId)
    }

    /// Device ids of the CPU cores.
    pub fn cpu_cores(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (self.n_accel..self.devices.len()).map(DeviceId)
    }

    /// Profile of device `id`.
    pub fn device(&self, id: DeviceId) -> &DeviceProfile {
        &self.devices[id.0]
    }

    /// All-nominal speed multipliers.
    pub fn nominal_speeds(&self) -> Vec<f64> {
        vec![1.0; self.devices.len()]
    }

    // ---- The paper's evaluated configurations (§IV). ----

    /// SysNF: CPU_N (quad core) + one GPU_F.
    pub fn sys_nf() -> Self {
        Platform::build(vec![profiles::gpu_fermi()], &profiles::cpu_nehalem(), 4).named("SysNF")
    }

    /// SysNFF: CPU_N (quad core) + two GPU_F.
    pub fn sys_nff() -> Self {
        Platform::build(
            vec![profiles::gpu_fermi(), profiles::gpu_fermi()],
            &profiles::cpu_nehalem(),
            4,
        )
        .named("SysNFF")
    }

    /// SysHK: CPU_H (quad core) + one GPU_K.
    pub fn sys_hk() -> Self {
        Platform::build(vec![profiles::gpu_kepler()], &profiles::cpu_haswell(), 4).named("SysHK")
    }

    /// Single-device platform: the CPU chip alone (`cores` cores, no GPU).
    pub fn cpu_only(chip: DeviceProfile, cores: usize) -> Self {
        let name = chip.name.clone();
        Platform::build(vec![], &chip, cores).named(name)
    }

    /// Single-device platform: one accelerator plus one orchestration core
    /// (the host core drives the GPU but does not encode — this models the
    /// paper's single-GPU baselines).
    pub fn gpu_only(gpu: DeviceProfile) -> Self {
        let name = gpu.name.clone();
        // One token CPU core is required for the host side; baselines that
        // measure "GPU only" assign it zero load.
        Platform::build(vec![gpu], &profiles::cpu_nehalem(), 1).named(name)
    }

    /// Serialize to pretty JSON (for `feves --platform-file` round trips).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("platform is always serializable")
    }

    /// Load a platform description from JSON and validate its structure.
    pub fn from_json(json: &str) -> Result<Self, FevesError> {
        let p: Platform =
            serde_json::from_str(json).map_err(|e| FevesError::Parse(e.to_string()))?;
        p.validate()?;
        Ok(p)
    }

    /// Structural validation (device ordering, counts, sane rates).
    pub fn validate(&self) -> Result<(), FevesError> {
        let bad = |m: String| Err(FevesError::Config(m));
        if self.devices.len() != self.n_accel + self.n_cores {
            return bad("device count != n_accel + n_cores".into());
        }
        if self.n_cores == 0 {
            return bad("at least one CPU core is required (the host)".into());
        }
        for (i, d) in self.devices.iter().enumerate() {
            let should_be_accel = i < self.n_accel;
            if d.is_accelerator() != should_be_accel {
                return bad(format!(
                    "device {i} ({}) breaks the accelerators-first ordering",
                    d.name
                ));
            }
            if d.is_accelerator() && d.link.is_none() {
                return bad(format!("accelerator {} has no link profile", d.name));
            }
            for m in feves_codec::types::Module::ALL {
                let k = d.seconds_per_unit.get(m);
                if !(k > 0.0 && k.is_finite()) {
                    return bad(format!("device {} has invalid rate for {m:?}", d.name));
                }
            }
        }
        Ok(())
    }

    /// Restrict the platform to the devices where `keep[i]` is true,
    /// preserving the accelerators-first ordering. Returns the reduced
    /// platform and the mapping from reduced index to original index.
    ///
    /// Used by fault recovery: blacklisted devices are dropped and
    /// Algorithm 2 re-solves over the survivors.
    pub fn subset(&self, keep: &[bool]) -> Result<(Platform, Vec<usize>), FevesError> {
        assert_eq!(keep.len(), self.devices.len(), "mask length mismatch");
        let map: Vec<usize> = (0..self.devices.len()).filter(|&d| keep[d]).collect();
        let devices: Vec<DeviceProfile> = map.iter().map(|&d| self.devices[d].clone()).collect();
        let n_accel = map.iter().filter(|&&d| d < self.n_accel).count();
        let n_cores = map.len() - n_accel;
        if n_cores == 0 {
            return Err(FevesError::Unrecoverable(format!(
                "platform {} degraded below the minimum viable set: no CPU core left",
                self.name
            )));
        }
        let sub = Platform {
            devices,
            n_accel,
            n_cores,
            name: format!("{}[{}/{}]", self.name, map.len(), self.devices.len()),
            shared_host_link: self.shared_host_link,
        };
        sub.validate()?;
        Ok((sub, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let nf = Platform::sys_nf();
        assert_eq!(nf.n_accel, 1);
        assert_eq!(nf.n_cores, 4);
        assert_eq!(nf.len(), 5);
        assert_eq!(nf.name, "SysNF");

        let nff = Platform::sys_nff();
        assert_eq!(nff.n_accel, 2);
        assert_eq!(nff.len(), 6);

        let hk = Platform::sys_hk();
        assert_eq!(hk.n_accel, 1);
        assert!(hk.devices[0].is_accelerator());
        assert!(!hk.devices[1].is_accelerator());
    }

    #[test]
    fn enumeration_order_accelerators_first() {
        let p = Platform::sys_nff();
        let accels: Vec<usize> = p.accelerators().map(|d| d.0).collect();
        let cores: Vec<usize> = p.cpu_cores().map(|d| d.0).collect();
        assert_eq!(accels, vec![0, 1]);
        assert_eq!(cores, vec![2, 3, 4, 5]);
    }

    #[test]
    fn subset_drops_devices_and_keeps_ordering() {
        let p = Platform::sys_nff(); // 2 accel + 4 cores
        let (sub, map) = p.subset(&[true, false, true, true, false, true]).unwrap();
        assert_eq!(map, vec![0, 2, 3, 5]);
        assert_eq!(sub.n_accel, 1);
        assert_eq!(sub.n_cores, 3);
        assert!(sub.validate().is_ok());
        assert_eq!(sub.devices[0].name, p.devices[0].name);

        // Dropping both accelerators degrades to CPU-only but stays valid.
        let (cpu, map) = p.subset(&[false, false, true, true, true, true]).unwrap();
        assert_eq!(cpu.n_accel, 0);
        assert_eq!(map, vec![2, 3, 4, 5]);

        // Dropping every core is unrecoverable.
        let err = p.subset(&[true, true, false, false, false, false]);
        assert!(matches!(err, Err(FevesError::Unrecoverable(_))));
    }

    #[test]
    fn cpu_only_has_no_accelerators() {
        let p = Platform::cpu_only(crate::profiles::cpu_haswell(), 4);
        assert_eq!(p.n_accel, 0);
        assert_eq!(p.len(), 4);
        assert_eq!(p.name, "CPU_H");
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let p = Platform::sys_nff();
        let json = p.to_json();
        let back = Platform::from_json(&json).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.len(), p.len());
        assert_eq!(back.n_accel, p.n_accel);
        assert_eq!(back.devices[0].memory_bytes, p.devices[0].memory_bytes);
    }

    #[test]
    fn validation_rejects_broken_platforms() {
        let p = Platform::sys_hk();
        let mut bad = p.clone();
        bad.n_accel = 3; // counts no longer add up
        assert!(Platform::from_json(&bad_to_json(&bad)).is_err());

        let mut no_link = p.clone();
        no_link.devices[0].link = None;
        assert!(no_link.validate().is_err());

        let mut bad_rate = p.clone();
        *bad_rate.devices[1]
            .seconds_per_unit
            .get_mut(feves_codec::types::Module::Me) = 0.0;
        assert!(bad_rate.validate().is_err());
    }

    fn bad_to_json(p: &Platform) -> String {
        serde_json::to_string(p).unwrap()
    }

    #[test]
    fn garbage_json_is_an_error_not_a_panic() {
        assert!(Platform::from_json("{not json").is_err());
        assert!(Platform::from_json("{}").is_err());
    }
}
