#![warn(missing_docs)]
//! Heterogeneous CPU + multi-GPU platform simulator for FEVES.
//!
//! The paper evaluates on Nehalem/Haswell CPUs and Fermi/Kepler GPUs; this
//! environment has none of them, so the platform is simulated (see
//! `DESIGN.md` §2 for the substitution argument). The simulator preserves
//! exactly the structure the FEVES framework schedules against:
//!
//! - **devices** ([`device::DeviceProfile`]) with per-module throughput,
//!   calibrated to the paper's single-device measurements
//!   ([`profiles`]);
//! - **copy engines** — single-engine accelerators serialize H2D/D2H,
//!   dual-engine ones overlap them (§III-A);
//! - **asymmetric interconnects** with per-transfer latency;
//! - **CUDA-stream execution semantics** — per-resource FIFO queues with
//!   cross-resource dependencies, evaluated on a virtual clock
//!   ([`timeline::simulate`]);
//! - **measurement noise and perturbations** ([`noise`]), seeded and
//!   deterministic, so the adaptive load-balancing experiments (Fig 7) are
//!   replayable.
//!
//! Kernels still *execute for real* (in `feves-codec`) when functional
//! output is requested; this crate only supplies the virtual **time** those
//! executions are charged.

pub mod device;
pub mod fault;
pub mod noise;
pub mod platform;
pub mod profiles;
pub mod timeline;

pub use device::{CopyEngines, DeviceId, DeviceKind, DeviceProfile, LinkProfile, ModuleTable};
pub use fault::FaultInjector;
pub use noise::{Deterministic, DurationModel, MultiplicativeNoise};
pub use platform::Platform;
pub use timeline::{simulate, Dir, Schedule, SimError, TaskGraph, TaskId, TaskKind, TransferTag};
