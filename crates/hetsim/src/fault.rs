//! Fault injection into the simulated platform.
//!
//! The injector translates a [`FaultSchedule`] into the knobs the simulator
//! already understands: compute faults become per-device speed-multiplier
//! overlays for [`crate::timeline::simulate`] (a dead or stalled device
//! still *accepts* work — it just never finishes it within any reasonable
//! deadline), while transfer errors and kernel panics are surfaced as
//! per-frame predicates the framework polls at the matching pipeline stage.
//!
//! Speed semantics match [`crate::timeline::simulate`]: a multiplier of
//! `0.5` means half speed, so a slowdown ×f overlays `1/f` and death/stall
//! overlay [`STALL_SPEED`] (≈10⁻⁶, i.e. a million times slower — enough to
//! blow any deadline without risking float overflow).

use feves_ft::{FaultKind, FaultSchedule, FaultSpec};

/// Effective speed multiplier of a dead or fully stalled device.
pub const STALL_SPEED: f64 = 1e-6;

/// Applies a deterministic fault schedule to a simulated platform.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    schedule: FaultSchedule,
}

impl FaultInjector {
    /// Wraps a fault schedule for injection.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjector { schedule }
    }

    /// True when no faults will ever fire.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Append one more fault to the schedule.
    pub fn push(&mut self, spec: FaultSpec) {
        self.schedule.specs.push(spec);
    }

    /// Faults that begin exactly at inter frame `frame` (for the
    /// faults-injected counter).
    pub fn starting(&self, frame: usize) -> impl Iterator<Item = &FaultSpec> {
        self.schedule.starting(frame)
    }

    /// Overlays the compute faults active at `frame` onto per-device speed
    /// multipliers (composes with perturbations and other overlays).
    pub fn overlay_speeds(&self, frame: usize, speeds: &mut [f64]) {
        for spec in self.schedule.active(frame) {
            if spec.device >= speeds.len() {
                continue;
            }
            match spec.kind {
                FaultKind::Death | FaultKind::Stall { .. } => {
                    speeds[spec.device] = STALL_SPEED;
                }
                FaultKind::Slowdown { factor, .. } => {
                    speeds[spec.device] /= factor;
                }
                FaultKind::TransferError | FaultKind::KernelPanic => {}
            }
        }
    }

    /// True when an injected transfer error hits `device` at `frame`.
    pub fn transfer_fault(&self, frame: usize, device: usize) -> bool {
        self.schedule
            .active(frame)
            .any(|s| s.device == device && s.kind == FaultKind::TransferError)
    }

    /// True when an injected kernel panic hits `device` at `frame`.
    pub fn kernel_panic(&self, frame: usize, device: usize) -> bool {
        self.schedule
            .active(frame)
            .any(|s| s.device == device && s.kind == FaultKind::KernelPanic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> FaultSchedule {
        FaultSchedule::parse(&[
            "0:death@5".to_string(),
            "1:slow@3+2x10".to_string(),
            "1:xfer@7".to_string(),
            "0:panic@2".to_string(),
        ])
        .unwrap()
    }

    #[test]
    fn speed_overlay_composes() {
        let inj = FaultInjector::new(schedule());
        let mut speeds = vec![1.0, 0.5, 1.0];

        inj.overlay_speeds(4, &mut speeds); // slowdown active on dev 1 only
        assert_eq!(speeds[0], 1.0);
        assert!((speeds[1] - 0.05).abs() < 1e-12, "composes with ×0.5");

        let mut speeds = vec![1.0, 1.0, 1.0];
        inj.overlay_speeds(6, &mut speeds); // death active on dev 0
        assert_eq!(speeds[0], STALL_SPEED);
        assert_eq!(speeds[1], 1.0);
    }

    #[test]
    fn transfer_and_panic_predicates() {
        let inj = FaultInjector::new(schedule());
        assert!(inj.transfer_fault(7, 1));
        assert!(!inj.transfer_fault(7, 0));
        assert!(!inj.transfer_fault(6, 1));
        assert!(inj.kernel_panic(2, 0));
        assert!(!inj.kernel_panic(3, 0));
    }

    #[test]
    fn empty_injector_is_inert() {
        let inj = FaultInjector::default();
        assert!(inj.is_empty());
        let mut speeds = vec![1.0; 4];
        inj.overlay_speeds(3, &mut speeds);
        assert_eq!(speeds, vec![1.0; 4]);
    }
}
