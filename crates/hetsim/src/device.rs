//! Device models: compute throughput per module, copy-engine topology and
//! interconnect characteristics.

use feves_codec::types::Module;
use serde::{Deserialize, Serialize};

/// Index of a device within a [`crate::platform::Platform`].
///
/// Following the paper's Algorithm 2 enumeration, accelerators come first
/// (`0 .. nw`, with device 0 the default R\*-candidate `GPU₁`) and CPU cores
/// after (`nw .. nw + nc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// Copy-engine topology of an accelerator (§III-A): single-engine devices
/// serialize H2D and D2H transfers; dual-engine devices overlap them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyEngines {
    /// One DMA engine shared by both directions.
    Single,
    /// Independent H2D and D2H engines.
    Dual,
}

/// What kind of processing device this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A CPU core (operates directly on host memory — no transfers).
    CpuCore,
    /// A discrete accelerator reached through an interconnect.
    Accelerator(CopyEngines),
}

/// Interconnect characteristics of an accelerator (asymmetric, as the paper
/// measures: `K^{·hd} ≠ K^{·dh}`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Host→device bandwidth in bytes/second.
    pub h2d_bytes_per_sec: f64,
    /// Device→host bandwidth in bytes/second.
    pub d2h_bytes_per_sec: f64,
    /// Fixed per-transfer setup latency in seconds.
    pub latency_s: f64,
}

impl LinkProfile {
    /// Duration of one transfer of `bytes` in direction `h2d`.
    pub fn transfer_time(&self, bytes: usize, h2d: bool) -> f64 {
        let bw = if h2d {
            self.h2d_bytes_per_sec
        } else {
            self.d2h_bytes_per_sec
        };
        self.latency_s + bytes as f64 / bw
    }
}

/// A per-module table of values (indexed by [`Module`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModuleTable<T>(pub [T; 7]);

impl<T: Copy> ModuleTable<T> {
    /// Value for `module`.
    #[inline]
    pub fn get(&self, module: Module) -> T {
        self.0[module_index(module)]
    }

    /// Mutable value for `module`.
    #[inline]
    pub fn get_mut(&mut self, module: Module) -> &mut T {
        &mut self.0[module_index(module)]
    }

    /// Build from a function of the module.
    pub fn from_fn(mut f: impl FnMut(Module) -> T) -> Self {
        ModuleTable([
            f(Module::Me),
            f(Module::Interp),
            f(Module::Sme),
            f(Module::Mc),
            f(Module::Tq),
            f(Module::Itq),
            f(Module::Dbl),
        ])
    }
}

/// Stable index of a module in a [`ModuleTable`].
#[inline]
pub fn module_index(module: Module) -> usize {
    match module {
        Module::Me => 0,
        Module::Interp => 1,
        Module::Sme => 2,
        Module::Mc => 3,
        Module::Tq => 4,
        Module::Itq => 5,
        Module::Dbl => 6,
    }
}

/// The performance model of one device: seconds per abstract work unit for
/// each module (see [`feves_codec::workload`] for the unit definitions),
/// plus kind and link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name (e.g. `"GPU_K"`, `"CPU_H core 3"`).
    pub name: String,
    /// CPU core or accelerator (+ copy-engine topology).
    pub kind: DeviceKind,
    /// Seconds per work unit per module.
    pub seconds_per_unit: ModuleTable<f64>,
    /// Interconnect (None for CPU cores, which share host memory).
    pub link: Option<LinkProfile>,
    /// Device memory capacity in bytes (None = host memory, unbounded for
    /// our purposes). The Data Access Management block validates buffer
    /// footprints against this (paper §III-B-2 "device memory management").
    pub memory_bytes: Option<u64>,
}

impl DeviceProfile {
    /// Compute time for `units` work units of `module` at speed multiplier
    /// `mult` (1.0 = nominal; < 1.0 models external load stealing cycles).
    pub fn compute_time(&self, module: Module, units: f64, mult: f64) -> f64 {
        debug_assert!(mult > 0.0);
        units * self.seconds_per_unit.get(module) / mult
    }

    /// True for accelerators (devices that need explicit transfers).
    pub fn is_accelerator(&self) -> bool {
        matches!(self.kind, DeviceKind::Accelerator(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_table_roundtrip() {
        let t = ModuleTable::from_fn(|m| module_index(m) as f64);
        for m in Module::ALL {
            assert_eq!(t.get(m), module_index(m) as f64);
        }
    }

    #[test]
    fn transfer_time_asymmetric() {
        let link = LinkProfile {
            h2d_bytes_per_sec: 6e9,
            d2h_bytes_per_sec: 5e9,
            latency_s: 10e-6,
        };
        let h2d = link.transfer_time(6_000_000, true);
        let d2h = link.transfer_time(6_000_000, false);
        assert!((h2d - (10e-6 + 1e-3)).abs() < 1e-12);
        assert!(d2h > h2d, "D2H must be slower on this link");
    }

    #[test]
    fn compute_time_scales_with_multiplier() {
        let p = DeviceProfile {
            name: "test".into(),
            kind: DeviceKind::CpuCore,
            seconds_per_unit: ModuleTable::from_fn(|_| 1e-6),
            link: None,
            memory_bytes: None,
        };
        let nominal = p.compute_time(Module::Me, 1000.0, 1.0);
        let slowed = p.compute_time(Module::Me, 1000.0, 0.5);
        assert!((nominal - 1e-3).abs() < 1e-12);
        assert!((slowed - 2e-3).abs() < 1e-12);
    }
}
