//! Calibrated device profiles for the architectures the paper evaluates.
//!
//! No Nehalem/Haswell CPUs or Fermi/Kepler GPUs exist in this environment,
//! so each architecture is a *performance profile*: seconds per work unit
//! per module, calibrated so that single-device 1080p encoding speeds at
//! SA 32×32 / 1 RF land where Fig 6(a) puts them:
//!
//! | device | paper (≈ fps) | profile target |
//! |---|---|---|
//! | CPU_N (Nehalem i7 950, 4 cores) | ~10 | 10.4 |
//! | CPU_H (Haswell i7 4770K, 4 cores) | ~17 (1.7 × CPU_N) | 17.7 |
//! | GPU_F (Fermi GTX 580) | ~26 | 26.1 |
//! | GPU_K (Kepler GTX 780 Ti) | ~48 (≈2 × GPU_F) | 48.8 |
//!
//! and so that the module shares match the paper's §II breakdown
//! (ME+INT+SME ≈ 90 %, MC+TQ+TQ⁻¹ < 3 %). ME time scales with SA²·nRF
//! through the work model, reproducing the "quadruplication" between SA
//! sizes without further tuning. Links use PCIe-2/3-era asymmetric
//! bandwidths; Fermi boards have a single copy engine, the Kepler board a
//! dual one (§III-A discusses exactly this distinction).

use crate::device::{CopyEngines, DeviceKind, DeviceProfile, LinkProfile, ModuleTable};
use feves_codec::types::Module;

/// 1080p reference geometry used for calibration (120×68 MBs).
const CAL_MBS: f64 = 120.0 * 68.0;
/// ME work units per frame at SA 32×32, 1 RF.
const CAL_ME_UNITS: f64 = CAL_MBS * 1024.0;

/// Build a profile from per-module *frame times* (ms) at the calibration
/// point (1080p, SA 32, 1 RF).
#[allow(clippy::too_many_arguments)] // one argument per inter-loop module
fn from_frame_times_ms(
    name: &str,
    kind: DeviceKind,
    me: f64,
    interp: f64,
    sme: f64,
    mc: f64,
    tq: f64,
    itq: f64,
    dbl: f64,
    link: Option<LinkProfile>,
) -> DeviceProfile {
    let table = ModuleTable::from_fn(|m| {
        let (ms, units) = match m {
            Module::Me => (me, CAL_ME_UNITS),
            Module::Interp => (interp, CAL_MBS),
            Module::Sme => (sme, CAL_MBS),
            Module::Mc => (mc, CAL_MBS),
            Module::Tq => (tq, CAL_MBS),
            Module::Itq => (itq, CAL_MBS),
            Module::Dbl => (dbl, CAL_MBS),
        };
        ms * 1e-3 / units
    });
    DeviceProfile {
        name: name.into(),
        kind,
        seconds_per_unit: table,
        link,
        memory_bytes: None,
    }
}

/// Attach a device-memory capacity to a profile.
fn with_memory(mut p: DeviceProfile, mb: u64) -> DeviceProfile {
    p.memory_bytes = Some(mb * 1024 * 1024);
    p
}

/// Intel Nehalem i7 950 (quad core, SSE 4.2 kernels) — whole-chip profile.
///
/// ≈10.4 fps at the calibration point; ME+INT+SME ≈ 93 % of frame time.
pub fn cpu_nehalem() -> DeviceProfile {
    from_frame_times_ms(
        "CPU_N",
        DeviceKind::CpuCore,
        55.0, // ME
        14.0, // INT
        20.0, // SME
        1.2,  // MC
        0.8,  // TQ
        0.8,  // TQ⁻¹
        4.0,  // DBL
        None,
    )
}

/// Intel Haswell i7 4770K (quad core, AVX2 kernels): ≈1.7× CPU_N (§IV).
pub fn cpu_haswell() -> DeviceProfile {
    let base = cpu_nehalem();
    DeviceProfile {
        name: "CPU_H".into(),
        seconds_per_unit: ModuleTable::from_fn(|m| base.seconds_per_unit.get(m) / 1.7),
        ..base
    }
}

/// NVIDIA Fermi GTX 580 (single copy engine, PCIe 2.0).
///
/// ≈26 fps at the calibration point (paper: real-time at 32×32 / 1 RF).
pub fn gpu_fermi() -> DeviceProfile {
    with_memory(
        from_frame_times_ms(
            "GPU_F",
            DeviceKind::Accelerator(CopyEngines::Single),
            14.8, // ME
            8.3,  // INT (concurrent with ME on the second kernel stream)
            17.6, // SME
            0.55, // MC
            0.37, // TQ
            0.37, // TQ⁻¹
            4.8,  // DBL
            Some(LinkProfile {
                h2d_bytes_per_sec: 5.8e9,
                d2h_bytes_per_sec: 5.2e9,
                latency_s: 12e-6,
            }),
        ),
        1536,
    ) // GTX 580: 1.5 GB
}

/// NVIDIA Kepler GTX 780 Ti (dual copy engine, PCIe 3.0): ≈2× GPU_F (§IV).
pub fn gpu_kepler() -> DeviceProfile {
    with_memory(
        from_frame_times_ms(
            "GPU_K",
            DeviceKind::Accelerator(CopyEngines::Dual),
            8.0,  // ME
            4.5,  // INT (concurrent with ME on the second kernel stream)
            9.5,  // SME
            0.30, // MC
            0.20, // TQ
            0.20, // TQ⁻¹
            2.6,  // DBL
            Some(LinkProfile {
                h2d_bytes_per_sec: 11.0e9,
                d2h_bytes_per_sec: 10.0e9,
                latency_s: 8e-6,
            }),
        ),
        3072,
    ) // GTX 780 Ti: 3 GB
}

/// Per-module slowdown a CPU device suffers when the scalar kernels are
/// forced (`FEVES_KERNELS=scalar`).
///
/// The calibrated profiles model the paper's vectorized SSE/AVX kernels —
/// which correspond to our `fast` SWAR paths — so running the plain scalar
/// loops costs extra time on exactly the modules with fast paths. The
/// factors are round numbers in the range the `kernel_matrix` benchmark
/// measures for the SWAR kernels on CI-class hardware.
pub fn scalar_kernel_penalty(m: Module) -> f64 {
    match m {
        Module::Me => 1.7,
        Module::Interp => 1.6,
        Module::Sme => 1.5,
        Module::Tq | Module::Itq => 1.3,
        Module::Mc | Module::Dbl => 1.0,
    }
}

/// Adjust a device profile for the selected hot-kernel family.
///
/// CPU profiles are slowed by [`scalar_kernel_penalty`] when the scalar
/// kernels are active, so a simulated `PerfChar` reflects what the host
/// would actually measure; with the fast kernels (the calibrated baseline)
/// and for accelerators (whose simulated kernels are not host code) the
/// profile is returned unchanged.
pub fn scaled_for_kernels(
    p: DeviceProfile,
    kind: feves_codec::kernels::KernelKind,
) -> DeviceProfile {
    if kind == feves_codec::kernels::KernelKind::Fast || p.is_accelerator() {
        return p;
    }
    let table = ModuleTable::from_fn(|m| p.seconds_per_unit.get(m) * scalar_kernel_penalty(m));
    DeviceProfile {
        seconds_per_unit: table,
        ..p
    }
}

/// One core of a multi-core CPU profile: a core is `cores`× slower than the
/// whole chip, so `cores` of them running in parallel reproduce the chip's
/// calibrated throughput (the chip profiles already embed the OpenMP
/// parallel efficiency of the paper's measurements).
pub fn cpu_core_of(chip: &DeviceProfile, cores: usize, core_idx: usize) -> DeviceProfile {
    DeviceProfile {
        name: format!("{} core {}", chip.name, core_idx),
        kind: DeviceKind::CpuCore,
        seconds_per_unit: ModuleTable::from_fn(|m| chip.seconds_per_unit.get(m) * cores as f64),
        link: None,
        memory_bytes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_codec::types::{EncodeParams, SearchArea};
    use feves_codec::workload::units_per_frame;

    /// Frame time of a whole-chip profile at given params (1080p, no comm).
    /// Accelerators run INT concurrently with ME (second kernel stream);
    /// CPU chips serialize all modules.
    fn frame_time(p: &DeviceProfile, sa: u16, n_ref: usize) -> f64 {
        let params = EncodeParams {
            search_area: SearchArea(sa),
            n_ref,
            ..Default::default()
        };
        let t = |m: Module| p.compute_time(m, units_per_frame(m, &params, 120, 68), 1.0);
        let serial: f64 = [
            Module::Sme,
            Module::Mc,
            Module::Tq,
            Module::Itq,
            Module::Dbl,
        ]
        .iter()
        .map(|&m| t(m))
        .sum();
        if p.is_accelerator() {
            t(Module::Me).max(t(Module::Interp)) + serial
        } else {
            t(Module::Me) + t(Module::Interp) + serial
        }
    }

    #[test]
    fn calibration_matches_fig6a_single_device_points() {
        let fps = |p: &DeviceProfile| 1.0 / frame_time(p, 32, 1);
        let cpu_n = fps(&cpu_nehalem());
        let cpu_h = fps(&cpu_haswell());
        let gpu_f = fps(&gpu_fermi());
        let gpu_k = fps(&gpu_kepler());
        assert!((9.0..12.0).contains(&cpu_n), "CPU_N {cpu_n:.1} fps");
        assert!((16.0..19.0).contains(&cpu_h), "CPU_H {cpu_h:.1} fps");
        assert!((25.0..28.0).contains(&gpu_f), "GPU_F {gpu_f:.1} fps");
        assert!((46.0..52.0).contains(&gpu_k), "GPU_K {gpu_k:.1} fps");
        // Paper's stated ratios.
        assert!((cpu_h / cpu_n - 1.7).abs() < 0.05);
        assert!((gpu_k / gpu_f - 2.0).abs() < 0.25);
        // Both GPUs achieve real-time at 32×32 / 1 RF (paper §IV).
        assert!(gpu_f >= 25.0 && gpu_k >= 25.0);
    }

    #[test]
    fn me_share_dominates_and_rstar_is_small() {
        for p in [cpu_nehalem(), gpu_kepler()] {
            let params = EncodeParams {
                search_area: SearchArea(32),
                n_ref: 1,
                ..Default::default()
            };
            let t = |m: Module| p.compute_time(m, units_per_frame(m, &params, 120, 68), 1.0);
            let total: f64 = Module::ALL.iter().map(|&m| t(m)).sum();
            let heavy = t(Module::Me) + t(Module::Interp) + t(Module::Sme);
            let mctq = t(Module::Mc) + t(Module::Tq) + t(Module::Itq);
            assert!(
                heavy / total > 0.80,
                "{}: heavy {:.2}",
                p.name,
                heavy / total
            );
            assert!(mctq / total < 0.03, "{}: mctq {:.3}", p.name, mctq / total);
        }
    }

    #[test]
    fn sa_quadruples_me_time() {
        let p = gpu_kepler();
        let t32 = frame_time(&p, 32, 1);
        let t64 = frame_time(&p, 64, 1);
        // ME quadruples; other modules constant.
        let me32 = 8.0e-3;
        assert!((t64 - (t32 + 3.0 * me32)).abs() < 1e-4, "t64 {t64}");
    }

    #[test]
    fn core_split_preserves_chip_throughput() {
        let chip = cpu_haswell();
        let core = cpu_core_of(&chip, 4, 0);
        let ratio = core.seconds_per_unit.get(Module::Me) / chip.seconds_per_unit.get(Module::Me);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_kernels_slow_cpu_profiles_only() {
        use feves_codec::kernels::KernelKind;
        let chip = cpu_nehalem();
        let fast = scaled_for_kernels(chip.clone(), KernelKind::Fast);
        let slow = scaled_for_kernels(chip.clone(), KernelKind::Scalar);
        for &m in Module::ALL.iter() {
            assert_eq!(
                fast.seconds_per_unit.get(m),
                chip.seconds_per_unit.get(m),
                "fast must be the calibrated baseline"
            );
            let want = chip.seconds_per_unit.get(m) * scalar_kernel_penalty(m);
            let got = slow.seconds_per_unit.get(m);
            assert!((got - want).abs() < 1e-18, "{m:?}: {got} vs {want}");
        }
        assert!(slow.seconds_per_unit.get(Module::Me) > chip.seconds_per_unit.get(Module::Me));
        // Accelerators are untouched in both modes.
        let gpu = gpu_kepler();
        let gpu_s = scaled_for_kernels(gpu.clone(), KernelKind::Scalar);
        assert_eq!(
            gpu.seconds_per_unit.get(Module::Me),
            gpu_s.seconds_per_unit.get(Module::Me)
        );
    }
}
