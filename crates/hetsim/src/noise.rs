//! Duration models: deterministic timing or seeded measurement noise.
//!
//! The paper stresses that FEVES targets "highly unreliable and
//! non-dedicated systems, where the performance and available bandwidth can
//! vary depending on the current state of the platform" (§III-C). The noise
//! model reproduces that measurement jitter deterministically (seeded), so
//! the adaptive behaviour of the framework is testable and replayable.

use crate::timeline::TaskSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Maps a task's base (model) duration to its "measured" duration.
pub trait DurationModel {
    /// Return the effective duration for `task` given the model `base`.
    fn duration(&mut self, task: &TaskSpec, base: f64) -> f64;
}

/// No noise: durations equal the analytic model exactly.
pub struct Deterministic;

impl DurationModel for Deterministic {
    fn duration(&mut self, _task: &TaskSpec, base: f64) -> f64 {
        base
    }
}

/// Multiplicative uniform jitter: `base × U(1 − amp, 1 + amp)`, drawn from a
/// seeded stream in task-submission order (fully reproducible).
pub struct MultiplicativeNoise {
    amp: f64,
    rng: ChaCha8Rng,
}

impl MultiplicativeNoise {
    /// `amp` is the relative amplitude (e.g. 0.03 = ±3 %, a realistic
    /// run-to-run variation for GPU kernels and DMA on a live desktop).
    pub fn new(amp: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&amp), "amplitude must be in [0, 1)");
        MultiplicativeNoise {
            amp,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Capture the generator mid-stream so a resumed encode draws the same
    /// jitter sequence an uninterrupted run would have drawn.
    pub fn snapshot(&self) -> NoiseState {
        let (key, counter, idx) = self.rng.state();
        NoiseState {
            amp: self.amp,
            key,
            counter,
            idx: idx as u64,
        }
    }

    /// Rebuild the model from a [`NoiseState`] snapshot.
    pub fn restore(state: &NoiseState) -> Self {
        MultiplicativeNoise {
            amp: state.amp,
            rng: ChaCha8Rng::from_state(state.key, state.counter, state.idx.min(16) as usize),
        }
    }
}

/// Serializable state of a [`MultiplicativeNoise`] stream (amplitude plus
/// the ChaCha8 key/counter/offset triple).
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseState {
    /// Relative jitter amplitude.
    pub amp: f64,
    /// ChaCha8 key words.
    pub key: [u32; 8],
    /// Next block counter.
    pub counter: u64,
    /// Draw offset inside the current block (16 = exhausted).
    pub idx: u64,
}

impl DurationModel for MultiplicativeNoise {
    fn duration(&mut self, _task: &TaskSpec, base: f64) -> f64 {
        if self.amp == 0.0 {
            return base;
        }
        let f = self.rng.gen_range(1.0 - self.amp..=1.0 + self.amp);
        base * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TaskKind;

    fn dummy_task() -> TaskSpec {
        TaskSpec {
            kind: TaskKind::Barrier,
            deps: vec![],
            label: "t".into(),
        }
    }

    #[test]
    fn deterministic_is_identity() {
        let mut m = Deterministic;
        assert_eq!(m.duration(&dummy_task(), 1.25), 1.25);
    }

    #[test]
    fn noise_bounded_and_reproducible() {
        let mut a = MultiplicativeNoise::new(0.05, 7);
        let mut b = MultiplicativeNoise::new(0.05, 7);
        for _ in 0..100 {
            let da = a.duration(&dummy_task(), 1.0);
            let db = b.duration(&dummy_task(), 1.0);
            assert_eq!(da, db, "same seed must reproduce");
            assert!((0.95..=1.05).contains(&da), "jitter out of bounds: {da}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MultiplicativeNoise::new(0.05, 1);
        let mut b = MultiplicativeNoise::new(0.05, 2);
        let da: Vec<f64> = (0..10).map(|_| a.duration(&dummy_task(), 1.0)).collect();
        let db: Vec<f64> = (0..10).map(|_| b.duration(&dummy_task(), 1.0)).collect();
        assert_ne!(da, db);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_panics() {
        let _ = MultiplicativeNoise::new(1.5, 0);
    }

    #[test]
    fn snapshot_restore_continues_the_jitter_stream() {
        let mut a = MultiplicativeNoise::new(0.05, 7);
        for _ in 0..37 {
            a.duration(&dummy_task(), 1.0);
        }
        let mut b = MultiplicativeNoise::restore(&a.snapshot());
        for _ in 0..100 {
            let da = a.duration(&dummy_task(), 1.0);
            let db = b.duration(&dummy_task(), 1.0);
            assert_eq!(da, db, "restored stream diverged");
        }
    }
}
