//! Property-based tests of the platform simulator: schedules must respect
//! dependencies, resource exclusivity and FIFO queue order for arbitrary
//! task graphs.

use feves_codec::types::Module;
use feves_hetsim::noise::Deterministic;
use feves_hetsim::platform::Platform;
use feves_hetsim::profiles::{cpu_nehalem, gpu_fermi, gpu_kepler};
use feves_hetsim::timeline::{simulate, Dir, TaskGraph, TaskId, TaskKind, TransferTag};
use feves_hetsim::DeviceId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Compute { device: u8, units: u16 },
    Transfer { device: u8, h2d: bool, kb: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u16..5000).prop_map(|(device, units)| Op::Compute { device, units }),
        (0u8..2, any::<bool>(), 1u16..5000).prop_map(|(device, h2d, kb)| Op::Transfer {
            device,
            h2d,
            kb
        }),
    ]
}

/// Build a random DAG: each task may depend on a random subset of earlier
/// tasks (acyclic by construction).
fn build_graph(ops: &[(Op, u8)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, (op, dep_mask)) in ops.iter().enumerate() {
        let deps: Vec<TaskId> = ids
            .iter()
            .enumerate()
            .filter(|(j, _)| i > 0 && (dep_mask >> (j % 8)) & 1 == 1)
            .map(|(_, &id)| id)
            .take(4)
            .collect();
        let id = match op {
            Op::Compute { device, units } => g.compute(
                DeviceId(*device as usize),
                Module::Sme,
                *units as f64,
                deps,
                format!("c{i}"),
            ),
            Op::Transfer { device, h2d, kb } => g.transfer(
                DeviceId(*device as usize),
                if *h2d { Dir::H2d } else { Dir::D2h },
                *kb as usize * 1024,
                TransferTag::Sf,
                deps,
                format!("t{i}"),
            ),
        };
        ids.push(id);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_respect_dependencies_and_fifo(
        ops in proptest::collection::vec((arb_op(), any::<u8>()), 1..40)
    ) {
        // Platform: 2 accelerators + 4 cores = 6 devices.
        let platform = Platform::build(
            vec![gpu_fermi(), gpu_kepler()],
            &cpu_nehalem(),
            4,
        );
        let g = build_graph(&ops);
        let sched = simulate(&g, &platform, &platform.nominal_speeds(), &mut Deterministic)
            .expect("random DAGs on valid devices must schedule");

        // 1. Dependencies: no task starts before its deps finish.
        for (id, t) in g.iter() {
            for d in &t.deps {
                prop_assert!(
                    sched.start[id.0] >= sched.finish[d.0] - 1e-12,
                    "task {} starts before dep {}",
                    t.label,
                    g.task(*d).label
                );
            }
        }

        // 2. Durations are non-negative and makespan covers everything.
        for (id, _) in g.iter() {
            prop_assert!(sched.finish[id.0] >= sched.start[id.0]);
            prop_assert!(sched.finish[id.0] <= sched.makespan + 1e-12);
        }

        // 3. Compute exclusivity: tasks on the same device's primary kernel
        // queue never overlap and run in submission order (INT would use the
        // second stream; we only emit SME here so all computes share one
        // queue per device).
        for dev in 0..platform.len() {
            let mut last_finish = 0.0f64;
            for (id, t) in g.iter() {
                if let TaskKind::Compute { device, .. } = &t.kind {
                    if device.0 == dev {
                        prop_assert!(
                            sched.start[id.0] >= last_finish - 1e-12,
                            "compute overlap on device {dev}"
                        );
                        last_finish = sched.finish[id.0];
                    }
                }
            }
        }

        // 4. Single-copy-engine exclusivity on device 0 (Fermi): H2D and
        // D2H transfers all serialize in submission order.
        let mut last_finish = 0.0f64;
        for (id, t) in g.iter() {
            if let TaskKind::Transfer { device, .. } = &t.kind {
                if device.0 == 0 {
                    prop_assert!(
                        sched.start[id.0] >= last_finish - 1e-12,
                        "transfer overlap on single-engine device"
                    );
                    last_finish = sched.finish[id.0];
                }
            }
        }

        // 5. Dual-engine device (Kepler, device 1): per-direction FIFO.
        for dir in [Dir::H2d, Dir::D2h] {
            let mut last_finish = 0.0f64;
            for (id, t) in g.iter() {
                if let TaskKind::Transfer { device, dir: d, .. } = &t.kind {
                    if device.0 == 1 && *d == dir {
                        prop_assert!(sched.start[id.0] >= last_finish - 1e-12);
                        last_finish = sched.finish[id.0];
                    }
                }
            }
        }
    }

    /// Slowing one device can only delay (or leave unchanged) every task's
    /// completion — monotonicity of the virtual timeline.
    #[test]
    fn slowdown_is_monotone(
        ops in proptest::collection::vec((arb_op(), any::<u8>()), 1..25),
        victim in 0usize..6,
    ) {
        let platform = Platform::build(vec![gpu_fermi(), gpu_kepler()], &cpu_nehalem(), 4);
        let g = build_graph(&ops);
        let nominal = simulate(&g, &platform, &platform.nominal_speeds(), &mut Deterministic)
            .unwrap();
        let mut slowed = platform.nominal_speeds();
        slowed[victim] = 0.5;
        let degraded = simulate(&g, &platform, &slowed, &mut Deterministic).unwrap();
        prop_assert!(degraded.makespan >= nominal.makespan - 1e-12);
    }
}
