//! Bench/flight comparison: the regression gate behind `feves compare`.
//!
//! Accepts any two files of the *same* format among:
//!
//! - `BENCH_e2e.json` — one object with `scalar_ms` / `fast_ms` fields;
//! - `BENCH_kernels.json` — an array of per-kernel-case objects with
//!   `*_ns_per_iter` fields;
//! - a flight log (JSONL of [`FlightRecord`]s) — summarized through the
//!   audit layer before comparison.
//!
//! Each format is reduced to named lower-is-better scalars; a metric
//! regresses when `(new − baseline) / baseline > threshold`. Metrics
//! present on only one side are reported but never count as regressions
//! (bench suites grow over time).

use crate::audit::AuditSummary;
use crate::flight;
use serde::Value;

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name, e.g. `"e2e.fast_ms"` or `"kernel.sad_grid/1080p"`.
    pub name: String,
    /// Baseline value (lower is better).
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative change, `(candidate − baseline) / baseline`.
    pub delta: f64,
}

/// Outcome of a comparison run.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// All matched metrics, input order.
    pub metrics: Vec<MetricDelta>,
    /// Names of regressed metrics (delta > threshold).
    pub regressions: Vec<String>,
    /// Metrics present on only one side (informational).
    pub unmatched: Vec<String>,
}

impl CompareOutcome {
    /// True when no metric regressed beyond the threshold.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable comparison table.
    pub fn render_text(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>12} {:>12} {:>9}\n",
            "metric", "baseline", "candidate", "delta"
        ));
        for m in &self.metrics {
            let flag = if m.delta > threshold {
                "  << REGRESSION"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<36} {:>12.3} {:>12.3} {:>+8.1}%{flag}\n",
                m.name,
                m.baseline,
                m.candidate,
                m.delta * 100.0
            ));
        }
        for u in &self.unmatched {
            out.push_str(&format!("{u:<36} (present on one side only)\n"));
        }
        out.push_str(&format!(
            "{}: {} metric(s) compared, {} regression(s) beyond {:.0}%\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.metrics.len(),
            self.regressions.len(),
            threshold * 100.0
        ));
        out
    }
}

/// Compare two summaries (same format, see module docs). `threshold` is the
/// relative slowdown that counts as a regression (e.g. `0.10` = 10 %).
pub fn compare_reports(
    baseline: &str,
    candidate: &str,
    threshold: f64,
) -> Result<CompareOutcome, String> {
    let base = extract_metrics(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = extract_metrics(candidate).map_err(|e| format!("candidate: {e}"))?;
    compare_lists(base, cand, threshold)
}

/// Compare only metrics whose name contains one of the comma-separated
/// `filter` terms — the CLI's `--metric` mode (`--metric
/// idle_pct,critical_path_us` gates both families in one invocation). On
/// top of the usual baseline-vs-candidate regression check, a filter term
/// matching the `idle_pct` family gates the pipeline win itself: the
/// candidate must show strictly less pipelined idle than lockstep idle, or
/// the overlap is reported as a regression even when the baseline
/// comparison would pass.
pub fn compare_reports_metric(
    baseline: &str,
    candidate: &str,
    threshold: f64,
    filter: &str,
) -> Result<CompareOutcome, String> {
    let terms: Vec<&str> = filter
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    if terms.is_empty() {
        return Err("--metric filter is empty".into());
    }
    let matches = |name: &str| terms.iter().any(|t| name.contains(t));
    let base: Vec<(String, f64)> = extract_metrics(baseline)
        .map_err(|e| format!("baseline: {e}"))?
        .into_iter()
        .filter(|(n, _)| matches(n))
        .collect();
    let cand = extract_metrics(candidate).map_err(|e| format!("candidate: {e}"))?;
    let idle_gate = if terms
        .iter()
        .any(|t| "idle_pct".contains(*t) || t.contains("idle_pct"))
    {
        let get = |name: &str| cand.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        match (get("e2e.idle_pct_pipelined"), get("e2e.idle_pct_lockstep")) {
            (Some(p), Some(l)) if p >= l => Some(format!(
                "e2e.idle_pct_pipelined (no overlap win: {p:.3}% pipelined vs {l:.3}% lockstep)"
            )),
            (None, _) | (_, None) => {
                return Err(
                    "candidate carries no idle_pct_pipelined/idle_pct_lockstep fields — \
                     regenerate BENCH_e2e.json with the pipelined bench"
                        .into(),
                )
            }
            _ => None,
        }
    } else {
        None
    };
    let cand: Vec<(String, f64)> = cand.into_iter().filter(|(n, _)| matches(n)).collect();
    let mut outcome = compare_lists(base, cand, threshold)
        .map_err(|e| format!("{e} (after --metric {filter} filter)"))?;
    if let Some(gate) = idle_gate {
        outcome.regressions.push(gate);
    }
    Ok(outcome)
}

fn compare_lists(
    base: Vec<(String, f64)>,
    cand: Vec<(String, f64)>,
    threshold: f64,
) -> Result<CompareOutcome, String> {
    let mut outcome = CompareOutcome::default();
    for (name, bv) in &base {
        match cand.iter().find(|(n, _)| n == name) {
            Some((_, cv)) => {
                let delta = if *bv > 1e-12 { (cv - bv) / bv } else { 0.0 };
                if delta > threshold {
                    outcome.regressions.push(name.clone());
                }
                outcome.metrics.push(MetricDelta {
                    name: name.clone(),
                    baseline: *bv,
                    candidate: *cv,
                    delta,
                });
            }
            None => outcome.unmatched.push(format!("{name} (baseline only)")),
        }
    }
    for (name, _) in &cand {
        if !base.iter().any(|(n, _)| n == name) {
            outcome.unmatched.push(format!("{name} (candidate only)"));
        }
    }
    if outcome.metrics.is_empty() {
        return Err("no common metrics between the two files — same format?".into());
    }
    Ok(outcome)
}

/// Reduce a summary file to named lower-is-better scalars.
fn extract_metrics(text: &str) -> Result<Vec<(String, f64)>, String> {
    // Flight JSONL: more than one line, or a single object with a "frame"
    // field.
    let trimmed = text.trim();
    if looks_like_flight(trimmed) {
        let records = flight::parse_jsonl(trimmed)?;
        let s = AuditSummary::from_records(&records, 1.0);
        let mut out = vec![("flight.mean_tau_tot_ms".to_string(), s.mean_tau_tot_ms)];
        if let Some(imb) = s.mean_imbalance_index {
            out.push(("flight.mean_imbalance_index".to_string(), imb));
        }
        if let Some(p95) = s.fleet_p95_abs_residual_pct {
            out.push(("flight.p95_abs_residual_pct".to_string(), p95));
        }
        if let Some(cp) = crate::critical::critical_path_us(&records) {
            out.push(("flight.critical_path_us".to_string(), cp));
        }
        return Ok(out);
    }
    let v = serde_json::value_from_str(trimmed).map_err(|e| e.to_string())?;
    if let Some(items) = v.as_array() {
        // BENCH_kernels.json: [{kernel, case, *_ns_per_iter, ...}].
        let mut out = Vec::new();
        for item in items {
            let kernel = item
                .get("kernel")
                .and_then(Value::as_str)
                .ok_or("kernel entry missing \"kernel\"")?;
            let case = item.get("case").and_then(Value::as_str).unwrap_or("");
            for field in ["fast_ns_per_iter", "scalar_ns_per_iter"] {
                if let Some(ns) = item.get(field).and_then(Value::as_f64) {
                    out.push((format!("kernel.{kernel}/{case}.{field}"), ns));
                }
            }
        }
        if out.is_empty() {
            return Err("kernel bench array carries no *_ns_per_iter fields".into());
        }
        return Ok(out);
    }
    if v.as_object().is_some() {
        // BENCH_e2e.json: {scalar_ms, fast_ms, speedup, idle_pct_*, ...}.
        // The idle_pct fields are virtual-clock idle attribution (lower is
        // better, like everything here) under the two pipeline modes.
        let mut out = Vec::new();
        for field in [
            "fast_ms",
            "scalar_ms",
            "idle_pct_pipelined",
            "idle_pct_lockstep",
        ] {
            if let Some(ms) = v.get(field).and_then(Value::as_f64) {
                out.push((format!("e2e.{field}"), ms));
            }
        }
        if out.is_empty() {
            return Err("object is neither a BENCH_e2e summary nor a flight record".into());
        }
        return Ok(out);
    }
    Err("unrecognized summary format".into())
}

fn looks_like_flight(trimmed: &str) -> bool {
    // A flight log's first line is a complete JSON object with the
    // FlightRecord signature fields.
    let first = trimmed.lines().find(|l| !l.trim().is_empty());
    match first.map(serde_json::value_from_str) {
        Some(Ok(v)) => v.get("frame").is_some() && v.get("measured_tau").is_some(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{DeviceRecord, FlightRecord, FlightRecorder, TauTriple};

    const E2E_BASE: &str = r#"{"resolution":"1080p","frames":30,"scalar_ms":100.0,"fast_ms":50.0,"speedup":2.0,"outputs_identical":true}"#;

    fn e2e(fast_ms: f64) -> String {
        format!(
            r#"{{"resolution":"1080p","frames":30,"scalar_ms":100.0,"fast_ms":{fast_ms},"speedup":2.0,"outputs_identical":true}}"#
        )
    }

    const KERNELS_BASE: &str = r#"[
        {"kernel":"sad_grid","case":"1080p","iters":100,"scalar_ns_per_iter":900.0,"fast_ns_per_iter":300.0,"speedup":3.0},
        {"kernel":"interp","case":"row","iters":100,"scalar_ns_per_iter":500.0,"fast_ns_per_iter":200.0,"speedup":2.5}
    ]"#;

    fn flight_log(tau_tot: f64) -> String {
        let mut fr = FlightRecorder::new(16);
        for f in 0..4 {
            fr.push(FlightRecord {
                frame: f,
                rstar_device: 0,
                predicted_tau: Some(TauTriple {
                    tau1_ms: 10.0,
                    tau2_ms: 15.0,
                    tau_tot_ms: tau_tot,
                }),
                measured_tau: TauTriple {
                    tau1_ms: 10.0,
                    tau2_ms: 15.0,
                    tau_tot_ms: tau_tot,
                },
                inflight_depth: 1,
                devices: vec![DeviceRecord {
                    device: 0,
                    me_rows: 68,
                    interp_rows: 68,
                    sme_rows: 68,
                    predicted_busy_ms: Some(tau_tot),
                    compute_busy_ms: tau_tot,
                    transfer_busy_ms: 0.0,
                    overlap_carried_ms: 0.0,
                    residual_pct: Some(0.0),
                    blacklisted: false,
                }],
                bytes_transferred: 0,
                bytes_reused: 0,
                recovery_ms: 0.0,
                drift_devices: vec![],
                recharacterized: false,
            });
        }
        fr.to_jsonl()
    }

    #[test]
    fn identical_e2e_passes() {
        let o = compare_reports(E2E_BASE, E2E_BASE, 0.10).unwrap();
        assert!(o.passed());
        assert_eq!(o.metrics.len(), 2);
        assert!(o.render_text(0.10).contains("PASS"));
    }

    #[test]
    fn e2e_regression_beyond_threshold_fails() {
        // +20 % fast_ms against a 10 % threshold.
        let o = compare_reports(E2E_BASE, &e2e(60.0), 0.10).unwrap();
        assert!(!o.passed());
        assert_eq!(o.regressions, vec!["e2e.fast_ms".to_string()]);
        assert!(o.render_text(0.10).contains("REGRESSION"));
        // Improvement is never a regression.
        let o = compare_reports(E2E_BASE, &e2e(40.0), 0.10).unwrap();
        assert!(o.passed());
        // Within threshold passes.
        let o = compare_reports(E2E_BASE, &e2e(54.0), 0.10).unwrap();
        assert!(o.passed());
    }

    #[test]
    fn kernel_arrays_match_by_kernel_and_case() {
        let o = compare_reports(KERNELS_BASE, KERNELS_BASE, 0.10).unwrap();
        assert!(o.passed());
        assert_eq!(o.metrics.len(), 4);
        let regressed =
            KERNELS_BASE.replace("\"fast_ns_per_iter\":300.0", "\"fast_ns_per_iter\":400.0");
        let o = compare_reports(KERNELS_BASE, &regressed, 0.10).unwrap();
        assert_eq!(
            o.regressions,
            vec!["kernel.sad_grid/1080p.fast_ns_per_iter".to_string()]
        );
    }

    #[test]
    fn flight_logs_compare_on_tau_tot() {
        let base = flight_log(20.0);
        // +15 % τtot: regression at 10 %.
        let slow = flight_log(23.0);
        let o = compare_reports(&base, &slow, 0.10).unwrap();
        assert!(!o.passed());
        assert!(o
            .regressions
            .contains(&"flight.mean_tau_tot_ms".to_string()));
        // Same flight passes.
        assert!(compare_reports(&base, &base, 0.10).unwrap().passed());
    }

    fn e2e_with_idle(fast_ms: f64, idle_pipelined: f64, idle_lockstep: f64) -> String {
        format!(
            r#"{{"resolution":"1080p","frames":30,"scalar_ms":100.0,"fast_ms":{fast_ms},"speedup":2.0,"outputs_identical":true,"idle_pct_lockstep":{idle_lockstep},"idle_pct_pipelined":{idle_pipelined},"overlap_recovered_ms":1.5,"pipeline_outputs_identical":true}}"#
        )
    }

    #[test]
    fn metric_filter_compares_only_matching_metrics() {
        let base = e2e_with_idle(50.0, 30.0, 40.0);
        // fast_ms regressed badly, but the idle filter ignores it.
        let cand = e2e_with_idle(90.0, 29.0, 40.0);
        let o = compare_reports_metric(&base, &cand, 0.10, "idle_pct").unwrap();
        assert!(o.passed(), "{:?}", o.regressions);
        assert_eq!(o.metrics.len(), 2);
        assert!(o.metrics.iter().all(|m| m.name.contains("idle_pct")));
    }

    #[test]
    fn metric_filter_gates_the_overlap_win_itself() {
        let base = e2e_with_idle(50.0, 30.0, 40.0);
        // Candidate's pipelined idle is no better than its lockstep idle:
        // the overlap win evaporated even though nothing regressed vs base.
        let cand = e2e_with_idle(50.0, 40.0, 40.0);
        let o = compare_reports_metric(&base, &cand, 0.50, "idle_pct").unwrap();
        assert!(!o.passed());
        assert!(
            o.regressions.iter().any(|r| r.contains("no overlap win")),
            "{:?}",
            o.regressions
        );
        // A candidate without the idle fields is an error, not a silent pass.
        let err = compare_reports_metric(&base, E2E_BASE, 0.10, "idle_pct").unwrap_err();
        assert!(err.contains("idle_pct"), "{err}");
    }

    #[test]
    fn metric_filter_accepts_comma_separated_lists() {
        let base = e2e_with_idle(50.0, 30.0, 40.0);
        let cand = e2e_with_idle(90.0, 29.0, 40.0);
        // Both terms gate in one invocation; a term matching nothing in an
        // e2e summary (critical_path_us lives in flight logs) is harmless.
        let o = compare_reports_metric(&base, &cand, 0.10, "idle_pct,critical_path_us").unwrap();
        assert!(o.passed(), "{:?}", o.regressions);
        assert!(o.metrics.iter().all(|m| m.name.contains("idle_pct")));
        // A fast_ms term widens the match set and catches its regression.
        let o = compare_reports_metric(&base, &cand, 0.10, "idle_pct, fast_ms").unwrap();
        assert!(!o.passed());
        assert!(o.regressions.contains(&"e2e.fast_ms".to_string()));
        assert!(compare_reports_metric(&base, &cand, 0.10, " , ").is_err());
    }

    #[test]
    fn flight_logs_carry_critical_path_us() {
        let base = flight_log(20.0);
        let o = compare_reports_metric(&base, &flight_log(23.0), 0.10, "critical_path_us").unwrap();
        assert!(!o.passed());
        assert_eq!(o.regressions, vec!["flight.critical_path_us".to_string()]);
        let m = &o.metrics[0];
        // Mean per-frame τtot in µs.
        assert!((m.baseline - 20_000.0).abs() < 1e-6, "{m:?}");
        assert!((m.candidate - 23_000.0).abs() < 1e-6, "{m:?}");
    }

    #[test]
    fn mismatched_formats_error() {
        let err = compare_reports(E2E_BASE, KERNELS_BASE, 0.10).unwrap_err();
        assert!(err.contains("no common metrics"), "{err}");
        assert!(compare_reports("not json", E2E_BASE, 0.10).is_err());
    }
}
