//! Session-scoped telemetry: per-session metric registries and live device
//! state, multiplexed through a process-wide [`TelemetryHub`].
//!
//! The original `obs` design had exactly one process-global recorder —
//! fine for one encode per process, structurally wrong for an encode farm
//! where many sessions share a platform. A [`SessionScope`] is the
//! per-session replacement: it owns
//!
//! - an aggregated [`MemoryRecorder`] (this session's metric registry),
//! - live per-device state ([`DeviceLive`]: busy %, prediction residual,
//!   blacklist flag) for dashboards,
//! - a frames-done counter + wall-clock start for a frames/s figure, and
//! - a dropped-event counter fed by the bus's drop-and-count policy.
//!
//! Recording goes through the scope's [`Recorder`] facade. In *direct*
//! mode every record applies immediately to the session registry. Once a
//! [`TelemetryBus`] is attached ([`SessionScope::attach_bus`]) the facade
//! instead publishes fixed-size [`TelemetryEvent`]s and the bus's drain
//! thread applies them — the hot path never takes a lock and never blocks,
//! even when the drain side stalls (events are dropped and counted).
//!
//! The free functions [`crate::install`] / [`crate::global`] are a shim
//! over the hub's *default scope* (session id 0), so pre-scope call sites
//! keep working unchanged.

use crate::bus::{DeviceField, TelemetryBus, TelemetryEvent};
use crate::recorder::{MemoryRecorder, NoopRecorder, Recorder};
use crate::Metric;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Instant;

/// Retired sessions kept by the hub for late snapshot readers. Oldest
/// entries are evicted beyond this bound, so a long-lived farm cannot leak
/// one registry per completed job.
const MAX_RETIRED: usize = 64;

/// Frozen terminal state of a session whose last [`SessionScope`] handle
/// has dropped. The hub keeps a bounded history of these so the live
/// snapshot writer can still report sessions that ended *between* snapshot
/// ticks — without retirement, a short job could come and go invisibly.
#[derive(Clone)]
pub struct RetiredSession {
    /// Session id the scope had while live.
    pub id: u64,
    /// Human label given at creation.
    pub label: String,
    /// The session's final metric registry (shared, no longer written).
    pub metrics: Arc<MemoryRecorder>,
    /// Final per-device live state.
    pub devices: Vec<DeviceLive>,
    /// Frames completed over the session's lifetime.
    pub frames: u64,
    /// Frames per wall-clock second over the session's lifetime, frozen at
    /// retirement.
    pub fps: f64,
    /// Events lost to a full bus over the session's lifetime.
    pub dropped: u64,
}

/// Recover a read guard even if a panicking holder poisoned the lock —
/// telemetry must never take the encoder down with it.
macro_rules! read_lock {
    ($l:expr) => {
        $l.read().unwrap_or_else(|e| e.into_inner())
    };
}
macro_rules! write_lock {
    ($l:expr) => {
        $l.write().unwrap_or_else(|e| e.into_inner())
    };
}
macro_rules! mutex_lock {
    ($l:expr) => {
        $l.lock().unwrap_or_else(|e| e.into_inner())
    };
}

/// Live view of one device inside a session — the per-device row of the
/// `feves top` dashboard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceLive {
    /// Device index in platform enumeration order.
    pub device: usize,
    /// Display name (defaults to `dev<i>` until labeled).
    pub name: String,
    /// Compute-busy percentage of the most recent frame.
    pub busy_pct: f64,
    /// Signed LP-prediction residual of the most recent frame, when the
    /// frame carried a prediction.
    pub residual_pct: Option<f64>,
    /// Device is currently blacklisted by the health tracker.
    pub blacklisted: bool,
}

pub(crate) struct SessionInner {
    id: u64,
    label: String,
    metrics: Arc<MemoryRecorder>,
    /// Bus sink, set at most once; absent = direct mode.
    bus: OnceLock<Arc<TelemetryBus>>,
    /// Explicit recorder override — the [`crate::install`] shim slot on the
    /// default scope. When set, [`SessionScope::recorder`] returns it
    /// instead of the scope facade.
    override_rec: RwLock<Option<Arc<dyn Recorder>>>,
    /// Cached facade so `recorder()` is allocation-free after first use.
    facade: OnceLock<Arc<dyn Recorder>>,
    devices: Mutex<Vec<DeviceLive>>,
    frames: AtomicU64,
    /// Events this session failed to publish (bus full).
    dropped: AtomicU64,
    /// Portion of `dropped` already flushed into the metric registry.
    dropped_flushed: AtomicU64,
    started: Instant,
}

impl SessionInner {
    /// Route one event: publish to the bus when attached (drop-and-count on
    /// a full queue — never block), else apply directly.
    pub(crate) fn record(&self, ev: TelemetryEvent) {
        match self.bus.get() {
            Some(bus) => {
                if !bus.publish(ev) {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => self.apply(ev),
        }
    }

    /// Apply one event to this session's aggregates. Runs on the recording
    /// thread in direct mode and on the drain thread in bus mode.
    pub(crate) fn apply(&self, ev: TelemetryEvent) {
        match ev {
            TelemetryEvent::Add { metric, delta, .. } => self.metrics.add(metric, delta),
            TelemetryEvent::Gauge { metric, value, .. } => self.metrics.gauge(metric, value),
            TelemetryEvent::Observe { metric, value, .. } => self.metrics.observe(metric, value),
            TelemetryEvent::SpanEnd { name, dur_us, .. } => self.metrics.span_record(name, dur_us),
            TelemetryEvent::FrameDone { .. } => {
                self.frames.fetch_add(1, Ordering::Relaxed);
            }
            TelemetryEvent::Device {
                device,
                field,
                value,
                ..
            } => {
                let mut devices = mutex_lock!(self.devices);
                let device = device as usize;
                while devices.len() <= device {
                    let d = devices.len();
                    devices.push(DeviceLive {
                        device: d,
                        name: format!("dev{d}"),
                        ..DeviceLive::default()
                    });
                }
                let slot = &mut devices[device];
                match field {
                    DeviceField::BusyPct => slot.busy_pct = value,
                    // NaN encodes "no residual this frame" (probe frames).
                    DeviceField::ResidualPct => {
                        slot.residual_pct = if value.is_nan() { None } else { Some(value) }
                    }
                    DeviceField::Blacklisted => slot.blacklisted = value != 0.0,
                }
            }
        }
    }
}

impl Drop for SessionInner {
    fn drop(&mut self) {
        // The last handle to this session is gone: freeze its final state
        // into the hub's retirement ring so snapshot readers still see it.
        // Runs with arbitrary hub locks held by *other* threads — and
        // possibly inside this thread's own `sessions` read lock (a
        // transient upgrade in `lookup` can be the last strong reference) —
        // so it must only ever take the separate `retired` mutex.
        if self.id == 0 {
            return; // the default scope never retires
        }
        let total = self.dropped.load(Ordering::Relaxed);
        let flushed = self.dropped_flushed.load(Ordering::Relaxed);
        if total > flushed {
            self.metrics.add(Metric::ObsDroppedEvents, total - flushed);
        }
        let frames = self.frames.load(Ordering::Relaxed);
        let secs = self.started.elapsed().as_secs_f64();
        let retired = RetiredSession {
            id: self.id,
            label: std::mem::take(&mut self.label),
            metrics: self.metrics.clone(),
            devices: std::mem::take(&mut *mutex_lock!(self.devices)),
            frames,
            fps: if secs > 0.0 {
                frames as f64 / secs
            } else {
                0.0
            },
            dropped: total,
        };
        hub().retire(retired);
    }
}

/// The recorder facade of one scope: forwards every record as an event of
/// that session. Holds only a `Weak` back-reference — the facade is cached
/// *inside* the session, so a strong reference here would be a cycle that
/// kept every session alive (and unretirable) forever. Records arriving
/// after the session retired are dropped silently.
struct ScopeRecorder {
    session: u64,
    inner: Weak<SessionInner>,
}

impl Recorder for ScopeRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
    fn add(&self, m: Metric, delta: u64) {
        if let Some(inner) = self.inner.upgrade() {
            inner.record(TelemetryEvent::Add {
                session: self.session,
                metric: m,
                delta,
            });
        }
    }
    fn gauge(&self, m: Metric, value: f64) {
        if let Some(inner) = self.inner.upgrade() {
            inner.record(TelemetryEvent::Gauge {
                session: self.session,
                metric: m,
                value,
            });
        }
    }
    fn observe(&self, m: Metric, value: f64) {
        if let Some(inner) = self.inner.upgrade() {
            inner.record(TelemetryEvent::Observe {
                session: self.session,
                metric: m,
                value,
            });
        }
    }
    fn span_record(&self, name: &'static str, dur_us: u64) {
        if let Some(inner) = self.inner.upgrade() {
            inner.record(TelemetryEvent::SpanEnd {
                session: self.session,
                name,
                dur_us,
            });
        }
    }
}

/// A handle to one telemetry session. Clones share the same session; the
/// session stays registered with the hub while any clone (or the bus drain
/// thread's lookup) holds it.
#[derive(Clone)]
pub struct SessionScope {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for SessionScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionScope")
            .field("id", &self.inner.id)
            .field("label", &self.inner.label)
            .field("bus", &self.inner.bus.get().is_some())
            .finish()
    }
}

impl SessionScope {
    /// Session id (unique per process; 0 is the default scope).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Human label given at creation.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The recorder to hand to instrumented code. Returns the explicit
    /// override when one was installed (the [`crate::install`] shim), else
    /// this scope's event-routing facade.
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        if let Some(r) = read_lock!(self.inner.override_rec).as_ref() {
            return r.clone();
        }
        self.inner
            .facade
            .get_or_init(|| {
                Arc::new(ScopeRecorder {
                    session: self.inner.id,
                    inner: Arc::downgrade(&self.inner),
                })
            })
            .clone()
    }

    /// Install an explicit recorder override (the [`crate::install`] shim
    /// slot). Passing a [`NoopRecorder`] disables the default scope again.
    pub fn set_recorder(&self, rec: Arc<dyn Recorder>) {
        *write_lock!(self.inner.override_rec) = Some(rec);
    }

    /// Attach a telemetry bus: from now on every record of this scope is
    /// published as a bounded-queue event and applied by the bus's drain
    /// thread. Attach before recording; returns `false` (and changes
    /// nothing) if a bus was already attached.
    pub fn attach_bus(&self, bus: Arc<TelemetryBus>) -> bool {
        self.inner.bus.set(bus).is_ok()
    }

    /// The aggregated per-session metric registry. In bus mode this view
    /// trails the hot path until the drain thread catches up — flush the
    /// bus (e.g. [`crate::bus::BusController::stop`]) before asserting on
    /// final values.
    pub fn metrics(&self) -> Arc<MemoryRecorder> {
        self.inner.metrics.clone()
    }

    /// Label the per-device rows (platform enumeration order). Applied
    /// immediately — labels are setup data, not events.
    pub fn set_device_labels<S: AsRef<str>>(&self, labels: &[S]) {
        let mut devices = mutex_lock!(self.inner.devices);
        for (d, label) in labels.iter().enumerate() {
            while devices.len() <= d {
                let i = devices.len();
                devices.push(DeviceLive {
                    device: i,
                    name: format!("dev{i}"),
                    ..DeviceLive::default()
                });
            }
            devices[d].name = label.as_ref().to_string();
        }
    }

    /// Record one device's live sample for the current frame.
    pub fn device_sample(
        &self,
        device: usize,
        busy_pct: f64,
        residual_pct: Option<f64>,
        blacklisted: bool,
    ) {
        let session = self.inner.id;
        let device = device as u32;
        self.inner.record(TelemetryEvent::Device {
            session,
            device,
            field: DeviceField::BusyPct,
            value: busy_pct,
        });
        self.inner.record(TelemetryEvent::Device {
            session,
            device,
            field: DeviceField::ResidualPct,
            value: residual_pct.unwrap_or(f64::NAN),
        });
        self.inner.record(TelemetryEvent::Device {
            session,
            device,
            field: DeviceField::Blacklisted,
            value: if blacklisted { 1.0 } else { 0.0 },
        });
    }

    /// Mark one frame complete (feeds the frames/s figure).
    pub fn frame_done(&self) {
        let session = self.inner.id;
        self.inner.record(TelemetryEvent::FrameDone { session });
    }

    /// Frames completed so far (drained view in bus mode).
    pub fn frames(&self) -> u64 {
        self.inner.frames.load(Ordering::Relaxed)
    }

    /// Frames per wall-clock second since the scope was created.
    pub fn fps(&self) -> f64 {
        let secs = self.inner.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.frames() as f64 / secs
        } else {
            0.0
        }
    }

    /// Events this session lost to a full bus so far.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Fold any not-yet-flushed drop count into the session registry's
    /// `obs.dropped_events` counter. Called by the live-snapshot writer and
    /// before final exports; idempotent between new drops.
    pub fn sync_dropped(&self) {
        let total = self.inner.dropped.load(Ordering::Relaxed);
        let prev = self.inner.dropped_flushed.swap(total, Ordering::Relaxed);
        if total > prev {
            self.inner
                .metrics
                .add(Metric::ObsDroppedEvents, total - prev);
        }
    }

    /// Snapshot of the live per-device state.
    pub fn devices(&self) -> Vec<DeviceLive> {
        mutex_lock!(self.inner.devices).clone()
    }

    pub(crate) fn inner(&self) -> &Arc<SessionInner> {
        &self.inner
    }
}

/// Process-wide registry of telemetry sessions. The hub hands out
/// [`SessionScope`]s, resolves bus events back to their session, and
/// enumerates live sessions for the snapshot writer. Sessions deregister
/// automatically when the last scope handle drops (the hub only holds
/// weak references).
pub struct TelemetryHub {
    sessions: RwLock<Vec<Weak<SessionInner>>>,
    next_id: AtomicU64,
    default: OnceLock<SessionScope>,
    /// Bounded ring of recently ended sessions (see [`RetiredSession`]).
    retired: Mutex<VecDeque<RetiredSession>>,
}

/// The process-wide hub singleton.
pub fn hub() -> &'static TelemetryHub {
    static HUB: OnceLock<TelemetryHub> = OnceLock::new();
    HUB.get_or_init(|| TelemetryHub {
        sessions: RwLock::new(Vec::new()),
        next_id: AtomicU64::new(1),
        default: OnceLock::new(),
        retired: Mutex::new(VecDeque::new()),
    })
}

impl TelemetryHub {
    /// Create and register a new session.
    pub fn session(&self, label: &str) -> SessionScope {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.register(id, label, None)
    }

    fn register(
        &self,
        id: u64,
        label: &str,
        override_rec: Option<Arc<dyn Recorder>>,
    ) -> SessionScope {
        let inner = Arc::new(SessionInner {
            id,
            label: label.to_string(),
            metrics: Arc::new(MemoryRecorder::new()),
            bus: OnceLock::new(),
            override_rec: RwLock::new(override_rec),
            facade: OnceLock::new(),
            devices: Mutex::new(Vec::new()),
            frames: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dropped_flushed: AtomicU64::new(0),
            started: Instant::now(),
        });
        write_lock!(self.sessions).push(Arc::downgrade(&inner));
        SessionScope { inner }
    }

    /// The default scope backing [`crate::install`] / [`crate::global`].
    /// Its recorder override starts as a [`NoopRecorder`], preserving the
    /// historical "disabled until installed" behaviour.
    pub fn default_scope(&self) -> SessionScope {
        self.default
            .get_or_init(|| self.register(0, "default", Some(Arc::new(NoopRecorder))))
            .clone()
    }

    /// All live sessions (pruning dead registrations), creation order,
    /// default scope excluded.
    pub fn scopes(&self) -> Vec<SessionScope> {
        let mut out = Vec::new();
        let mut sessions = write_lock!(self.sessions);
        sessions.retain(|w| match w.upgrade() {
            Some(inner) => {
                if inner.id != 0 {
                    out.push(SessionScope { inner });
                }
                true
            }
            None => false,
        });
        out
    }

    /// Recently ended sessions, oldest first (bounded history — see
    /// [`RetiredSession`]).
    pub fn retired(&self) -> Vec<RetiredSession> {
        mutex_lock!(self.retired).iter().cloned().collect()
    }

    fn retire(&self, session: RetiredSession) {
        let mut ring = mutex_lock!(self.retired);
        if ring.len() >= MAX_RETIRED {
            ring.pop_front();
        }
        ring.push_back(session);
    }

    /// Resolve a session id to its scope (drain-thread lookup).
    pub(crate) fn lookup(&self, id: u64) -> Option<SessionScope> {
        read_lock!(self.sessions)
            .iter()
            .filter_map(Weak::upgrade)
            .find(|inner| inner.id == id)
            .map(|inner| SessionScope { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_scope_applies_immediately() {
        let scope = hub().session("direct");
        let rec = scope.recorder();
        assert!(rec.enabled());
        rec.add(Metric::FramesEncoded, 3);
        rec.observe(Metric::FrameTauTotMs, 31.0);
        rec.span_record("x", 12);
        scope.frame_done();
        scope.device_sample(1, 88.5, Some(-2.0), false);
        let m = scope.metrics();
        assert_eq!(m.counter(Metric::FramesEncoded), 3);
        assert_eq!(m.histogram(Metric::FrameTauTotMs).count(), 1);
        assert_eq!(scope.frames(), 1);
        let devices = scope.devices();
        assert_eq!(devices.len(), 2);
        assert_eq!(devices[0].name, "dev0");
        assert_eq!(devices[1].busy_pct, 88.5);
        assert_eq!(devices[1].residual_pct, Some(-2.0));
    }

    #[test]
    fn sessions_do_not_share_registries() {
        let a = hub().session("a");
        let b = hub().session("b");
        assert_ne!(a.id(), b.id());
        a.recorder().add(Metric::FramesEncoded, 5);
        b.recorder().add(Metric::FramesEncoded, 7);
        assert_eq!(a.metrics().counter(Metric::FramesEncoded), 5);
        assert_eq!(b.metrics().counter(Metric::FramesEncoded), 7);
    }

    #[test]
    fn hub_prunes_dead_sessions() {
        let label = "prune-me-unique";
        {
            let s = hub().session(label);
            assert!(hub().scopes().iter().any(|x| x.label() == label));
            drop(s);
        }
        assert!(!hub().scopes().iter().any(|x| x.label() == label));
    }

    #[test]
    fn device_labels_and_residual_clear() {
        let scope = hub().session("labels");
        scope.set_device_labels(&["GPU", "CPU0"]);
        scope.device_sample(0, 50.0, Some(1.0), false);
        scope.device_sample(0, 60.0, None, true);
        let d = &scope.devices()[0];
        assert_eq!(d.name, "GPU");
        assert_eq!(d.busy_pct, 60.0);
        assert_eq!(d.residual_pct, None, "NaN sample clears the residual");
        assert!(d.blacklisted);
    }

    #[test]
    fn retirement_preserves_final_state() {
        let label = "retire-me-unique";
        {
            let s = hub().session(label);
            s.recorder().add(Metric::FramesEncoded, 2);
            s.frame_done();
            s.device_sample(0, 10.0, None, false);
            s.inner.dropped.store(3, Ordering::Relaxed);
        }
        let retired = hub().retired();
        let r = retired
            .iter()
            .find(|r| r.label == label)
            .expect("dropped session must appear in the retirement ring");
        assert_eq!(r.frames, 1);
        assert_eq!(r.devices.len(), 1);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.metrics.counter(Metric::FramesEncoded), 2);
        assert_eq!(
            r.metrics.counter(Metric::ObsDroppedEvents),
            3,
            "outstanding drops are folded into the registry at retirement"
        );
    }

    #[test]
    fn sync_dropped_is_incremental() {
        let scope = hub().session("drops");
        scope.inner.dropped.store(4, Ordering::Relaxed);
        scope.sync_dropped();
        assert_eq!(scope.metrics().counter(Metric::ObsDroppedEvents), 4);
        scope.sync_dropped();
        assert_eq!(scope.metrics().counter(Metric::ObsDroppedEvents), 4);
        scope.inner.dropped.store(9, Ordering::Relaxed);
        scope.sync_dropped();
        assert_eq!(scope.metrics().counter(Metric::ObsDroppedEvents), 9);
    }
}
