//! Prediction-audit analytics over flight records.
//!
//! Turns a sequence of [`FlightRecord`]s into the quantities the paper
//! plots and the drift detector consumes:
//!
//! - **Prediction residuals** per device: signed
//!   `(measured − predicted) / predicted · 100`, summarized as mean, EWMA
//!   (recency-weighted state, the drift detector's view) and percentiles of
//!   the absolute residual. Per-device [`Histogram`]s are merged into one
//!   fleet histogram for fleet-level percentiles.
//! - **Load-imbalance index** per frame: max/mean compute-busy time over
//!   working devices — the Fig 6 quantity (1.0 = perfectly balanced).
//! - **Utilization and idle attribution** per device: busy fraction of
//!   τtot, with idle time split into transfer-covered and barrier-wait
//!   shares.
//!
//! Blacklisted devices are excluded from residual statistics: their gap is
//! a fault, not characterization drift.

use crate::flight::FlightRecord;
use crate::histogram::Histogram;
use crate::percentile_exact;
use serde::{Deserialize, Serialize};

/// Signed prediction residual in percent, `None` when there is no usable
/// prediction (absent, non-finite, or ~zero predicted time).
pub fn residual_pct(predicted_ms: f64, measured_ms: f64) -> Option<f64> {
    if !(predicted_ms.is_finite() && measured_ms.is_finite()) || predicted_ms <= 1e-9 {
        return None;
    }
    Some((measured_ms - predicted_ms) / predicted_ms * 100.0)
}

/// Load-imbalance index: `max(busy) / mean(busy)` over entries that did
/// work (`> 0`). `None` when no entry was busy. 1.0 means perfect balance;
/// the paper's Fig 6 plots exactly this per frame.
pub fn imbalance_index(busy: &[f64]) -> Option<f64> {
    let working: Vec<f64> = busy
        .iter()
        .copied()
        .filter(|b| b.is_finite() && *b > 0.0)
        .collect();
    if working.is_empty() {
        return None;
    }
    let mean = working.iter().sum::<f64>() / working.len() as f64;
    let max = working.iter().fold(0.0f64, |a, &b| a.max(b));
    Some(max / mean)
}

/// Per-device audit rollup.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceAudit {
    /// Device index.
    pub device: usize,
    /// Frames where this device produced a usable residual.
    pub audited_frames: usize,
    /// Frames this device spent blacklisted (excluded from residuals).
    pub blacklisted_frames: usize,
    /// Mean signed residual % (`None` with no audited frames).
    pub mean_residual_pct: Option<f64>,
    /// EWMA of the signed residual % — the drift detector's recency view.
    pub ewma_residual_pct: Option<f64>,
    /// p95 of |residual| % (exact nearest-rank).
    pub p95_abs_residual_pct: Option<f64>,
    /// Mean compute-busy fraction of τtot.
    pub mean_utilization: f64,
    /// Mean idle ms per frame covered by this device's copy engines
    /// (transfers the compute queue waited out).
    pub mean_idle_transfer_ms: f64,
    /// Mean idle ms per frame not covered by transfers — barrier wait at
    /// the sync points.
    pub mean_idle_barrier_ms: f64,
}

/// Whole-flight audit summary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Flight records audited.
    pub frames: usize,
    /// Frames that carried an LP prediction.
    pub predicted_frames: usize,
    /// Per-device rollups, device order.
    pub devices: Vec<DeviceAudit>,
    /// Fleet-level p95 of |residual| %, from merged per-device histograms
    /// (bucket upper bound, ≤ 9 % relative error).
    pub fleet_p95_abs_residual_pct: Option<f64>,
    /// Mean per-frame imbalance index (Fig 6).
    pub mean_imbalance_index: Option<f64>,
    /// Worst per-frame imbalance index.
    pub max_imbalance_index: Option<f64>,
    /// Mean measured τtot (ms) — the headline number `feves compare` gates.
    pub mean_tau_tot_ms: f64,
    /// Mean signed τtot residual % over predicted frames.
    pub mean_tau_tot_residual_pct: Option<f64>,
    /// Total drift-detector firings across the flight.
    pub drift_events: usize,
    /// Frames that triggered re-characterization.
    pub recharacterizations: usize,
    /// Total bytes transferred / reused across the flight.
    pub bytes_transferred: u64,
    /// Bytes saved by Δ/σ data reuse.
    pub bytes_reused: u64,
}

impl AuditSummary {
    /// Compute the rolling analytics over `records` (oldest first).
    /// `ewma_alpha` weights the residual EWMA (1.0 = last sample).
    pub fn from_records(records: &[FlightRecord], ewma_alpha: f64) -> AuditSummary {
        let n_devices = records.iter().map(|r| r.devices.len()).max().unwrap_or(0);
        let mut devices = Vec::with_capacity(n_devices);
        let fleet = Histogram::new();
        for d in 0..n_devices {
            let mut signed: Vec<f64> = Vec::new();
            let mut abs: Vec<f64> = Vec::new();
            let hist = Histogram::new();
            let mut ewma: Option<f64> = None;
            let mut blacklisted = 0usize;
            let mut util_sum = 0.0;
            let mut util_frames = 0usize;
            let mut idle_xfer = 0.0;
            let mut idle_barrier = 0.0;
            for (i, r) in records.iter().enumerate() {
                let Some(dev) = r.devices.get(d) else {
                    continue;
                };
                if dev.blacklisted {
                    blacklisted += 1;
                    continue;
                }
                let tau = r.measured_tau.tau_tot_ms.max(1e-9);
                // Window-correct the busy time for pipelined runs: this
                // record's `overlap_carried_ms` ran inside the *previous*
                // frame's window, while the next record's carried span ran
                // inside this frame's idle tail. Without the correction a
                // device spanning two generations is counted busy in both
                // windows — utilization inflates and barrier idle shrinks
                // by the same double-counted span. Zero everywhere under
                // `--pipeline off`, so lockstep audits are unchanged.
                let carried_in = records
                    .get(i + 1)
                    .and_then(|n| n.devices.get(d))
                    .map_or(0.0, |n| n.overlap_carried_ms);
                let window_busy =
                    (dev.compute_busy_ms - dev.overlap_carried_ms + carried_in).max(0.0);
                util_sum += window_busy / tau;
                util_frames += 1;
                let idle = (tau - window_busy).max(0.0);
                let covered = dev.transfer_busy_ms.min(idle);
                idle_xfer += covered;
                idle_barrier += idle - covered;
                if let Some(res) = dev.residual_pct {
                    if res.is_finite() {
                        signed.push(res);
                        abs.push(res.abs());
                        hist.observe(res.abs());
                        ewma = Some(match ewma {
                            None => res,
                            Some(old) => ewma_alpha * res + (1.0 - ewma_alpha) * old,
                        });
                    }
                }
            }
            fleet.merge(&hist);
            let p95 = percentile_exact(&mut abs, 95.0);
            devices.push(DeviceAudit {
                device: d,
                audited_frames: signed.len(),
                blacklisted_frames: blacklisted,
                mean_residual_pct: mean(&signed),
                ewma_residual_pct: ewma,
                p95_abs_residual_pct: if p95.is_nan() { None } else { Some(p95) },
                mean_utilization: if util_frames == 0 {
                    0.0
                } else {
                    util_sum / util_frames as f64
                },
                mean_idle_transfer_ms: per_frame(idle_xfer, util_frames),
                mean_idle_barrier_ms: per_frame(idle_barrier, util_frames),
            });
        }

        let imbalance: Vec<f64> = records.iter().filter_map(|r| r.imbalance_index()).collect();
        let mut tau_res: Vec<f64> = Vec::new();
        let mut tau_sum = 0.0;
        for r in records {
            tau_sum += r.measured_tau.tau_tot_ms;
            if let Some(p) = &r.predicted_tau {
                if let Some(res) = residual_pct(p.tau_tot_ms, r.measured_tau.tau_tot_ms) {
                    tau_res.push(res);
                }
            }
        }
        let max_imb = imbalance.iter().fold(f64::NAN, |a, &b| a.max(b));
        AuditSummary {
            frames: records.len(),
            predicted_frames: records.iter().filter(|r| r.predicted_tau.is_some()).count(),
            devices,
            fleet_p95_abs_residual_pct: if fleet.count() == 0 {
                None
            } else {
                Some(fleet.percentile(95.0))
            },
            mean_imbalance_index: mean(&imbalance),
            max_imbalance_index: if max_imb.is_nan() {
                None
            } else {
                Some(max_imb)
            },
            mean_tau_tot_ms: if records.is_empty() {
                0.0
            } else {
                tau_sum / records.len() as f64
            },
            mean_tau_tot_residual_pct: mean(&tau_res),
            drift_events: records.iter().map(|r| r.drift_devices.len()).sum(),
            recharacterizations: records.iter().filter(|r| r.recharacterized).count(),
            bytes_transferred: records.iter().map(|r| r.bytes_transferred).sum(),
            bytes_reused: records.iter().map(|r| r.bytes_reused).sum(),
        }
    }

    /// Human-readable summary (the `feves report` text view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight audit: {} frames ({} with LP predictions)\n",
            self.frames, self.predicted_frames
        ));
        out.push_str(&format!(
            "  mean tau_tot {:.3} ms | tau_tot residual {} | imbalance mean {} max {}\n",
            self.mean_tau_tot_ms,
            fmt_opt_pct(self.mean_tau_tot_residual_pct),
            fmt_opt(self.mean_imbalance_index),
            fmt_opt(self.max_imbalance_index),
        ));
        out.push_str(&format!(
            "  drift events {} | recharacterizations {} | fleet p95 |residual| {}\n",
            self.drift_events,
            self.recharacterizations,
            fmt_opt_pct(self.fleet_p95_abs_residual_pct),
        ));
        out.push_str(&format!(
            "  bytes transferred {} | reused {}\n",
            self.bytes_transferred, self.bytes_reused
        ));
        out.push_str(&format!(
            "  {:<6} {:>7} {:>6} {:>11} {:>11} {:>11} {:>6} {:>10} {:>10}\n",
            "device",
            "audited",
            "black",
            "mean res%",
            "ewma res%",
            "p95|res|%",
            "util",
            "idle xfer",
            "idle wait"
        ));
        for d in &self.devices {
            out.push_str(&format!(
                "  dev{:<3} {:>7} {:>6} {:>11} {:>11} {:>11} {:>5.0}% {:>8.2}ms {:>8.2}ms\n",
                d.device,
                d.audited_frames,
                d.blacklisted_frames,
                fmt_opt(d.mean_residual_pct),
                fmt_opt(d.ewma_residual_pct),
                fmt_opt(d.p95_abs_residual_pct),
                d.mean_utilization * 100.0,
                d.mean_idle_transfer_ms,
                d.mean_idle_barrier_ms,
            ));
        }
        out
    }
}

fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

fn per_frame(total: f64, frames: usize) -> f64 {
    if frames == 0 {
        0.0
    } else {
        total / frames as f64
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into())
}

fn fmt_opt_pct(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}%")).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{DeviceRecord, FlightRecord, TauTriple};

    fn record(frame: usize, busy: &[(f64, Option<f64>, bool)]) -> FlightRecord {
        // (compute_busy_ms, predicted_busy_ms, blacklisted) per device.
        FlightRecord {
            frame,
            rstar_device: 0,
            predicted_tau: Some(TauTriple {
                tau1_ms: 10.0,
                tau2_ms: 15.0,
                tau_tot_ms: 20.0,
            }),
            measured_tau: TauTriple {
                tau1_ms: 10.0,
                tau2_ms: 15.0,
                tau_tot_ms: 22.0,
            },
            inflight_depth: 1,
            devices: busy
                .iter()
                .enumerate()
                .map(|(d, &(measured, predicted, blacklisted))| DeviceRecord {
                    device: d,
                    me_rows: 10,
                    interp_rows: 10,
                    sme_rows: 10,
                    predicted_busy_ms: predicted,
                    compute_busy_ms: measured,
                    transfer_busy_ms: 2.0,
                    overlap_carried_ms: 0.0,
                    residual_pct: predicted.and_then(|p| residual_pct(p, measured)),
                    blacklisted,
                })
                .collect(),
            bytes_transferred: 100,
            bytes_reused: 10,
            recovery_ms: 0.0,
            drift_devices: vec![],
            recharacterized: false,
        }
    }

    #[test]
    fn residual_is_signed_and_guarded() {
        assert_eq!(residual_pct(10.0, 12.0), Some(20.0));
        assert_eq!(residual_pct(10.0, 8.0), Some(-20.0));
        assert_eq!(residual_pct(0.0, 5.0), None, "zero prediction");
        assert_eq!(residual_pct(f64::NAN, 5.0), None);
        assert_eq!(residual_pct(10.0, f64::INFINITY), None);
    }

    #[test]
    fn imbalance_ignores_idle_devices() {
        // Devices that did nothing don't drag the mean down.
        assert!((imbalance_index(&[30.0, 10.0, 0.0]).unwrap() - 1.5).abs() < 1e-12);
        assert!((imbalance_index(&[10.0, 10.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(imbalance_index(&[]), None);
        assert_eq!(imbalance_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn summary_aggregates_residuals_per_device() {
        let records = vec![
            record(0, &[(12.0, Some(10.0), false), (5.0, Some(5.0), false)]),
            record(1, &[(13.0, Some(10.0), false), (5.0, Some(5.0), false)]),
        ];
        let s = AuditSummary::from_records(&records, 1.0);
        assert_eq!(s.frames, 2);
        assert_eq!(s.predicted_frames, 2);
        assert_eq!(s.devices.len(), 2);
        let d0 = &s.devices[0];
        assert_eq!(d0.audited_frames, 2);
        assert!((d0.mean_residual_pct.unwrap() - 25.0).abs() < 1e-9);
        // α = 1: EWMA is the last sample (+30 %).
        assert!((d0.ewma_residual_pct.unwrap() - 30.0).abs() < 1e-9);
        assert!((s.devices[1].mean_residual_pct.unwrap() - 0.0).abs() < 1e-9);
        // τtot residual: (22 − 20)/20 = +10 %.
        assert!((s.mean_tau_tot_residual_pct.unwrap() - 10.0).abs() < 1e-9);
        assert!((s.mean_tau_tot_ms - 22.0).abs() < 1e-9);
        assert!(s.fleet_p95_abs_residual_pct.is_some());
    }

    #[test]
    fn blacklisted_devices_are_excluded_from_residuals() {
        let records = vec![
            record(0, &[(50.0, Some(10.0), true), (5.0, Some(5.0), false)]),
            record(1, &[(50.0, Some(10.0), true), (5.0, Some(5.0), false)]),
        ];
        let s = AuditSummary::from_records(&records, 1.0);
        let d0 = &s.devices[0];
        assert_eq!(d0.audited_frames, 0);
        assert_eq!(d0.blacklisted_frames, 2);
        assert_eq!(d0.mean_residual_pct, None, "+400% gap must not pollute");
        assert_eq!(d0.p95_abs_residual_pct, None);
    }

    #[test]
    fn idle_attribution_splits_transfer_and_barrier() {
        // τtot 22, busy 12 → idle 10; transfers 2 → 2 covered, 8 barrier.
        let records = vec![record(0, &[(12.0, Some(10.0), false)])];
        let s = AuditSummary::from_records(&records, 1.0);
        let d = &s.devices[0];
        assert!((d.mean_idle_transfer_ms - 2.0).abs() < 1e-9);
        assert!((d.mean_idle_barrier_ms - 8.0).abs() < 1e-9);
        assert!((d.mean_utilization - 12.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_spans_are_not_double_counted() {
        // Two pipelined frames, τtot 22 each, device busy 12 of which 3 ms
        // of frame 1's work ran inside frame 0's window. Naive accounting
        // charges the 3 ms to both windows (util (12+12)/44); corrected,
        // frame 0's window holds 12 + 3 and frame 1's 12 − 3.
        let mut r0 = record(0, &[(12.0, Some(10.0), false)]);
        r0.inflight_depth = 1;
        let mut r1 = record(1, &[(12.0, Some(10.0), false)]);
        r1.inflight_depth = 2;
        r1.devices[0].overlap_carried_ms = 3.0;
        let s = AuditSummary::from_records(&[r0, r1], 1.0);
        let d = &s.devices[0];
        let expected_util = (15.0 / 22.0 + 9.0 / 22.0) / 2.0;
        assert!((d.mean_utilization - expected_util).abs() < 1e-9);
        // Total idle across both windows shrinks by exactly the span the
        // pipeline filled: (22−15) + (22−9) = 20 vs the lockstep 2 × 10.
        let total_idle = (d.mean_idle_transfer_ms + d.mean_idle_barrier_ms) * 2.0;
        assert!((total_idle - 20.0).abs() < 1e-9);
        // Mean utilization is unchanged in aggregate (the same work just
        // moved between windows): 24/44 either way.
        assert!((expected_util - 24.0 / 44.0).abs() < 1e-9);
    }

    #[test]
    fn empty_flight_is_a_quiet_summary() {
        let s = AuditSummary::from_records(&[], 1.0);
        assert_eq!(s.frames, 0);
        assert_eq!(s.devices.len(), 0);
        assert_eq!(s.mean_imbalance_index, None);
        assert_eq!(s.fleet_p95_abs_residual_pct, None);
        // And it serializes (no NaN fields).
        serde_json::to_string(&s).expect("all fields finite or null");
        assert!(!s.render_text().is_empty());
    }

    #[test]
    fn summary_counts_drift_and_recharacterization() {
        let mut r0 = record(0, &[(12.0, Some(10.0), false)]);
        r0.drift_devices = vec![0];
        r0.recharacterized = true;
        let r1 = record(1, &[(12.0, Some(10.0), false)]);
        let s = AuditSummary::from_records(&[r0, r1], 1.0);
        assert_eq!(s.drift_events, 1);
        assert_eq!(s.recharacterizations, 1);
    }
}
