//! Critical-path analysis over trace logs: reconstruct the span DAG,
//! attribute each job's wall time to nine exclusive buckets, and project
//! what-if latency under a scaled device profile.
//!
//! The bucket set mirrors where a farm job can spend time end to end:
//! `{queue, admission, transfer, kernel, barrier, pipeline_recovered,
//! checkpoint, retry, drain}`. Lifecycle buckets come straight from the
//! wall-clock sub-spans the farm records (they tile the job root by
//! construction); each attempt's remaining execution time is split among
//! the frame-level buckets by the *virtual-clock* fractions of its frame
//! spans — kernel busy is the slowest device's compute lane (the τ-sync
//! bound of Algorithm 1), transfer is the copy-engine residue, barrier is
//! the τ-sync stall left over, and `pipeline_recovered` is the share of
//! that stall `core::pipeline` filled with the next frame's phase 1. The
//! sum of a job's buckets therefore equals its measured wall time.
//!
//! The what-if projection is LP-grounded without re-running the solver:
//! Algorithm 2's optimality condition is equal per-device finishing times,
//! so re-balancing rows against scaled rates reduces to the waterfill
//! `busy' = Σrows / Σ(1/k'_d)` per frame, with each frame's non-kernel
//! overhead (transfers, R*, barriers) carried over unchanged.

use crate::flight::FlightRecord;
use crate::trace::{DeviceSlice, EdgeKind, TraceLog, TraceSpan};
use std::collections::{HashMap, HashSet};

/// An exclusive wall-time bucket of a job's critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    /// Waiting in the admission queue for a worker slot.
    Queue,
    /// Spool scan + admission-control processing.
    Admission,
    /// Copy-engine (H2D/D2H) residue on the frame critical path.
    Transfer,
    /// Kernel busy — the slowest device's compute lanes (τ bound).
    Kernel,
    /// τ-sync barrier stall not recovered by pipelining.
    Barrier,
    /// Barrier stall filled with the next frame's phase-1 work.
    PipelineRecovered,
    /// Writing durable checkpoints.
    Checkpoint,
    /// Backoff between a failed attempt and its retry dispatch.
    Retry,
    /// Post-completion bookkeeping / farm drain.
    Drain,
}

impl Bucket {
    /// Every bucket, rendering order.
    pub const ALL: [Bucket; 9] = [
        Bucket::Queue,
        Bucket::Admission,
        Bucket::Transfer,
        Bucket::Kernel,
        Bucket::Barrier,
        Bucket::PipelineRecovered,
        Bucket::Checkpoint,
        Bucket::Retry,
        Bucket::Drain,
    ];

    /// Stable name (report/compare key).
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Queue => "queue",
            Bucket::Admission => "admission",
            Bucket::Transfer => "transfer",
            Bucket::Kernel => "kernel",
            Bucket::Barrier => "barrier",
            Bucket::PipelineRecovered => "pipeline_recovered",
            Bucket::Checkpoint => "checkpoint",
            Bucket::Retry => "retry",
            Bucket::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        Bucket::ALL.iter().position(|b| *b == self).expect("member")
    }
}

/// Critical-path analysis of one job (one trace id).
#[derive(Clone, Debug)]
pub struct JobCritical {
    /// Trace id (= job seed).
    pub trace_id: u64,
    /// Root span name (`job:<id>`).
    pub name: String,
    /// Measured job wall time (root span duration), µs.
    pub wall_us: f64,
    /// Exclusive bucket attribution, µs, indexed by [`Bucket::ALL`]. Sums
    /// to `wall_us`.
    pub buckets: [f64; 9],
    /// Names of the lifecycle spans on the job's path, in time order.
    pub path: Vec<String>,
    /// Checkpoint→resume edges the path routes through (>0 iff the job
    /// was retried from a checkpoint).
    pub resume_edges: usize,
    /// Frames observed across attempts.
    pub frames: usize,
}

impl JobCritical {
    /// Bucket value, µs.
    pub fn bucket_us(&self, b: Bucket) -> f64 {
        self.buckets[b.index()]
    }

    /// Sum of all buckets, µs (equals `wall_us` up to float error).
    pub fn bucket_sum_us(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

/// Farm-wide critical-path report over a merged trace log.
#[derive(Clone, Debug, Default)]
pub struct CriticalReport {
    /// One entry per trace id, ascending.
    pub jobs: Vec<JobCritical>,
}

/// Validate the span DAG of a trace log: every span's parent must exist
/// within its trace, every span must be reachable from its trace's single
/// root via parent links, and the combined graph (parent links + causal
/// edges) must be acyclic.
pub fn validate_dag(log: &TraceLog) -> Result<(), String> {
    for trace_id in log.trace_ids() {
        let spans: Vec<&TraceSpan> = log
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        if ids.len() != spans.len() {
            return Err(format!("trace {trace_id:016x}: duplicate span ids"));
        }
        let roots: Vec<&&TraceSpan> = spans.iter().filter(|s| s.parent.is_none()).collect();
        if roots.len() != 1 {
            return Err(format!(
                "trace {trace_id:016x}: expected 1 root span, found {}",
                roots.len()
            ));
        }
        let root = roots[0].span_id;
        // Reachability from the root over parent links.
        let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
        for s in &spans {
            if let Some(p) = s.parent {
                if !ids.contains(&p) {
                    return Err(format!(
                        "trace {trace_id:016x}: span {:?} has unknown parent {p:016x}",
                        s.name
                    ));
                }
                children.entry(p).or_default().push(s.span_id);
            }
        }
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if reachable.insert(id) {
                if let Some(kids) = children.get(&id) {
                    stack.extend_from_slice(kids);
                }
            }
        }
        if reachable.len() != spans.len() {
            let orphan = spans
                .iter()
                .find(|s| !reachable.contains(&s.span_id))
                .expect("count mismatch implies an orphan");
            return Err(format!(
                "trace {trace_id:016x}: span {:?} unreachable from root",
                orphan.name
            ));
        }
        // Acyclicity of parent links + causal edges (Kahn's algorithm).
        let mut indeg: HashMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        let add_edge = |adj: &mut HashMap<u64, Vec<u64>>,
                        indeg: &mut HashMap<u64, usize>,
                        from: u64,
                        to: u64| {
            adj.entry(from).or_default().push(to);
            *indeg.entry(to).or_default() += 1;
        };
        for s in &spans {
            if let Some(p) = s.parent {
                add_edge(&mut adj, &mut indeg, p, s.span_id);
            }
        }
        for e in log.edges.iter().filter(|e| e.trace_id == trace_id) {
            if !ids.contains(&e.from_span) || !ids.contains(&e.to_span) {
                return Err(format!(
                    "trace {trace_id:016x}: edge endpoint missing ({:016x}→{:016x})",
                    e.from_span, e.to_span
                ));
            }
            add_edge(&mut adj, &mut indeg, e.from_span, e.to_span);
        }
        let mut queue: Vec<u64> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut visited = 0usize;
        while let Some(id) = queue.pop() {
            visited += 1;
            for &next in adj.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                let d = indeg.get_mut(&next).expect("known node");
                *d -= 1;
                if *d == 0 {
                    queue.push(next);
                }
            }
        }
        if visited != spans.len() {
            return Err(format!("trace {trace_id:016x}: span DAG has a cycle"));
        }
    }
    Ok(())
}

/// Virtual-clock decomposition of one frame span, µs.
struct FrameSplit {
    kernel: f64,
    transfer: f64,
    barrier: f64,
    recovered: f64,
}

fn split_frame(f: &TraceSpan) -> FrameSplit {
    let dur = f.dur_us.max(0.0);
    let kernel = (f.arg("kernel_ms").unwrap_or(0.0) * 1e3).clamp(0.0, dur);
    let transfer = (f.arg("transfer_ms").unwrap_or(0.0) * 1e3).clamp(0.0, dur - kernel);
    let mut barrier = (dur - kernel - transfer).max(0.0);
    let recovered = (f.arg("recovered_ms").unwrap_or(0.0) * 1e3).clamp(0.0, barrier);
    barrier -= recovered;
    FrameSplit {
        kernel,
        transfer,
        barrier,
        recovered,
    }
}

impl CriticalReport {
    /// Analyze a merged trace log. Fails if the span DAG is malformed.
    pub fn from_log(log: &TraceLog) -> Result<CriticalReport, String> {
        validate_dag(log)?;
        let mut jobs = Vec::new();
        for trace_id in log.trace_ids() {
            let root = log
                .root_of(trace_id)
                .expect("validate_dag guarantees a root");
            let mut buckets = [0.0f64; 9];
            let mut path = Vec::new();
            let mut frames = 0usize;
            let mut assigned = 0.0f64;
            for child in log.children_of(trace_id, root.span_id) {
                path.push(child.name.clone());
                assigned += child.dur_us;
                match child.cat.as_str() {
                    "admission" => buckets[Bucket::Admission.index()] += child.dur_us,
                    "queue" => buckets[Bucket::Queue.index()] += child.dur_us,
                    "retry" => buckets[Bucket::Retry.index()] += child.dur_us,
                    "drain" => buckets[Bucket::Drain.index()] += child.dur_us,
                    "attempt" => {
                        let kids = log.children_of(trace_id, child.span_id);
                        let ckpt_us: f64 = kids
                            .iter()
                            .filter(|s| s.cat == "checkpoint")
                            .map(|s| s.dur_us)
                            .sum();
                        buckets[Bucket::Checkpoint.index()] += ckpt_us.min(child.dur_us);
                        let exec = (child.dur_us - ckpt_us).max(0.0);
                        let frame_spans: Vec<&&TraceSpan> =
                            kids.iter().filter(|s| s.cat == "frame").collect();
                        frames += frame_spans.len();
                        let mut vk = 0.0;
                        let mut vt = 0.0;
                        let mut vb = 0.0;
                        let mut vr = 0.0;
                        for f in &frame_spans {
                            let s = split_frame(f);
                            vk += s.kernel;
                            vt += s.transfer;
                            vb += s.barrier;
                            vr += s.recovered;
                        }
                        let vtot = vk + vt + vb + vr;
                        if vtot > 0.0 {
                            buckets[Bucket::Kernel.index()] += exec * vk / vtot;
                            buckets[Bucket::Transfer.index()] += exec * vt / vtot;
                            buckets[Bucket::Barrier.index()] += exec * vb / vtot;
                            buckets[Bucket::PipelineRecovered.index()] += exec * vr / vtot;
                        } else {
                            // No frame telemetry — attribute execution to
                            // kernel busy rather than inventing a split.
                            buckets[Bucket::Kernel.index()] += exec;
                        }
                    }
                    other => {
                        return Err(format!(
                            "trace {trace_id:016x}: unexpected lifecycle span category {other:?}"
                        ))
                    }
                }
            }
            // Lifecycle spans tile the root by construction; any float
            // residue lands in drain so the buckets sum exactly.
            let residue = root.dur_us - assigned;
            if residue > 0.0 {
                buckets[Bucket::Drain.index()] += residue;
            }
            let attempt_ids: HashSet<u64> = log
                .children_of(trace_id, root.span_id)
                .iter()
                .filter(|s| s.cat == "attempt")
                .map(|s| s.span_id)
                .collect();
            let resume_edges = log
                .edges
                .iter()
                .filter(|e| {
                    e.trace_id == trace_id
                        && e.kind == EdgeKind::CheckpointResume
                        && attempt_ids.contains(&e.to_span)
                })
                .count();
            jobs.push(JobCritical {
                trace_id,
                name: root.name.clone(),
                wall_us: root.dur_us,
                buckets,
                path,
                resume_edges,
                frames,
            });
        }
        Ok(CriticalReport { jobs })
    }

    /// Total critical-path time across jobs, µs.
    pub fn total_wall_us(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_us).sum()
    }

    /// Render the farm-wide text report, including per-job what-if
    /// projections for the busiest device at +20% speed.
    pub fn render_text(&self, log: &TraceLog) -> String {
        let mut out = format!("critical path · {} job(s)\n", self.jobs.len());
        for j in &self.jobs {
            out.push_str(&format!(
                "\n{} [{:016x}] wall {:.2} ms · {} frame(s)",
                j.name,
                j.trace_id,
                j.wall_us / 1e3,
                j.frames
            ));
            if j.resume_edges > 0 {
                out.push_str(&format!(" · resumed ×{}", j.resume_edges));
            }
            out.push('\n');
            out.push_str(&format!("  path: {}\n", j.path.join(" → ")));
            for b in Bucket::ALL {
                let us = j.bucket_us(b);
                if us <= 0.0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<20} {:>10.2} ms  {:>5.1}%\n",
                    b.name(),
                    us / 1e3,
                    100.0 * us / j.wall_us.max(f64::MIN_POSITIVE)
                ));
            }
            let samples = frame_samples_from_log(log, j.trace_id);
            if let Some(dev) = busiest_device(&samples) {
                if let Some(w) = what_if_device(&samples, dev, 1.2) {
                    out.push_str(&format!(
                        "  what-if: dev{} 20% faster ⇒ encode latency {:+.1}%\n",
                        dev,
                        w.delta_pct()
                    ));
                }
            }
        }
        out
    }
}

/// A what-if projection: job encode latency with `device` sped up by
/// `speedup` (1.2 = 20% faster), Algorithm-2 row distribution re-balanced.
#[derive(Clone, Copy, Debug)]
pub struct WhatIf {
    /// Device whose profile was scaled.
    pub device: usize,
    /// Speed multiplier applied (>1 = faster).
    pub speedup: f64,
    /// Measured encode time across the sampled frames, µs.
    pub baseline_us: f64,
    /// Projected encode time under the scaled profile, µs.
    pub projected_us: f64,
}

impl WhatIf {
    /// Projected latency change, percent (negative = faster).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_us <= 0.0 {
            return 0.0;
        }
        100.0 * (self.projected_us - self.baseline_us) / self.baseline_us
    }
}

/// One frame's what-if sample: measured frame time (µs) plus per-device
/// row/busy slices.
pub type FrameSample = (f64, Vec<DeviceSlice>);

/// Extract what-if samples from a trace log's frame spans.
pub fn frame_samples_from_log(log: &TraceLog, trace_id: u64) -> Vec<FrameSample> {
    let mut frames: Vec<&TraceSpan> = log
        .spans
        .iter()
        .filter(|s| s.trace_id == trace_id && s.cat == "frame" && !s.devices.is_empty())
        .collect();
    frames.sort_by(|a, b| a.name.cmp(&b.name));
    frames
        .iter()
        .map(|s| (s.dur_us, s.devices.clone()))
        .collect()
}

/// Extract what-if samples from flight records (per-frame measured τtot
/// plus each device's assigned rows and compute busy).
pub fn frame_samples_from_flight(records: &[FlightRecord]) -> Vec<FrameSample> {
    records
        .iter()
        .map(|r| {
            let slices = r
                .devices
                .iter()
                .map(|d| DeviceSlice {
                    device: d.device,
                    rows: (d.me_rows + d.interp_rows + d.sme_rows) as u64,
                    busy_ms: d.compute_busy_ms,
                })
                .collect();
            (r.measured_tau.tau_tot_ms * 1e3, slices)
        })
        .collect()
}

/// The device with the largest summed compute busy across samples.
pub fn busiest_device(samples: &[FrameSample]) -> Option<usize> {
    let mut busy: HashMap<usize, f64> = HashMap::new();
    for (_, slices) in samples {
        for s in slices {
            *busy.entry(s.device).or_default() += s.busy_ms;
        }
    }
    busy.into_iter()
        .filter(|(_, b)| *b > 0.0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
        .map(|(d, _)| d)
}

/// Project job encode latency with `device` sped up by `speedup`,
/// re-evaluating the Algorithm-2 distribution per frame: characterized
/// rates `k_d = busy_d / rows_d` are extracted from each frame's slices,
/// the target device's rate is scaled, and the rows are re-balanced to
/// the LP's equal-finish optimum `busy' = Σrows / Σ(1/k'_d)`. Each
/// frame's non-kernel overhead (transfer, R*, barrier residue) carries
/// over unchanged. Returns `None` when no sample characterizes `device`.
pub fn what_if_device(samples: &[FrameSample], device: usize, speedup: f64) -> Option<WhatIf> {
    if speedup <= 0.0 || samples.is_empty() {
        return None;
    }
    let mut baseline_us = 0.0f64;
    let mut projected_us = 0.0f64;
    let mut characterized = false;
    for (dur_us, slices) in samples {
        baseline_us += dur_us;
        let active: Vec<&DeviceSlice> = slices
            .iter()
            .filter(|s| s.rows > 0 && s.busy_ms > 0.0)
            .collect();
        let has_target = active.iter().any(|s| s.device == device);
        if !has_target {
            projected_us += dur_us;
            continue;
        }
        characterized = true;
        let total_rows: f64 = active.iter().map(|s| s.rows as f64).sum();
        let bound_us = active
            .iter()
            .map(|s| s.busy_ms * 1e3)
            .fold(0.0f64, f64::max);
        let overhead_us = (dur_us - bound_us).max(0.0);
        // Re-balance rows against scaled per-row rates (equal finish).
        let inv_rate_sum: f64 = active
            .iter()
            .map(|s| {
                let rate = s.busy_ms / s.rows as f64;
                let rate = if s.device == device {
                    rate / speedup
                } else {
                    rate
                };
                1.0 / rate
            })
            .sum();
        let balanced_ms = total_rows / inv_rate_sum;
        projected_us += overhead_us + balanced_ms * 1e3;
    }
    characterized.then_some(WhatIf {
        device,
        speedup,
        baseline_us,
        projected_us,
    })
}

/// Virtual-clock bucket totals over flight records (per-frame analogue of
/// the job buckets — queue/admission/checkpoint/retry/drain are farm
/// concepts and stay zero here), µs.
pub fn flight_buckets(records: &[FlightRecord]) -> [f64; 9] {
    let mut buckets = [0.0f64; 9];
    for r in records {
        let dur = r.measured_tau.tau_tot_ms * 1e3;
        let kernel = r
            .devices
            .iter()
            .map(|d| d.compute_busy_ms * 1e3)
            .fold(0.0f64, f64::max)
            .clamp(0.0, dur);
        let transfer = r
            .devices
            .iter()
            .map(|d| d.transfer_busy_ms * 1e3)
            .fold(0.0f64, f64::max)
            .clamp(0.0, dur - kernel);
        let mut barrier = (dur - kernel - transfer).max(0.0);
        let recovered = r
            .devices
            .iter()
            .map(|d| d.overlap_carried_ms * 1e3)
            .sum::<f64>()
            .clamp(0.0, barrier);
        barrier -= recovered;
        buckets[Bucket::Kernel.index()] += kernel;
        buckets[Bucket::Transfer.index()] += transfer;
        buckets[Bucket::Barrier.index()] += barrier;
        buckets[Bucket::PipelineRecovered.index()] += recovered;
    }
    buckets
}

/// Mean per-frame critical-path length over flight records, µs — the
/// `flight.critical_path_us` metric `feves compare` gates on.
pub fn critical_path_us(records: &[FlightRecord]) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    let total: f64 = records
        .iter()
        .map(|r| r.measured_tau.tau_tot_ms * 1e3)
        .sum();
    Some(total / records.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{
        span_id, TraceArg, TraceCollector, TraceCtx, TraceEdge, TraceSink, TraceSpan,
    };
    use std::sync::Arc;
    use std::time::Instant;

    fn farm_like_log() -> TraceLog {
        let collector = Arc::new(TraceCollector::new());
        let ctx = TraceCtx::for_job("job-x");
        let sink = TraceSink::new(
            collector.clone(),
            TraceCtx {
                trace_id: ctx.trace_id,
                parent_span: 0,
            },
            Instant::now(),
        );
        let root = sink.record("job:job-x", "job", 0.0, 10_000.0);
        let s = sink.under(root);
        s.record("admission", "admission", 0.0, 100.0);
        let q = s.record("queue", "queue", 100.0, 900.0);
        let a0 = s.record("attempt0", "attempt", 1000.0, 4000.0);
        s.link(q, a0, EdgeKind::QueueAdmit);
        let at = s.under(a0);
        let ck = at.record("ckpt0", "checkpoint", 4000.0, 500.0);
        for i in 0..2 {
            at.record_full(
                &format!("frame{i}"),
                "frame",
                i as f64 * 1000.0,
                1000.0,
                vec![
                    DeviceSlice {
                        device: 0,
                        rows: 60,
                        busy_ms: 0.6,
                    },
                    DeviceSlice {
                        device: 1,
                        rows: 40,
                        busy_ms: 0.6,
                    },
                ],
                vec![
                    TraceArg {
                        k: "kernel_ms".into(),
                        v: 0.6,
                    },
                    TraceArg {
                        k: "transfer_ms".into(),
                        v: 0.2,
                    },
                    TraceArg {
                        k: "recovered_ms".into(),
                        v: 0.1,
                    },
                ],
            );
        }
        s.record("retry1", "retry", 5000.0, 1000.0);
        let a1 = s.record("attempt1", "attempt", 6000.0, 3800.0);
        s.link(ck, a1, EdgeKind::CheckpointResume);
        let at1 = s.under(a1);
        at1.record_full(
            "frame2",
            "frame",
            0.0,
            1000.0,
            vec![DeviceSlice {
                device: 0,
                rows: 100,
                busy_ms: 0.9,
            }],
            vec![TraceArg {
                k: "kernel_ms".into(),
                v: 0.9,
            }],
        );
        s.record("drain", "drain", 9800.0, 200.0);
        collector.snapshot()
    }

    #[test]
    fn buckets_tile_wall_time_exactly() {
        let log = farm_like_log();
        let report = CriticalReport::from_log(&log).unwrap();
        assert_eq!(report.jobs.len(), 1);
        let j = &report.jobs[0];
        let sum = j.bucket_sum_us();
        assert!(
            (sum - j.wall_us).abs() <= 1e-6 * j.wall_us,
            "buckets {sum} vs wall {}",
            j.wall_us
        );
        assert!(j.bucket_us(Bucket::Queue) == 900.0);
        assert!(j.bucket_us(Bucket::Checkpoint) == 500.0);
        assert!(j.bucket_us(Bucket::Retry) == 1000.0);
        assert!(j.bucket_us(Bucket::Kernel) > 0.0);
        assert!(j.bucket_us(Bucket::PipelineRecovered) > 0.0);
        assert_eq!(j.resume_edges, 1);
        assert_eq!(j.frames, 3);
    }

    #[test]
    fn render_mentions_path_and_what_if() {
        let log = farm_like_log();
        let report = CriticalReport::from_log(&log).unwrap();
        let text = report.render_text(&log);
        assert!(text.contains("queue → attempt0"), "{text}");
        assert!(text.contains("resumed ×1"), "{text}");
        assert!(text.contains("what-if"), "{text}");
    }

    #[test]
    fn validate_rejects_orphans_and_cycles() {
        let mut log = farm_like_log();
        assert!(validate_dag(&log).is_ok());
        let tid = log.trace_ids()[0];
        // Orphan: parent id that doesn't exist.
        let mut orphaned = log.clone();
        orphaned.spans.push(TraceSpan {
            trace_id: tid,
            span_id: span_id(tid, 999, "ghost"),
            parent: Some(999),
            name: "ghost".into(),
            cat: "frame".into(),
            ..Default::default()
        });
        assert!(validate_dag(&orphaned).unwrap_err().contains("parent"));
        // Cycle via causal edges: child → its own ancestor.
        let root = log.root_of(tid).unwrap().span_id;
        let attempt = log
            .spans
            .iter()
            .find(|s| s.name == "attempt0")
            .unwrap()
            .span_id;
        log.edges.push(TraceEdge {
            trace_id: tid,
            from_span: attempt,
            to_span: root,
            kind: EdgeKind::PipelineOverlap,
        });
        assert!(validate_dag(&log).unwrap_err().contains("cycle"));
    }

    #[test]
    fn what_if_speeds_up_balanced_frames() {
        let log = farm_like_log();
        let tid = log.trace_ids()[0];
        let samples = frame_samples_from_log(&log, tid);
        assert_eq!(samples.len(), 3);
        assert_eq!(busiest_device(&samples), Some(0));
        let w = what_if_device(&samples, 0, 1.25).unwrap();
        assert!(w.projected_us < w.baseline_us, "{w:?}");
        assert!(w.delta_pct() < 0.0);
        // Slowing the device down must project slower.
        let slow = what_if_device(&samples, 0, 0.5).unwrap();
        assert!(slow.projected_us > slow.baseline_us);
        // Unknown device: no characterization.
        assert!(what_if_device(&samples, 7, 1.25).is_none());
    }
}
