//! The schedule flight recorder: per-frame decision + measurement records.
//!
//! Every inter frame, the framework makes a *decision* (the m/l/s
//! distribution, the R\* mapping, the LP's predicted τ1/τ2/τtot and
//! per-device busy times) and then *measures* what actually happened (sync
//! points on the virtual clock, per-lane busy times, transfer volumes,
//! recovery cost). The [`FlightRecord`] keeps the pair together so the
//! audit layer can compute prediction residuals after the fact — the
//! model-vs-reality gap behind the paper's Fig 6/7 plots.
//!
//! Records go into a bounded ring ([`FlightRecorder`]) and persist as JSONL
//! — one [`FlightRecord`] object per line, parseable back losslessly (the
//! serializer emits shortest-round-trip floats, and every serialized field
//! is finite by construction: absent predictions are `null`, not NaN).

use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// The three synchronization points of one frame, milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TauTriple {
    /// τ1 — ME+INT (and their transfers) complete.
    pub tau1_ms: f64,
    /// τ2 — SME complete.
    pub tau2_ms: f64,
    /// τtot — frame complete.
    pub tau_tot_ms: f64,
}

/// One device's slice of a frame's decision + measurement record.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Device index in platform enumeration order.
    pub device: usize,
    /// ME rows assigned (`m_i`).
    pub me_rows: usize,
    /// INT rows assigned (`l_i`).
    pub interp_rows: usize,
    /// SME rows assigned (`s_i`).
    pub sme_rows: usize,
    /// LP-predicted compute-busy ms (rows × characterized rates; `None` on
    /// probe/heuristic frames that carry no prediction).
    pub predicted_busy_ms: Option<f64>,
    /// Measured compute-busy ms (compute + interpolation-engine lanes).
    pub compute_busy_ms: f64,
    /// Measured copy-engine busy ms (H2D + D2H lanes) — the copy-engine
    /// occupancy of this device for the frame.
    pub transfer_busy_ms: f64,
    /// Of `compute_busy_ms` + `transfer_busy_ms`, the span this device ran
    /// *inside the previous frame generation's window* — its phase-1 prefix
    /// pulled forward into the prior generation's τ-sync stall by the
    /// inter-frame pipeline. 0 under `--pipeline off`. The audit layer
    /// subtracts it so a device spanning two generations is not counted
    /// busy twice in the same window.
    pub overlap_carried_ms: f64,
    /// Signed prediction residual,
    /// `(measured − predicted) / predicted · 100`; `None` without a
    /// prediction or with a ~zero predicted time.
    pub residual_pct: Option<f64>,
    /// Device was blacklisted/unavailable this frame — excluded from
    /// residual statistics (a fault-domain problem, not model drift).
    pub blacklisted: bool,
}

/// One frame's complete decision + measurement record.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Inter-frame index (0-based, in encode order).
    pub frame: usize,
    /// Device running the R\* group.
    pub rstar_device: usize,
    /// LP-predicted sync points (`None` on probe/heuristic frames).
    pub predicted_tau: Option<TauTriple>,
    /// Measured sync points on the virtual clock.
    pub measured_tau: TauTriple,
    /// Pipeline generations in flight when this frame was submitted (1 at
    /// a boundary or under `--pipeline off`, 2 in pipelined steady state).
    pub inflight_depth: usize,
    /// Per-device decision + measurement, platform enumeration order.
    pub devices: Vec<DeviceRecord>,
    /// Bytes moved over PCIe this frame (DAM plan).
    pub bytes_transferred: u64,
    /// Bytes *not* moved thanks to Δ/σ data reuse.
    pub bytes_reused: u64,
    /// Virtual time lost to fault detection + re-dispatch this frame.
    pub recovery_ms: f64,
    /// Devices the drift detector fired on after this frame.
    pub drift_devices: Vec<usize>,
    /// This frame triggered re-characterization (drift → rates reset →
    /// next frame is an equidistant probe).
    pub recharacterized: bool,
}

impl FlightRecord {
    /// Load-imbalance index of this frame: max/mean measured compute-busy
    /// time over devices that did work (the Fig 6 quantity; 1.0 = perfectly
    /// balanced). `None` when no device was busy.
    pub fn imbalance_index(&self) -> Option<f64> {
        crate::audit::imbalance_index(
            &self
                .devices
                .iter()
                .map(|d| d.compute_busy_ms)
                .collect::<Vec<_>>(),
        )
    }
}

/// Bounded ring of [`FlightRecord`]s with JSONL persistence. Old records
/// fall off the front once `capacity` is reached; [`FlightRecorder::dropped`]
/// counts them so exports are never silently partial.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    records: VecDeque<FlightRecord>,
    dropped: u64,
    /// Frames at which an encode session resumed from a checkpoint, in the
    /// order the resumes happened. Persisted as `{"resume_marker":N}` lines
    /// interleaved into the JSONL stream.
    markers: Vec<usize>,
}

impl FlightRecorder {
    /// Ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
            markers: Vec::new(),
        }
    }

    /// Note that the session resumed from a checkpoint at inter frame
    /// `frame`. The marker survives into the JSONL export so post-hoc
    /// audits can tell a resumed run's seams from organic gaps.
    pub fn mark_resume(&mut self, frame: usize) {
        self.markers.push(frame);
    }

    /// Resume markers recorded so far (frame indices, resume order).
    pub fn resume_markers(&self) -> &[usize] {
        &self.markers
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, rec: FlightRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.records.iter()
    }

    /// Records currently held, as a vec (oldest first).
    pub fn to_vec(&self) -> Vec<FlightRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialize the ring as JSONL, one record per line, oldest first.
    /// Resume markers interleave as `{"resume_marker":N}` lines ahead of the
    /// first record at-or-after their frame (trailing markers come last).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut pending = self.markers.iter().copied().peekable();
        for r in &self.records {
            while pending.peek().is_some_and(|&m| m <= r.frame) {
                let m = pending.next().expect("peeked");
                out.push_str(&format!("{{\"resume_marker\":{m}}}\n"));
            }
            out.push_str(&serde_json::to_string(r).expect("finite fields"));
            out.push('\n');
        }
        for m in pending {
            out.push_str(&format!("{{\"resume_marker\":{m}}}\n"));
        }
        out
    }
}

/// If `v` is a `{"resume_marker":N}` object, return `N`.
fn marker_of(v: &Value) -> Option<usize> {
    match v.get("resume_marker")? {
        Value::Int(i) if *i >= 0 => Some(*i as usize),
        Value::UInt(u) => Some(*u as usize),
        _ => None,
    }
}

/// Parse a flight JSONL file back into records. Blank lines and
/// `{"resume_marker":N}` lines are skipped; any malformed line is an error
/// naming its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<FlightRecord>, String> {
    parse_jsonl_with_markers(text).map(|(records, _)| records)
}

/// Parse a flight JSONL file into records plus the resume markers embedded
/// in the stream (frame indices, stream order).
pub fn parse_jsonl_with_markers(text: &str) -> Result<(Vec<FlightRecord>, Vec<usize>), String> {
    let mut out = Vec::new();
    let mut markers = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            serde_json::value_from_str(line).map_err(|e| format!("flight line {}: {e}", i + 1))?;
        if let Some(m) = marker_of(&v) {
            markers.push(m);
            continue;
        }
        out.push(FlightRecord::from_value(&v).map_err(|e| format!("flight line {}: {e}", i + 1))?);
    }
    Ok((out, markers))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(frame: usize) -> FlightRecord {
        FlightRecord {
            frame,
            rstar_device: 0,
            predicted_tau: Some(TauTriple {
                tau1_ms: 10.5,
                tau2_ms: 14.25,
                tau_tot_ms: 21.125,
            }),
            measured_tau: TauTriple {
                tau1_ms: 11.0,
                tau2_ms: 15.0,
                tau_tot_ms: 22.0,
            },
            inflight_depth: 1,
            devices: vec![
                DeviceRecord {
                    device: 0,
                    me_rows: 40,
                    interp_rows: 38,
                    sme_rows: 41,
                    predicted_busy_ms: Some(18.0),
                    compute_busy_ms: 19.5,
                    transfer_busy_ms: 3.25,
                    overlap_carried_ms: 0.0,
                    residual_pct: Some((19.5 - 18.0) / 18.0 * 100.0),
                    blacklisted: false,
                },
                DeviceRecord {
                    device: 1,
                    me_rows: 28,
                    interp_rows: 30,
                    sme_rows: 27,
                    predicted_busy_ms: None,
                    compute_busy_ms: 12.0,
                    transfer_busy_ms: 0.0,
                    overlap_carried_ms: 0.0,
                    residual_pct: None,
                    blacklisted: true,
                },
            ],
            bytes_transferred: 1_048_576,
            bytes_reused: 262_144,
            recovery_ms: 0.0,
            drift_devices: vec![1],
            recharacterized: true,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for f in 0..5 {
            fr.push(sample_record(f));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let frames: Vec<usize> = fr.records().map(|r| r.frame).collect();
        assert_eq!(frames, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut fr = FlightRecorder::new(8);
        fr.push(sample_record(0));
        fr.push(sample_record(1));
        let text = fr.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, fr.to_vec());
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let good = serde_json::to_string(&sample_record(0)).unwrap();
        let err = parse_jsonl(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // A structurally wrong record also names its line.
        let err = parse_jsonl("{\"frame\":0}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn resume_markers_interleave_and_round_trip() {
        let mut fr = FlightRecorder::new(8);
        fr.push(sample_record(0));
        fr.push(sample_record(1));
        fr.mark_resume(1); // resumed before frame 1 was re-encoded
        fr.push(sample_record(2));
        fr.mark_resume(5); // trailing marker: resume after last record
        let text = fr.to_jsonl();
        assert_eq!(text.lines().count(), 5, "3 records + 2 markers:\n{text}");
        // The frame-1 marker sits before the frame-1 record line.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "{\"resume_marker\":1}");
        assert_eq!(lines[4], "{\"resume_marker\":5}");
        // Plain parse skips markers; the marker-aware parse returns both.
        let records = parse_jsonl(&text).unwrap();
        assert_eq!(records.len(), 3);
        let (records, markers) = parse_jsonl_with_markers(&text).unwrap();
        assert_eq!(records, fr.to_vec());
        assert_eq!(markers, vec![1, 5]);
    }

    #[test]
    fn imbalance_index_is_max_over_mean() {
        let mut r = sample_record(0);
        r.devices[0].compute_busy_ms = 30.0;
        r.devices[1].compute_busy_ms = 10.0;
        // mean 20, max 30 → 1.5.
        assert!((r.imbalance_index().unwrap() - 1.5).abs() < 1e-12);
        r.devices[0].compute_busy_ms = 0.0;
        r.devices[1].compute_busy_ms = 0.0;
        assert_eq!(r.imbalance_index(), None);
    }
}
