//! Self-contained HTML report over a flight log: timeline, residual
//! charts and per-device utilization bars as inline SVG — no external
//! assets, no scripts, renders anywhere a file:// URL does.

use crate::audit::AuditSummary;
use crate::critical;
use crate::flight::FlightRecord;
use std::fmt::Write as _;

const CHART_W: f64 = 900.0;
const CHART_H: f64 = 220.0;
const PAD_L: f64 = 60.0;
const PAD_B: f64 = 28.0;
const PAD_T: f64 = 14.0;

/// Line colors cycled per device.
const COLORS: [&str; 8] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#17becf",
];

/// Render the full report: summary table, τ timeline (predicted vs
/// measured), per-device residual chart with the drift band, and
/// utilization/idle bars. `ewma_alpha` feeds the audit summary shown in
/// the header table; `band_pct` draws the drift band on the residual
/// chart (pass the detector's configured band).
pub fn render_html(records: &[FlightRecord], ewma_alpha: f64, band_pct: f64) -> String {
    let summary = AuditSummary::from_records(records, ewma_alpha);
    let mut html = String::new();
    html.push_str(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>FEVES flight report</title>\n<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#222;max-width:1000px}\n\
         h1{font-size:20px} h2{font-size:16px;margin-top:28px}\n\
         table{border-collapse:collapse;margin:8px 0}\n\
         td,th{border:1px solid #ccc;padding:3px 9px;text-align:right}\n\
         th{background:#f2f2f2} td:first-child,th:first-child{text-align:left}\n\
         svg{background:#fafafa;border:1px solid #ddd}\n\
         .legend span{display:inline-block;margin-right:14px}\n\
         .swatch{display:inline-block;width:10px;height:10px;margin-right:4px}\n\
         </style></head><body>\n<h1>FEVES flight report</h1>\n",
    );
    let _ = writeln!(
        html,
        "<p>{} frames ({} with LP predictions) &middot; drift events: {} &middot; \
         re-characterizations: {} &middot; mean &tau;<sub>tot</sub> {:.3} ms</p>",
        summary.frames,
        summary.predicted_frames,
        summary.drift_events,
        summary.recharacterizations,
        summary.mean_tau_tot_ms
    );

    device_table(&mut html, &summary);
    tau_timeline(&mut html, records);
    residual_chart(&mut html, records, band_pct);
    utilization_bars(&mut html, &summary);
    critical_path_section(&mut html, records);

    html.push_str("</body></html>\n");
    html
}

fn device_table(html: &mut String, s: &AuditSummary) {
    html.push_str(
        "<h2>Per-device audit</h2>\n<table><tr><th>device</th><th>audited</th>\
         <th>blacklisted</th><th>mean res %</th><th>ewma res %</th>\
         <th>p95 |res| %</th><th>utilization</th><th>idle: transfer ms</th>\
         <th>idle: barrier ms</th></tr>\n",
    );
    for d in &s.devices {
        let _ = writeln!(
            html,
            "<tr><td>dev{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.1}%</td><td>{:.2}</td><td>{:.2}</td></tr>",
            d.device,
            d.audited_frames,
            d.blacklisted_frames,
            opt(d.mean_residual_pct),
            opt(d.ewma_residual_pct),
            opt(d.p95_abs_residual_pct),
            d.mean_utilization * 100.0,
            d.mean_idle_transfer_ms,
            d.mean_idle_barrier_ms,
        );
    }
    let _ = writeln!(
        html,
        "</table>\n<p>imbalance index (max/mean busy, Fig 6): mean {} / max {} \
         &middot; fleet p95 |residual| {}</p>",
        opt(s.mean_imbalance_index),
        opt(s.max_imbalance_index),
        opt(s.fleet_p95_abs_residual_pct)
    );
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}"))
        .unwrap_or_else(|| "&ndash;".into())
}

/// Map frame index / value into SVG chart coordinates.
struct Scale {
    n: usize,
    vmin: f64,
    vmax: f64,
}

impl Scale {
    fn x(&self, i: usize) -> f64 {
        if self.n <= 1 {
            PAD_L
        } else {
            PAD_L + (CHART_W - PAD_L - 10.0) * i as f64 / (self.n - 1) as f64
        }
    }

    fn y(&self, v: f64) -> f64 {
        let span = (self.vmax - self.vmin).max(1e-9);
        PAD_T + (CHART_H - PAD_T - PAD_B) * (1.0 - (v - self.vmin) / span)
    }
}

fn polyline(points: &[(f64, f64)], color: &str, dashed: bool) -> String {
    if points.is_empty() {
        return String::new();
    }
    let pts: Vec<String> = points
        .iter()
        .map(|(x, y)| format!("{x:.1},{y:.1}"))
        .collect();
    let dash = if dashed {
        " stroke-dasharray=\"5,4\""
    } else {
        ""
    };
    format!(
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"{dash} points=\"{}\"/>\n",
        pts.join(" ")
    )
}

fn axes(s: &Scale, unit: &str) -> String {
    let mut out = String::new();
    let y0 = s.y(s.vmin);
    let y1 = s.y(s.vmax);
    let _ = writeln!(
        out,
        "<line x1=\"{PAD_L}\" y1=\"{y0:.1}\" x2=\"{PAD_L}\" y2=\"{y1:.1}\" stroke=\"#999\"/>\n\
         <line x1=\"{PAD_L}\" y1=\"{y0:.1}\" x2=\"{:.1}\" y2=\"{y0:.1}\" stroke=\"#999\"/>\n\
         <text x=\"4\" y=\"{:.1}\" font-size=\"11\">{:.1}{unit}</text>\n\
         <text x=\"4\" y=\"{:.1}\" font-size=\"11\">{:.1}{unit}</text>",
        CHART_W - 8.0,
        y1 + 4.0,
        s.vmax,
        y0 + 4.0,
        s.vmin,
    );
    out
}

fn tau_timeline(html: &mut String, records: &[FlightRecord]) {
    html.push_str("<h2>&tau;<sub>tot</sub> timeline: predicted vs measured</h2>\n");
    if records.is_empty() {
        html.push_str("<p>(no frames)</p>\n");
        return;
    }
    let measured: Vec<f64> = records.iter().map(|r| r.measured_tau.tau_tot_ms).collect();
    let predicted: Vec<Option<f64>> = records
        .iter()
        .map(|r| r.predicted_tau.as_ref().map(|t| t.tau_tot_ms))
        .collect();
    let mut vmax = measured.iter().fold(0.0f64, |a, &b| a.max(b));
    for p in predicted.iter().flatten() {
        vmax = vmax.max(*p);
    }
    let s = Scale {
        n: records.len(),
        vmin: 0.0,
        vmax: vmax * 1.05 + 1e-9,
    };
    let _ = writeln!(
        html,
        "<svg width=\"{CHART_W}\" height=\"{CHART_H}\" viewBox=\"0 0 {CHART_W} {CHART_H}\">"
    );
    html.push_str(&axes(&s, "ms"));
    let m_pts: Vec<(f64, f64)> = measured
        .iter()
        .enumerate()
        .map(|(i, &v)| (s.x(i), s.y(v)))
        .collect();
    html.push_str(&polyline(&m_pts, COLORS[0], false));
    let p_pts: Vec<(f64, f64)> = predicted
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|v| (s.x(i), s.y(v))))
        .collect();
    html.push_str(&polyline(&p_pts, COLORS[1], true));
    // Re-characterization markers.
    for (i, r) in records.iter().enumerate() {
        if r.recharacterized {
            let x = s.x(i);
            let _ = writeln!(
                html,
                "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" \
                 stroke=\"#d62728\" stroke-width=\"1\" stroke-dasharray=\"2,2\"/>",
                s.y(s.vmax),
                s.y(s.vmin)
            );
        }
    }
    html.push_str("</svg>\n<div class=\"legend\">");
    let _ = write!(
        html,
        "<span><span class=\"swatch\" style=\"background:{}\"></span>measured</span>\
         <span><span class=\"swatch\" style=\"background:{}\"></span>predicted (LP)</span>\
         <span><span class=\"swatch\" style=\"background:#d62728\"></span>re-characterization</span>",
        COLORS[0], COLORS[1]
    );
    html.push_str("</div>\n");
}

fn residual_chart(html: &mut String, records: &[FlightRecord], band_pct: f64) {
    html.push_str("<h2>Per-device prediction residuals</h2>\n");
    let n_devices = records.iter().map(|r| r.devices.len()).max().unwrap_or(0);
    if records.is_empty() || n_devices == 0 {
        html.push_str("<p>(no residuals)</p>\n");
        return;
    }
    let mut vmin = -band_pct * 1.4;
    let mut vmax = band_pct * 1.4;
    for r in records {
        for d in &r.devices {
            if let Some(res) = d.residual_pct {
                vmin = vmin.min(res);
                vmax = vmax.max(res);
            }
        }
    }
    let s = Scale {
        n: records.len(),
        vmin: vmin * 1.05,
        vmax: vmax * 1.05,
    };
    let _ = writeln!(
        html,
        "<svg width=\"{CHART_W}\" height=\"{CHART_H}\" viewBox=\"0 0 {CHART_W} {CHART_H}\">"
    );
    // Drift band ±band_pct around zero.
    let _ = writeln!(
        html,
        "<rect x=\"{PAD_L}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
         fill=\"#2ca02c\" opacity=\"0.12\"/>",
        s.y(band_pct),
        CHART_W - PAD_L - 10.0,
        (s.y(-band_pct) - s.y(band_pct)).abs()
    );
    let zero_y = s.y(0.0);
    let _ = writeln!(
        html,
        "<line x1=\"{PAD_L}\" y1=\"{zero_y:.1}\" x2=\"{:.1}\" y2=\"{zero_y:.1}\" \
         stroke=\"#bbb\"/>",
        CHART_W - 10.0
    );
    html.push_str(&axes(&s, "%"));
    for d in 0..n_devices {
        let pts: Vec<(f64, f64)> = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.devices
                    .get(d)
                    .and_then(|dev| dev.residual_pct)
                    .map(|res| (s.x(i), s.y(res)))
            })
            .collect();
        html.push_str(&polyline(&pts, COLORS[d % COLORS.len()], false));
        // Drift firings as circles.
        for (i, r) in records.iter().enumerate() {
            if r.drift_devices.contains(&d) {
                if let Some(res) = r.devices.get(d).and_then(|dev| dev.residual_pct) {
                    let _ = writeln!(
                        html,
                        "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"none\" \
                         stroke=\"{}\" stroke-width=\"2\"/>",
                        s.x(i),
                        s.y(res),
                        COLORS[d % COLORS.len()]
                    );
                }
            }
        }
    }
    html.push_str("</svg>\n<div class=\"legend\">");
    for d in 0..n_devices {
        let _ = write!(
            html,
            "<span><span class=\"swatch\" style=\"background:{}\"></span>dev{d}</span>",
            COLORS[d % COLORS.len()]
        );
    }
    let _ = write!(
        html,
        "<span>band &plusmn;{band_pct:.0}% &middot; circles = drift firings</span>"
    );
    html.push_str("</div>\n");
}

fn utilization_bars(html: &mut String, s: &AuditSummary) {
    html.push_str("<h2>Device utilization &amp; idle attribution</h2>\n");
    if s.devices.is_empty() {
        html.push_str("<p>(no devices)</p>\n");
        return;
    }
    let row_h = 26.0;
    let h = s.devices.len() as f64 * row_h + 30.0;
    let bar_w = CHART_W - PAD_L - 140.0;
    let _ = writeln!(
        html,
        "<svg width=\"{CHART_W}\" height=\"{h:.0}\" viewBox=\"0 0 {CHART_W} {h:.0}\">"
    );
    for (i, d) in s.devices.iter().enumerate() {
        let y = 8.0 + i as f64 * row_h;
        let total_ms = d.mean_idle_transfer_ms + d.mean_idle_barrier_ms + 1e-9;
        // Busy fraction directly; idle split scaled into the remainder.
        let busy_frac = d.mean_utilization.clamp(0.0, 1.0);
        let idle_frac = 1.0 - busy_frac;
        let xfer_frac = idle_frac * (d.mean_idle_transfer_ms / total_ms);
        let wait_frac = idle_frac - xfer_frac;
        let mut x = PAD_L;
        for (frac, color, _label) in [
            (busy_frac, "#2ca02c", "compute"),
            (xfer_frac, "#ff7f0e", "transfer-covered idle"),
            (wait_frac, "#d0d0d0", "barrier wait"),
        ] {
            let w = bar_w * frac;
            let _ = writeln!(
                html,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"16\" fill=\"{color}\"/>"
            );
            x += w;
        }
        let _ = writeln!(
            html,
            "<text x=\"4\" y=\"{:.1}\" font-size=\"12\">dev{}</text>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\">{:.1}% busy</text>",
            y + 12.0,
            d.device,
            PAD_L + bar_w + 8.0,
            y + 12.0,
            busy_frac * 100.0
        );
    }
    html.push_str(
        "</svg>\n<div class=\"legend\">\
        <span><span class=\"swatch\" style=\"background:#2ca02c\"></span>compute busy</span>\
        <span><span class=\"swatch\" style=\"background:#ff7f0e\"></span>idle: transfers</span>\
        <span><span class=\"swatch\" style=\"background:#d0d0d0\"></span>idle: barrier wait</span>\
        </div>\n",
    );
}

/// Critical-path attribution over the flight log's virtual clock: the
/// per-frame τtot buckets (kernel busy / transfer / barrier stall /
/// pipeline-recovered) as a stacked bar, the `flight.critical_path_us`
/// scalar `feves compare` gates on, and the busiest-device what-if
/// projection. Farm buckets (queue/retry/…) need a trace log — `feves
/// trace` reports those.
fn critical_path_section(html: &mut String, records: &[FlightRecord]) {
    html.push_str("<h2>Critical path</h2>\n");
    if records.is_empty() {
        html.push_str("<p>(no frames)</p>\n");
        return;
    }
    let buckets = critical::flight_buckets(records);
    let total_us: f64 = buckets.iter().sum();
    let cp = critical::critical_path_us(records).unwrap_or(0.0);
    let _ = writeln!(
        html,
        "<p>critical_path_us (mean per-frame) <b>{cp:.0} µs</b> over {} frames</p>",
        records.len()
    );
    if total_us > 0.0 {
        let bar_w = CHART_W - PAD_L - 20.0;
        let _ = writeln!(
            html,
            "<svg width=\"{CHART_W}\" height=\"60\" viewBox=\"0 0 {CHART_W} 60\">"
        );
        let mut x = PAD_L;
        let mut legend = String::from("<div class=\"legend\">");
        for (i, b) in critical::Bucket::ALL.iter().enumerate() {
            let us = buckets[i];
            if us <= 0.0 {
                continue;
            }
            let w = bar_w * us / total_us;
            let color = COLORS[i % COLORS.len()];
            let _ = writeln!(
                html,
                "<rect x=\"{x:.1}\" y=\"14\" width=\"{w:.1}\" height=\"20\" fill=\"{color}\"/>"
            );
            let _ = write!(
                legend,
                "<span><span class=\"swatch\" style=\"background:{color}\"></span>{} {:.1}%</span>",
                b.name(),
                100.0 * us / total_us
            );
            x += w;
        }
        html.push_str("</svg>\n");
        legend.push_str("</div>\n");
        html.push_str(&legend);
    }
    let samples = critical::frame_samples_from_flight(records);
    if let Some(dev) = critical::busiest_device(&samples) {
        if let Some(w) = critical::what_if_device(&samples, dev, 1.2) {
            let _ = writeln!(
                html,
                "<p>what-if (Algorithm-2 re-balance): dev{dev} 20% faster &rArr; \
                 encode latency <b>{:+.1}%</b></p>",
                w.delta_pct()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{DeviceRecord, FlightRecord, TauTriple};

    fn records() -> Vec<FlightRecord> {
        (0..6)
            .map(|f| FlightRecord {
                frame: f,
                rstar_device: 0,
                predicted_tau: (f > 0).then_some(TauTriple {
                    tau1_ms: 10.0,
                    tau2_ms: 15.0,
                    tau_tot_ms: 20.0,
                }),
                measured_tau: TauTriple {
                    tau1_ms: 10.5,
                    tau2_ms: 15.5,
                    tau_tot_ms: 21.0 + f as f64,
                },
                devices: (0..2)
                    .map(|d| DeviceRecord {
                        device: d,
                        me_rows: 34,
                        interp_rows: 34,
                        sme_rows: 34,
                        predicted_busy_ms: (f > 0).then_some(15.0),
                        compute_busy_ms: 16.0 + d as f64,
                        transfer_busy_ms: 2.0,
                        overlap_carried_ms: 0.0,
                        residual_pct: (f > 0).then_some(8.0 + d as f64),
                        blacklisted: false,
                    })
                    .collect(),
                inflight_depth: 1,
                bytes_transferred: 1000,
                bytes_reused: 100,
                recovery_ms: 0.0,
                drift_devices: if f == 4 { vec![1] } else { vec![] },
                recharacterized: f == 4,
            })
            .collect()
    }

    #[test]
    fn html_is_self_contained_and_complete() {
        let html = render_html(&records(), 1.0, 25.0);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>\n"));
        // Self-contained: no external references.
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("<script"));
        // All three charts and the table are present.
        assert!(html.contains("timeline"));
        assert!(html.contains("residual"));
        assert!(html.contains("utilization") || html.contains("Device utilization"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<polyline"));
        assert!(html.contains("dev0") && html.contains("dev1"));
        // Drift firing rendered as a circle marker.
        assert!(html.contains("<circle"));
        // Critical-path section with the compare scalar and what-if.
        assert!(html.contains("Critical path"), "{html}");
        assert!(html.contains("critical_path_us"));
        assert!(html.contains("what-if"));
    }

    #[test]
    fn empty_flight_still_renders() {
        let html = render_html(&[], 1.0, 25.0);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("0 frames"));
    }
}
