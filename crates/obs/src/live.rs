//! Live snapshot surface: periodic JSON state dumps of every running
//! telemetry session, written atomically so `feves top` (or any poller)
//! never observes a torn file.
//!
//! Schema `feves-live/1`:
//!
//! ```json
//! {"schema":"feves-live/1","seq":7,"uptime_ms":1834.2,
//!  "bus":{"capacity":65536,"depth":3,"published":41872,"drained":41869,
//!         "dropped":0,
//!         "enqueue_ns":{"count":654,"mean":91.0,"p99":181.0,"max":912.0},
//!         "drain_batch_us":{"count":88,"mean":14.2,"p99":60.1,"max":88.0}},
//!  "sessions":[{"id":1,"label":"sim","frames":120,"fps":29.8,
//!               "dropped_events":0,"ended":false,
//!               "counters":{"frames.encoded":120,"...":0},
//!               "gauges":{"kernel.dispatch":1.0},
//!               "histograms":{"frame.tau_tot_ms":{"count":120,"mean":33.1,
//!                             "p50":33.0,"p95":35.2,"p99":36.0,"max":36.4}},
//!               "devices":[{"device":0,"name":"GPU0","busy_pct":87.3,
//!                           "residual_pct":1.2,"blacklisted":false}]}]}
//! ```
//!
//! Every registry metric appears in every session (counters/gauges/
//! histograms keyed by dotted metric name), so the key-path set is stable —
//! that is the golden-schema contract tested in `tests/telemetry.rs`.
//! Sessions whose last handle dropped between ticks are appended from the
//! hub's retirement history with `"ended": true` and the same key paths.
//! Non-finite floats (e.g. the mean of an empty histogram is well-defined
//! but a cleared residual is not) serialize as `null`.

use crate::bus::{BusStats, SelfCost};
use crate::recorder::MemoryRecorder;
use crate::scope::{hub, DeviceLive, RetiredSession, SessionScope};
use crate::{persist, Metric, MetricKind};
use serde::Value;
use std::path::Path;
use std::time::Duration;

/// Schema tag of the live snapshot format.
pub const SCHEMA: &str = "feves-live/1";

/// A finite float serializes as a number, anything else as `null` (the
/// vendored serde_json rejects NaN/inf by design).
fn fnum(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else {
        Value::Null
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn self_cost(c: &SelfCost) -> Value {
    obj(vec![
        ("count", Value::UInt(c.count)),
        ("mean", fnum(c.mean)),
        ("p99", fnum(c.p99)),
        ("max", fnum(c.max)),
    ])
}

/// One session as the snapshot writer sees it — live and retired sessions
/// serialize through the same builder so the key-path set (the
/// golden-schema contract) is identical for both.
struct SessionView<'a> {
    id: u64,
    label: &'a str,
    frames: u64,
    fps: f64,
    dropped: u64,
    ended: bool,
    metrics: &'a MemoryRecorder,
    devices: &'a [DeviceLive],
}

fn session_fields(view: SessionView<'_>) -> Value {
    let SessionView {
        id,
        label,
        frames,
        fps,
        dropped,
        ended,
        metrics: m,
        devices: live_devices,
    } = view;
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for metric in Metric::ALL {
        let def = metric.def();
        match def.kind {
            MetricKind::Counter => {
                counters.push((def.name.to_string(), Value::UInt(m.counter(metric))));
            }
            MetricKind::Gauge => {
                let v = m.gauge_value(metric).map(fnum).unwrap_or(Value::Null);
                gauges.push((def.name.to_string(), v));
            }
            MetricKind::Histogram => {
                let h = m.histogram(metric);
                histograms.push((
                    def.name.to_string(),
                    obj(vec![
                        ("count", Value::UInt(h.count())),
                        ("mean", fnum(h.mean())),
                        ("p50", fnum(h.percentile(50.0))),
                        ("p95", fnum(h.percentile(95.0))),
                        ("p99", fnum(h.percentile(99.0))),
                        ("max", fnum(h.max())),
                    ]),
                ));
            }
        }
    }
    let devices = live_devices
        .iter()
        .map(|d| {
            obj(vec![
                ("device", Value::UInt(d.device as u64)),
                ("name", Value::Str(d.name.clone())),
                ("busy_pct", fnum(d.busy_pct)),
                (
                    "residual_pct",
                    d.residual_pct.map(fnum).unwrap_or(Value::Null),
                ),
                ("blacklisted", Value::Bool(d.blacklisted)),
            ])
        })
        .collect();
    obj(vec![
        ("id", Value::UInt(id)),
        ("label", Value::Str(label.to_string())),
        ("frames", Value::UInt(frames)),
        ("fps", fnum(fps)),
        ("dropped_events", Value::UInt(dropped)),
        ("ended", Value::Bool(ended)),
        ("counters", Value::Object(counters)),
        ("gauges", Value::Object(gauges)),
        ("histograms", Value::Object(histograms)),
        ("devices", Value::Array(devices)),
    ])
}

fn session_value(scope: &SessionScope) -> Value {
    scope.sync_dropped();
    let metrics = scope.metrics();
    let devices = scope.devices();
    session_fields(SessionView {
        id: scope.id(),
        label: scope.label(),
        frames: scope.frames(),
        fps: scope.fps(),
        dropped: scope.dropped_events(),
        ended: false,
        metrics: &metrics,
        devices: &devices,
    })
}

fn retired_value(r: &RetiredSession) -> Value {
    session_fields(SessionView {
        id: r.id,
        label: &r.label,
        frames: r.frames,
        fps: r.fps,
        dropped: r.dropped,
        ended: true,
        metrics: &r.metrics,
        devices: &r.devices,
    })
}

/// Build one live snapshot over `scopes` (running sessions) and `retired`
/// (recently ended sessions, rendered with `"ended": true`) as a JSON tree.
pub fn build_snapshot(
    seq: u64,
    uptime: Duration,
    bus: Option<&BusStats>,
    scopes: &[SessionScope],
    retired: &[RetiredSession],
) -> Value {
    let bus_value = bus
        .map(|b| {
            obj(vec![
                ("capacity", Value::UInt(b.capacity as u64)),
                ("depth", Value::UInt(b.depth as u64)),
                ("published", Value::UInt(b.published)),
                ("drained", Value::UInt(b.drained)),
                ("dropped", Value::UInt(b.dropped)),
                ("enqueue_ns", self_cost(&b.enqueue_ns)),
                ("drain_batch_us", self_cost(&b.drain_batch_us)),
            ])
        })
        .unwrap_or(Value::Null);
    obj(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        ("seq", Value::UInt(seq)),
        ("uptime_ms", fnum(uptime.as_secs_f64() * 1_000.0)),
        ("bus", bus_value),
        (
            "sessions",
            Value::Array(
                scopes
                    .iter()
                    .map(session_value)
                    .chain(retired.iter().map(retired_value))
                    .collect(),
            ),
        ),
    ])
}

/// Snapshot every live (non-default) session of this process — plus the
/// hub's retired-session history, so sessions that ended between snapshot
/// ticks still appear once with `"ended": true` — and write the result
/// atomically to `path`.
pub fn write_live(
    path: &Path,
    seq: u64,
    uptime: Duration,
    bus: Option<&BusStats>,
) -> std::io::Result<()> {
    let scopes = hub().scopes();
    let retired = hub().retired();
    let value = build_snapshot(seq, uptime, bus, &scopes, &retired);
    let mut text =
        serde_json::to_string(&value).map_err(|e| std::io::Error::other(format!("{e:?}")))?;
    text.push('\n');
    persist::write_atomic(path, text.as_bytes())
}

/// A parsed live snapshot (schema-checked), with the render surfaces used
/// by `feves top` / `feves stats` / `feves report`.
#[derive(Clone, Debug)]
pub struct LiveSnapshot {
    root: Value,
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

impl LiveSnapshot {
    /// Parse and schema-check one snapshot document.
    pub fn parse(text: &str) -> Result<LiveSnapshot, String> {
        let root = serde_json::value_from_str(text.trim())
            .map_err(|e| format!("live snapshot is not valid JSON: {e:?}"))?;
        let schema = root.get("schema").and_then(Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!(
                "not a live snapshot: schema {:?}, expected {SCHEMA:?}",
                schema.unwrap_or("<missing>")
            ));
        }
        if root.get("sessions").and_then(Value::as_array).is_none() {
            return Err("live snapshot has no sessions array".into());
        }
        if root.get("seq").and_then(Value::as_u64).is_none() {
            return Err("live snapshot has no seq".into());
        }
        Ok(LiveSnapshot { root })
    }

    /// Snapshot sequence number (monotonic per writer).
    pub fn seq(&self) -> u64 {
        get_u64(&self.root, "seq").unwrap_or(0)
    }

    /// Writer uptime in milliseconds at snapshot time.
    pub fn uptime_ms(&self) -> f64 {
        get_f64(&self.root, "uptime_ms").unwrap_or(0.0)
    }

    /// The underlying JSON tree.
    pub fn value(&self) -> &Value {
        &self.root
    }

    fn sessions(&self) -> &[Value] {
        self.root
            .get("sessions")
            .and_then(Value::as_array)
            .unwrap_or(&[])
    }

    /// Total telemetry events dropped across the bus and every session
    /// (`obs.dropped_events`) — nonzero means the dashboard's counters
    /// undercount. `feves top` warns on it; `--strict` exits nonzero.
    pub fn dropped_events(&self) -> u64 {
        let bus = self
            .root
            .get("bus")
            .and_then(|b| get_u64(b, "dropped"))
            .unwrap_or(0);
        let sessions: u64 = self
            .sessions()
            .iter()
            .map(|s| get_u64(s, "dropped_events").unwrap_or(0))
            .sum();
        bus + sessions
    }

    /// The refreshing-dashboard view (`feves top`): per-session device rows
    /// with busy bars, residuals and health, plus bus accounting.
    pub fn render_top(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FEVES live · seq {} · uptime {:.1} s\n",
            self.seq(),
            self.uptime_ms() / 1_000.0
        ));
        let dropped = self.dropped_events();
        if dropped > 0 {
            // Yellow so a lossy bus is impossible to miss: every counter
            // below undercounts by an unknown amount.
            out.push_str(&format!(
                "\x1b[33mwarning: {dropped} telemetry event(s) dropped at a full bus — counters undercount\x1b[0m\n"
            ));
        }
        if let Some(bus) = self.root.get("bus").filter(|b| !matches!(b, Value::Null)) {
            out.push_str(&format!(
                "bus   depth {}/{}   published {}   drained {}   dropped {}\n",
                get_u64(bus, "depth").unwrap_or(0),
                get_u64(bus, "capacity").unwrap_or(0),
                get_u64(bus, "published").unwrap_or(0),
                get_u64(bus, "drained").unwrap_or(0),
                get_u64(bus, "dropped").unwrap_or(0),
            ));
            if let (Some(enq), Some(drn)) = (bus.get("enqueue_ns"), bus.get("drain_batch_us")) {
                out.push_str(&format!(
                    "      enqueue p99 {:.0} ns (n={})   drain batch mean {:.1} µs · max {:.1} µs\n",
                    get_f64(enq, "p99").unwrap_or(0.0),
                    get_u64(enq, "count").unwrap_or(0),
                    get_f64(drn, "mean").unwrap_or(0.0),
                    get_f64(drn, "max").unwrap_or(0.0),
                ));
            }
        }
        for s in self.sessions() {
            out.push('\n');
            let ended = matches!(s.get("ended"), Some(Value::Bool(true)));
            out.push_str(&format!(
                "session {} · {:<16} frames {:>6}   {:>6.1} fps   dropped {}{}\n",
                get_u64(s, "id").unwrap_or(0),
                s.get("label").and_then(Value::as_str).unwrap_or("?"),
                get_u64(s, "frames").unwrap_or(0),
                get_f64(s, "fps").unwrap_or(0.0),
                get_u64(s, "dropped_events").unwrap_or(0),
                if ended { "   [ended]" } else { "" },
            ));
            let devices = s.get("devices").and_then(Value::as_array).unwrap_or(&[]);
            if !devices.is_empty() {
                out.push_str(&format!(
                    "  {:>3}  {:<14} {:<28} {:>9}  state\n",
                    "dev", "name", "busy", "residual"
                ));
                for d in devices {
                    let busy = get_f64(d, "busy_pct").unwrap_or(0.0);
                    let filled = ((busy / 100.0 * 20.0).round() as usize).min(20);
                    let bar: String = "#".repeat(filled) + &".".repeat(20 - filled);
                    let residual = get_f64(d, "residual_pct")
                        .map(|r| format!("{r:+.1}%"))
                        .unwrap_or_else(|| "-".into());
                    let state = match d.get("blacklisted") {
                        Some(Value::Bool(true)) => "BLACKLISTED",
                        _ => "ok",
                    };
                    out.push_str(&format!(
                        "  {:>3}  {:<14} [{bar}] {busy:>5.1}% {residual:>9}  {state}\n",
                        get_u64(d, "device").unwrap_or(0),
                        d.get("name").and_then(Value::as_str).unwrap_or("?"),
                    ));
                }
            }
            // One-line vitals: scheduling overhead + fault/drift counters.
            let hists = s.get("histograms");
            let counters = s.get("counters");
            let sched = hists.and_then(|h| h.get("sched.overhead_us"));
            out.push_str(&format!(
                "  sched.overhead_us p50 {} · p99 {}   drift {}   faults {}/{} recovered\n",
                sched
                    .and_then(|h| get_f64(h, "p50"))
                    .map(|v| format!("{v:.0} µs"))
                    .unwrap_or_else(|| "-".into()),
                sched
                    .and_then(|h| get_f64(h, "p99"))
                    .map(|v| format!("{v:.0} µs"))
                    .unwrap_or_else(|| "-".into()),
                counters
                    .and_then(|c| get_u64(c, "sched.drift"))
                    .unwrap_or(0),
                counters
                    .and_then(|c| get_u64(c, "ft.faults_recovered"))
                    .unwrap_or(0),
                counters
                    .and_then(|c| get_u64(c, "ft.faults_detected"))
                    .unwrap_or(0),
            ));
        }
        out
    }

    /// The tabular view (`feves stats <live.json>`): every metric of every
    /// session, in the same column layout as the final-metrics table.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "live snapshot · seq {} · uptime {:.1} s\n",
            self.seq(),
            self.uptime_ms() / 1_000.0
        ));
        for s in self.sessions() {
            out.push_str(&format!(
                "\nsession {} · {} · frames {} · dropped {}\n",
                get_u64(s, "id").unwrap_or(0),
                s.get("label").and_then(Value::as_str).unwrap_or("?"),
                get_u64(s, "frames").unwrap_or(0),
                get_u64(s, "dropped_events").unwrap_or(0),
            ));
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
                "metric", "count", "mean", "p50", "p95", "p99", "max/value"
            ));
            let empty = Value::Object(Vec::new());
            for (name, v) in s
                .get("counters")
                .unwrap_or(&empty)
                .as_object()
                .unwrap_or(&[])
            {
                out.push_str(&format!(
                    "{name:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    v.as_u64().unwrap_or(0)
                ));
            }
            for (name, v) in s.get("gauges").unwrap_or(&empty).as_object().unwrap_or(&[]) {
                let shown = v
                    .as_f64()
                    .map(|f| format!("{f:.2}"))
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(
                    "{name:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {shown:>12}\n",
                    "-", "-", "-", "-", "-",
                ));
            }
            for (name, h) in s
                .get("histograms")
                .unwrap_or(&empty)
                .as_object()
                .unwrap_or(&[])
            {
                out.push_str(&format!(
                    "{name:<24} {:>10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.2}\n",
                    get_u64(h, "count").unwrap_or(0),
                    get_f64(h, "mean").unwrap_or(0.0),
                    get_f64(h, "p50").unwrap_or(0.0),
                    get_f64(h, "p95").unwrap_or(0.0),
                    get_f64(h, "p99").unwrap_or(0.0),
                    get_f64(h, "max").unwrap_or(0.0),
                ));
            }
        }
        out
    }

    /// A short prose summary (`feves report` on a live snapshot).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FEVES live report · snapshot seq {} · uptime {:.1} s\n",
            self.seq(),
            self.uptime_ms() / 1_000.0
        ));
        if let Some(bus) = self.root.get("bus").filter(|b| !matches!(b, Value::Null)) {
            let published = get_u64(bus, "published").unwrap_or(0);
            let dropped = get_u64(bus, "dropped").unwrap_or(0);
            out.push_str(&format!(
                "telemetry bus: {published} events published, {dropped} dropped ({})\n",
                if dropped == 0 {
                    "no loss".to_string()
                } else {
                    format!(
                        "{:.2}% loss",
                        dropped as f64 / (published + dropped).max(1) as f64 * 100.0
                    )
                }
            ));
        }
        for s in self.sessions() {
            let frames = get_u64(s, "frames").unwrap_or(0);
            let fps = get_f64(s, "fps").unwrap_or(0.0);
            let devices = s.get("devices").and_then(Value::as_array).unwrap_or(&[]);
            let blacklisted = devices
                .iter()
                .filter(|d| matches!(d.get("blacklisted"), Some(Value::Bool(true))))
                .count();
            out.push_str(&format!(
                "session {} ({}): {frames} frames at {fps:.1} fps on {} devices ({blacklisted} blacklisted)\n",
                get_u64(s, "id").unwrap_or(0),
                s.get("label").and_then(Value::as_str).unwrap_or("?"),
                devices.len(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::TelemetryBus;

    fn sample_scope() -> SessionScope {
        let scope = hub().session("live-test");
        scope.set_device_labels(&["GPU0", "CPU0"]);
        scope.device_sample(0, 87.3, Some(1.2), false);
        scope.device_sample(1, 38.1, None, true);
        let rec = scope.recorder();
        rec.add(Metric::FramesEncoded, 120);
        rec.observe(Metric::FrameTauTotMs, 33.0);
        for _ in 0..120 {
            scope.frame_done();
        }
        scope
    }

    #[test]
    fn snapshot_roundtrips_and_renders() {
        let scope = sample_scope();
        let bus = TelemetryBus::new(1 << 10);
        let value = build_snapshot(
            7,
            Duration::from_millis(1500),
            Some(&bus.stats()),
            &[scope],
            &[],
        );
        let text = serde_json::to_string(&value).expect("serializes despite empty histograms");
        let snap = LiveSnapshot::parse(&text).expect("round-trips");
        assert_eq!(snap.seq(), 7);
        assert!((snap.uptime_ms() - 1500.0).abs() < 1e-6);
        let top = snap.render_top();
        assert!(top.contains("GPU0"), "{top}");
        assert!(top.contains("BLACKLISTED"), "{top}");
        assert!(top.contains("dropped 0"), "{top}");
        let stats = snap.render_stats();
        assert!(stats.contains("frames.encoded"), "{stats}");
        assert!(stats.contains("frame.tau_tot_ms"), "{stats}");
        let summary = snap.render_summary();
        assert!(summary.contains("2 devices (1 blacklisted)"), "{summary}");
    }

    #[test]
    fn session_ended_between_ticks_appears_in_snapshot() {
        let label = "ended-between-ticks";
        {
            let scope = hub().session(label);
            scope.recorder().add(Metric::FramesEncoded, 9);
            scope.frame_done();
        } // last handle gone before any snapshot tick
        let retired = hub().retired();
        let value = build_snapshot(1, Duration::from_millis(50), None, &[], &retired);
        let text = serde_json::to_string(&value).unwrap();
        let snap = LiveSnapshot::parse(&text).unwrap();
        let s = snap
            .sessions()
            .iter()
            .find(|s| s.get("label").and_then(Value::as_str) == Some(label))
            .expect("retired session must appear in the snapshot")
            .clone();
        assert!(matches!(s.get("ended"), Some(Value::Bool(true))));
        assert_eq!(s.get("frames").and_then(Value::as_u64), Some(1));
        assert_eq!(
            s.get("counters")
                .and_then(|c| c.get("frames.encoded"))
                .and_then(Value::as_u64),
            Some(9)
        );
        assert!(snap.render_top().contains("[ended]"));
    }

    #[test]
    fn dropped_events_sum_bus_and_sessions_and_warn() {
        let clean = "{\"schema\":\"feves-live/1\",\"seq\":1,\"sessions\":[]}";
        let snap = LiveSnapshot::parse(clean).unwrap();
        assert_eq!(snap.dropped_events(), 0);
        assert!(!snap.render_top().contains("warning:"));
        let lossy = "{\"schema\":\"feves-live/1\",\"seq\":1,\
                     \"bus\":{\"dropped\":3},\
                     \"sessions\":[{\"id\":1,\"dropped_events\":2},\
                                   {\"id\":2,\"dropped_events\":0}]}";
        let snap = LiveSnapshot::parse(lossy).unwrap();
        assert_eq!(snap.dropped_events(), 5);
        let top = snap.render_top();
        assert!(
            top.contains("warning: 5 telemetry event(s) dropped"),
            "{top}"
        );
        assert!(top.contains("\x1b[33m"), "warning renders yellow: {top}");
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(LiveSnapshot::parse("{}").is_err());
        assert!(LiveSnapshot::parse("{\"schema\":\"feves-live/0\"}").is_err());
        assert!(LiveSnapshot::parse("not json").is_err());
        let minimal = "{\"schema\":\"feves-live/1\",\"seq\":1,\"sessions\":[]}";
        assert!(LiveSnapshot::parse(minimal).is_ok());
    }

    #[test]
    fn write_live_is_atomic_and_parseable() {
        let _scope = sample_scope();
        let dir = std::env::temp_dir().join(format!("feves-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.json");
        write_live(&path, 3, Duration::from_millis(10), None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = LiveSnapshot::parse(&text).unwrap();
        assert!(snap.seq() >= 3);
        assert!(!snap.sessions().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
