//! Crash-safe artifact persistence.
//!
//! Every file the framework emits for a human or a downstream tool — flight
//! JSONL, metrics JSON, bench results, HTML reports — goes through
//! [`write_atomic`]: write the full payload to a temp file *in the same
//! directory*, fsync it, then `rename` over the destination. POSIX rename is
//! atomic within a filesystem, so a reader (or a crash at any instant) sees
//! either the complete old file or the complete new file — never a torn one.
//!
//! The temp file lives next to the destination (not in `/tmp`) because
//! `rename(2)` cannot cross filesystems; the name embeds the destination
//! file name plus the process id so concurrent writers to *different* files
//! in one directory never collide.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Temp-file path for an atomic write to `dest`: same directory,
/// `.<name>.<pid>.tmp`.
fn temp_path_for(dest: &Path) -> PathBuf {
    let dir = dest.parent().unwrap_or_else(|| Path::new("."));
    let name = dest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    dir.join(format!(".{name}.{}.tmp", std::process::id()))
}

/// Durably replace `dest` with `bytes`: temp file in the same directory →
/// write → fsync → atomic rename → directory fsync (best-effort on
/// non-unix). On any error the temp file is removed and `dest` is left
/// exactly as it was.
pub fn write_atomic(dest: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let dest = dest.as_ref();
    let tmp = temp_path_for(dest);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes.as_ref())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dest)?;
        sync_parent_dir(dest);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Directory fds are not writable on all platforms; failures are ignored —
/// the data file is already synced, only the rename's durability window
/// widens.
pub(crate) fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file_and_replaces_existing() {
        let dir = scratch_dir("basic");
        let dest = dir.join("out.json");
        write_atomic(&dest, b"first").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"first");
        write_atomic(&dest, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"second, longer payload");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = scratch_dir("fail");
        let dest = dir.join("missing-subdir").join("out.json");
        // Parent of dest does not exist → File::create fails; nothing
        // should appear anywhere.
        assert!(write_atomic(&dest, b"x").is_err());
        assert!(!dest.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_name_is_sibling_and_hidden() {
        let t = temp_path_for(Path::new("/a/b/report.html"));
        assert_eq!(t.parent().unwrap(), Path::new("/a/b"));
        let name = t.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".report.html."), "{name}");
        assert!(name.ends_with(".tmp"), "{name}");
    }
}
