//! Crash-safe artifact persistence.
//!
//! Every file the framework emits for a human or a downstream tool — flight
//! JSONL, metrics JSON, bench results, HTML reports, spool/done control
//! files — goes through [`write_atomic`]: write the full payload to a temp
//! file *in the same directory*, fsync it, then `rename` over the
//! destination. POSIX rename is atomic within a filesystem, so a reader (or
//! a crash at any instant) sees either the complete old file or the
//! complete new file — never a torn one.
//!
//! The temp file lives next to the destination (not in `/tmp`) because
//! `rename(2)` cannot cross filesystems; the name embeds the destination
//! file name plus the process id so concurrent writers to *different* files
//! in one directory never collide.
//!
//! All filesystem side effects route through the [`feves_ft::io`] backend
//! seam, so storage chaos tests can inject ENOSPC / EIO / torn renames here
//! without touching this code. Transient faults are retried under a small
//! bounded [`RetryPolicy`]; retries and disk-full events are accounted on
//! the global recorder (`io.retries`, `io.enospc_events`).

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use feves_ft::io::{backend_for, classify, retry_io, IoErrorClass};
use feves_ft::RetryPolicy;

use crate::Metric;

/// Temp-file path for an atomic write to `dest`: same directory,
/// `.<name>.<pid>.tmp`.
fn temp_path_for(dest: &Path) -> PathBuf {
    let dir = dest.parent().unwrap_or_else(|| Path::new("."));
    let name = dest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    dir.join(format!(".{name}.{}.tmp", std::process::id()))
}

/// Retry policy for transient I/O faults on durable control/artifact
/// writes: three quick attempts, seeded off the destination name so delays
/// decorrelate across concurrent writers.
fn io_policy(dest: &Path) -> RetryPolicy {
    let seed = feves_ft::ckpt::fnv1a64(dest.as_os_str().as_encoded_bytes());
    RetryPolicy::new(Duration::from_millis(2), 3, seed)
}

/// Durably replace `dest` with `bytes`: temp file in the same directory →
/// write → fsync → atomic rename → directory fsync (best-effort on
/// non-unix). On any error the temp file is removed and `dest` is left
/// exactly as it was. Transient EIO is retried (the whole
/// write-then-rename sequence re-runs, so a torn temp or torn rename
/// destination is simply overwritten); ENOSPC is surfaced immediately.
pub fn write_atomic(dest: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let dest = dest.as_ref();
    let bytes = bytes.as_ref();
    let backend = backend_for(dest);
    let tmp = temp_path_for(dest);
    let (result, retries) = retry_io(&io_policy(dest), || {
        backend.write_file(&tmp, bytes)?;
        backend.rename(&tmp, dest)
    });
    let rec = crate::global();
    if retries > 0 {
        rec.add(Metric::IoRetries, u64::from(retries));
    }
    match result {
        Ok(()) => {
            sync_parent_dir(dest);
            Ok(())
        }
        Err(e) => {
            if classify(&e) == IoErrorClass::Enospc {
                rec.add(Metric::IoEnospcEvents, 1);
            }
            let _ = backend.remove_file(&tmp);
            Err(e)
        }
    }
}

/// Remove orphaned `write_atomic` temp files (`.<name>.<pid>.tmp`) left in
/// `dir` by a crash mid-write. Returns how many were swept. Any process id
/// is matched — the orphan may belong to a previous daemon incarnation.
pub fn sweep_orphans(dir: impl AsRef<Path>) -> io::Result<usize> {
    let dir = dir.as_ref();
    let mut swept = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') && name.ends_with(".tmp") && entry.path().is_file() {
            backend_for(&entry.path()).remove_file(&entry.path())?;
            swept += 1;
        }
    }
    Ok(swept)
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Directory fds are not writable on all platforms; failures are ignored —
/// the data file is already synced, only the rename's durability window
/// widens.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        let _ = backend_for(dir).sync_dir(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_ft::io::{inject, FaultPlan, FaultyIo};
    use std::fs;
    use std::sync::Arc;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file_and_replaces_existing() {
        let dir = scratch_dir("basic");
        let dest = dir.join("out.json");
        write_atomic(&dest, b"first").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"first");
        write_atomic(&dest, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"second, longer payload");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = scratch_dir("fail");
        let dest = dir.join("missing-subdir").join("out.json");
        // Parent of dest does not exist → File::create fails; nothing
        // should appear anywhere.
        assert!(write_atomic(&dest, b"x").is_err());
        assert!(!dest.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_name_is_sibling_and_hidden() {
        let t = temp_path_for(Path::new("/a/b/report.html"));
        assert_eq!(t.parent().unwrap(), Path::new("/a/b"));
        let name = t.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".report.html."), "{name}");
        assert!(name.ends_with(".tmp"), "{name}");
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let dir = scratch_dir("retry");
        let dest = dir.join("out.json");
        let faulty = Arc::new(FaultyIo::new(FaultPlan {
            seed: 5,
            transient_eio_per_mille: 250,
            torn_rename_per_mille: 150,
            ..FaultPlan::default()
        }));
        let _scope = inject(&dir, faulty.clone());
        let mut failures = 0;
        for i in 0..40 {
            let payload = format!("payload {i}");
            match write_atomic(&dest, payload.as_bytes()) {
                // A successful return always means the complete payload
                // landed — retries must re-run the whole sequence.
                Ok(()) => assert_eq!(fs::read(&dest).unwrap(), payload.as_bytes()),
                // Budget exhaustion under an unlucky streak is allowed and
                // may leave a torn destination (an injected torn rename is
                // a simulated kernel crash); callers detect that via the
                // CRC framing layered on top.
                Err(_) => failures += 1,
            }
        }
        let c = faulty.counts();
        assert!(c.transient_eio + c.torn_renames > 0, "no faults fired");
        assert!(failures < 40, "every write failed — retries not working");
        drop(_scope);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_not_retried_and_surfaces_typed() {
        let dir = scratch_dir("enospc");
        let dest = dir.join("out.json");
        let faulty = Arc::new(FaultyIo::new(FaultPlan {
            seed: 9,
            enospc_per_mille: 1000,
            ..FaultPlan::default()
        }));
        let _scope = inject(&dir, faulty);
        let err = write_atomic(&dest, b"x").unwrap_err();
        assert_eq!(classify(&err), IoErrorClass::Enospc);
        assert!(!dest.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_orphans_removes_only_temp_droppings() {
        let dir = scratch_dir("sweep");
        fs::write(dir.join(".out.json.12345.tmp"), b"torn").unwrap();
        fs::write(dir.join(".other.99.tmp"), b"torn").unwrap();
        fs::write(dir.join("keep.json"), b"real").unwrap();
        let swept = sweep_orphans(&dir).unwrap();
        assert_eq!(swept, 2);
        assert!(dir.join("keep.json").exists());
        assert!(!dir.join(".out.json.12345.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
