//! Farm-wide causal tracing: span trees with explicit causal edges.
//!
//! A *trace* is the end-to-end story of one job: submitted to the spool,
//! admitted through the farm queue, leased a device partition, executed as
//! one or more session attempts, encoded frame by frame, dispatched to a
//! kernel family — and, on a fault, checkpointed and resumed. Every stage
//! records a [`TraceSpan`] into a shared [`TraceCollector`]; stages whose
//! relation is causal rather than parental (queue→admit,
//! checkpoint→resume-retry, frame N τ-sync→frame N+1 phase-1 overlap)
//! additionally record a [`TraceEdge`].
//!
//! Identifiers are deterministic: the trace id is the FNV-1a 64 hash of the
//! job id (the same function behind `JobSpec::seed`), and span ids derive
//! from `(trace_id, parent, name)` — *content*, not sequence — so the ids
//! in a trace log never depend on how farm worker threads interleaved.
//! Wall-clock *timestamps* of farm-level spans are host-dependent, which is
//! why trace logs are golden-tested on their key-path schema, not their
//! values; frame/phase spans run on the deterministic virtual clock.
//!
//! Persistence is JSONL: a `{"schema":"feves-trace/1"}` header line, then
//! one `{"span":{..}}` or `{"edge":{..}}` object per line. The merged
//! Perfetto view ([`TraceLog::to_perfetto`]) renders one track group per
//! trace id with flow arrows on the causal edges.

use crate::chrome::ChromeTraceBuilder;
use serde::{Deserialize, Serialize, Value};
use std::sync::Mutex;
use std::time::Instant;

/// Trace-log schema tag (first JSONL line).
pub const TRACE_SCHEMA: &str = "feves-trace/1";

/// FNV-1a 64-bit hash — the deterministic id seed shared with
/// `JobSpec::seed` so a job's trace id equals its scheduling seed.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic span id: content-derived from `(trace_id, parent, name)`.
/// Sibling names must be unique (the emitters index theirs: `attempt0`,
/// `frame12`, `ckpt2`); parent scoping lets a retried attempt re-emit
/// `frame12` without colliding with the first attempt's.
pub fn span_id(trace_id: u64, parent: u64, name: &str) -> u64 {
    let mut buf = Vec::with_capacity(16 + name.len());
    buf.extend_from_slice(&trace_id.to_le_bytes());
    buf.extend_from_slice(&parent.to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    fnv1a64(&buf)
}

/// The causal context carried along a job's path through the farm: which
/// trace the work belongs to and which span is its parent. Minted at
/// `feves submit` from the job id, re-minted deterministically on resume —
/// checkpoints carry no trace state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id — `fnv1a64(job id)`.
    pub trace_id: u64,
    /// Span id new spans parent under.
    pub parent_span: u64,
}

impl TraceCtx {
    /// Root context of a job: the trace id is the FNV-1a hash of the job
    /// id and the parent is the job root span (named `job:<id>` so
    /// human-facing reports can name the job without a side table).
    pub fn for_job(job_id: &str) -> TraceCtx {
        let trace_id = fnv1a64(job_id.as_bytes());
        TraceCtx {
            trace_id,
            parent_span: span_id(trace_id, 0, &format!("job:{job_id}")),
        }
    }

    /// Derive the deterministic id of a child span named `name`, and the
    /// context spans *under that child* would use.
    pub fn child(&self, name: &str) -> (u64, TraceCtx) {
        let id = span_id(self.trace_id, self.parent_span, name);
        (
            id,
            TraceCtx {
                trace_id: self.trace_id,
                parent_span: id,
            },
        )
    }
}

/// One device's share of a frame span: how many MB rows it was assigned
/// and how long its compute lanes ran — the rate sample
/// (`busy_ms / rows`) the what-if analyzer re-balances against.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceSlice {
    /// Device index in platform enumeration order.
    pub device: usize,
    /// Total MB rows assigned (ME + INT + SME).
    pub rows: u64,
    /// Measured compute-busy ms on the virtual clock.
    pub busy_ms: f64,
}

/// A named numeric attribute of a span (`{"k":"tau1_ms","v":10.5}`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceArg {
    /// Attribute name.
    pub k: String,
    /// Attribute value (finite).
    pub v: f64,
}

/// One span of a trace: a named interval with a parent link.
///
/// Farm-lifecycle spans (`job`, `queue`, `admission`, `attempt`,
/// `checkpoint`, `retry`, `drain` categories) carry wall-clock
/// microseconds relative to the farm epoch; `frame`/`phase`/`kernel`
/// spans carry virtual-clock microseconds relative to their attempt.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Trace (job) this span belongs to.
    pub trace_id: u64,
    /// Deterministic span id ([`span_id`]).
    pub span_id: u64,
    /// Parent span id (`None` only for the job root).
    pub parent: Option<u64>,
    /// Span name, unique among siblings (`attempt0`, `frame12`, …).
    pub name: String,
    /// Category: `job`, `queue`, `admission`, `attempt`, `checkpoint`,
    /// `retry`, `drain`, `frame`, `phase`, or `kernel`.
    pub cat: String,
    /// Start, microseconds (wall for lifecycle spans, virtual for
    /// frame-level spans).
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Per-device rate samples (frame spans only; empty elsewhere).
    pub devices: Vec<DeviceSlice>,
    /// Named numeric attributes (frame spans carry the τ decomposition).
    pub args: Vec<TraceArg>,
}

impl TraceSpan {
    /// End of the span, microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }

    /// Look up a named argument.
    pub fn arg(&self, k: &str) -> Option<f64> {
        self.args.iter().find(|a| a.k == k).map(|a| a.v)
    }
}

/// Kind of a causal edge between two spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Queue residency ended in an admission to a worker slot.
    QueueAdmit,
    /// A durable checkpoint seeded the retry attempt that resumed from it.
    CheckpointResume,
    /// Frame N's τ-sync stall absorbed frame N+1's phase-1 prefix (the
    /// inter-frame pipeline of `core::pipeline`).
    PipelineOverlap,
}

impl EdgeKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::QueueAdmit => "queue_admit",
            EdgeKind::CheckpointResume => "checkpoint_resume",
            EdgeKind::PipelineOverlap => "pipeline_overlap",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<EdgeKind> {
        match s {
            "queue_admit" => Some(EdgeKind::QueueAdmit),
            "checkpoint_resume" => Some(EdgeKind::CheckpointResume),
            "pipeline_overlap" => Some(EdgeKind::PipelineOverlap),
            _ => None,
        }
    }
}

impl Serialize for EdgeKind {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for EdgeKind {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::msg("edge kind must be a string"))?;
        EdgeKind::parse(s).ok_or_else(|| serde::Error::msg(format!("unknown edge kind {s:?}")))
    }
}

/// A causal (non-parental) dependency between two spans of one trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEdge {
    /// Trace both endpoints belong to.
    pub trace_id: u64,
    /// Causing span.
    pub from_span: u64,
    /// Caused span.
    pub to_span: u64,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

/// Thread-safe sink collecting the spans and edges of a farm run. One
/// collector per farm; every session/worker holds an `Arc` to it. Span
/// recording is a short mutex push — the encode hot path only reaches it
/// once per frame, and not at all when tracing is off.
#[derive(Debug, Default)]
pub struct TraceCollector {
    inner: Mutex<TraceLog>,
}

impl TraceCollector {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span.
    pub fn span(&self, span: TraceSpan) {
        self.lock().spans.push(span);
    }

    /// Record one causal edge.
    pub fn edge(&self, edge: TraceEdge) {
        self.lock().edges.push(edge);
    }

    /// Spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Edges recorded so far.
    pub fn edge_count(&self) -> usize {
        self.lock().edges.len()
    }

    /// The most recent span of `trace_id` with category `cat` (by start
    /// time) — how the farm finds the checkpoint a retry resumes from.
    pub fn last_span_of(&self, trace_id: u64, cat: &str) -> Option<u64> {
        let inner = self.lock();
        inner
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id && s.cat == cat)
            .max_by(|a, b| {
                a.start_us
                    .partial_cmp(&b.start_us)
                    .expect("span times are finite")
            })
            .map(|s| s.span_id)
    }

    /// Snapshot the collected log (spans/edges in canonical order).
    pub fn snapshot(&self) -> TraceLog {
        let mut log = self.lock().clone();
        log.canonicalize();
        log
    }

    /// Serialize the collected log as trace JSONL.
    pub fn to_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceLog> {
        // Telemetry never takes the farm down with a poisoned lock.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A handle stages emit spans through: the shared collector, the causal
/// context to parent under, and the farm epoch that wall timestamps are
/// relative to.
#[derive(Clone)]
pub struct TraceSink {
    /// Shared span/edge sink.
    pub collector: std::sync::Arc<TraceCollector>,
    /// Trace id + parent span new spans attach to.
    pub ctx: TraceCtx,
    epoch: Instant,
}

impl TraceSink {
    /// A sink over `collector` with `ctx`, timestamping against `epoch`.
    pub fn new(collector: std::sync::Arc<TraceCollector>, ctx: TraceCtx, epoch: Instant) -> Self {
        TraceSink {
            collector,
            ctx,
            epoch,
        }
    }

    /// Microseconds of wall clock since the farm epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// The epoch this sink timestamps against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// A sink whose spans parent under `span` instead.
    pub fn under(&self, span: u64) -> TraceSink {
        TraceSink {
            collector: self.collector.clone(),
            ctx: TraceCtx {
                trace_id: self.ctx.trace_id,
                parent_span: span,
            },
            epoch: self.epoch,
        }
    }

    /// Record a span named `name` under the sink's parent; returns its id.
    pub fn record(&self, name: &str, cat: &str, start_us: f64, dur_us: f64) -> u64 {
        self.record_full(name, cat, start_us, dur_us, Vec::new(), Vec::new())
    }

    /// Record a span with device slices and arguments; returns its id.
    pub fn record_full(
        &self,
        name: &str,
        cat: &str,
        start_us: f64,
        dur_us: f64,
        devices: Vec<DeviceSlice>,
        args: Vec<TraceArg>,
    ) -> u64 {
        let id = span_id(self.ctx.trace_id, self.ctx.parent_span, name);
        self.collector.span(TraceSpan {
            trace_id: self.ctx.trace_id,
            span_id: id,
            // Parent 0 is the "no parent yet" sentinel a job's root span is
            // recorded under (`TraceCtx::for_job` hashes the root id from it).
            parent: (self.ctx.parent_span != 0).then_some(self.ctx.parent_span),
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
            devices,
            args,
        });
        id
    }

    /// Record a causal edge within this sink's trace.
    pub fn link(&self, from_span: u64, to_span: u64, kind: EdgeKind) {
        self.collector.edge(TraceEdge {
            trace_id: self.ctx.trace_id,
            from_span,
            to_span,
            kind,
        });
    }
}

/// A parsed (or snapshotted) trace log: all spans and causal edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// Every recorded span.
    pub spans: Vec<TraceSpan>,
    /// Every recorded causal edge.
    pub edges: Vec<TraceEdge>,
}

impl TraceLog {
    /// Sort spans/edges into canonical order (trace id, then start time,
    /// then span id) so serialized logs do not depend on worker-thread
    /// interleaving beyond the wall timestamps themselves.
    pub fn canonicalize(&mut self) {
        self.spans.sort_by(|a, b| {
            (a.trace_id, a.span_id)
                .cmp(&(b.trace_id, b.span_id))
                .then(a.start_us.partial_cmp(&b.start_us).expect("finite"))
        });
        self.spans.sort_by(|a, b| {
            a.trace_id.cmp(&b.trace_id).then(
                a.start_us
                    .partial_cmp(&b.start_us)
                    .expect("finite")
                    .then(a.span_id.cmp(&b.span_id)),
            )
        });
        self.edges
            .sort_by_key(|e| (e.trace_id, e.from_span, e.to_span));
    }

    /// The distinct trace ids present, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The root span (no parent) of `trace_id`, if present.
    pub fn root_of(&self, trace_id: u64) -> Option<&TraceSpan> {
        self.spans
            .iter()
            .find(|s| s.trace_id == trace_id && s.parent.is_none())
    }

    /// Direct children of `parent` within `trace_id`, in start order.
    pub fn children_of(&self, trace_id: u64, parent: u64) -> Vec<&TraceSpan> {
        let mut out: Vec<&TraceSpan> = self
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id && s.parent == Some(parent))
            .collect();
        out.sort_by(|a, b| {
            a.start_us
                .partial_cmp(&b.start_us)
                .expect("finite")
                .then(a.span_id.cmp(&b.span_id))
        });
        out
    }

    /// Serialize as trace JSONL (schema header + one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"schema\":\"{TRACE_SCHEMA}\"}}\n");
        for s in &self.spans {
            out.push_str("{\"span\":");
            out.push_str(&serde_json::to_string(s).expect("finite fields"));
            out.push_str("}\n");
        }
        for e in &self.edges {
            out.push_str("{\"edge\":");
            out.push_str(&serde_json::to_string(e).expect("finite fields"));
            out.push_str("}\n");
        }
        out
    }

    /// True when `text` looks like a trace JSONL log (schema header).
    pub fn sniff(text: &str) -> bool {
        text.lines()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.contains(TRACE_SCHEMA))
    }

    /// Parse a trace JSONL log. The schema header is required; malformed
    /// lines error with their line number.
    pub fn parse_jsonl(text: &str) -> Result<TraceLog, String> {
        let mut log = TraceLog::default();
        let mut saw_schema = false;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = serde_json::value_from_str(line)
                .map_err(|e| format!("trace line {}: {e}", i + 1))?;
            if let Some(schema) = v.get("schema").and_then(Value::as_str) {
                if schema != TRACE_SCHEMA {
                    return Err(format!("unsupported trace schema {schema:?}"));
                }
                saw_schema = true;
                continue;
            }
            if let Some(sv) = v.get("span") {
                log.spans.push(
                    TraceSpan::from_value(sv).map_err(|e| format!("trace line {}: {e}", i + 1))?,
                );
            } else if let Some(ev) = v.get("edge") {
                log.edges.push(
                    TraceEdge::from_value(ev).map_err(|e| format!("trace line {}: {e}", i + 1))?,
                );
            } else {
                return Err(format!("trace line {}: neither span nor edge", i + 1));
            }
        }
        if !saw_schema {
            return Err(format!("not a trace log (missing {TRACE_SCHEMA} header)"));
        }
        Ok(log)
    }

    /// Build the farm-wide merged Perfetto view: one process (track group)
    /// per trace id, category-grouped tracks within it, and flow arrows on
    /// the causal edges. Events are emitted per track in ascending `ts`.
    pub fn to_perfetto(&self) -> ChromeTraceBuilder {
        let mut b = ChromeTraceBuilder::new();
        let ids = self.trace_ids();
        // Metadata first: process per trace, named tracks.
        for (i, &tid) in ids.iter().enumerate() {
            let pid = i as u64 + 1;
            let label = self
                .root_of(tid)
                .map(|r| r.name.clone())
                .unwrap_or_else(|| format!("trace {tid:016x}"));
            b.process_name(pid, &format!("{label} [{tid:016x}]"));
            for (track, name) in TRACKS {
                b.thread_name(pid, *track, name);
            }
        }
        let mut flow_seq = 0u64;
        for (i, &tid) in ids.iter().enumerate() {
            let pid = i as u64 + 1;
            // Per track, in start order (the builder keeps emission order).
            for (track, _) in TRACKS {
                let mut spans: Vec<&TraceSpan> = self
                    .spans
                    .iter()
                    .filter(|s| s.trace_id == tid && track_of(&s.cat) == *track)
                    .collect();
                spans.sort_by(|a, b| {
                    a.start_us
                        .partial_cmp(&b.start_us)
                        .expect("finite")
                        .then(a.span_id.cmp(&b.span_id))
                });
                for s in spans {
                    b.complete(pid, *track, &s.name, &s.cat, s.start_us, s.dur_us);
                }
            }
            for e in self.edges.iter().filter(|e| e.trace_id == tid) {
                let (Some(from), Some(to)) =
                    (self.span_of(tid, e.from_span), self.span_of(tid, e.to_span))
                else {
                    continue;
                };
                flow_seq += 1;
                b.flow_start(
                    pid,
                    track_of(&from.cat),
                    e.kind.name(),
                    "causal",
                    flow_seq,
                    from.end_us(),
                );
                b.flow_end(
                    pid,
                    track_of(&to.cat),
                    e.kind.name(),
                    "causal",
                    flow_seq,
                    to.start_us,
                );
            }
        }
        b
    }

    fn span_of(&self, trace_id: u64, span_id: u64) -> Option<&TraceSpan> {
        self.spans
            .iter()
            .find(|s| s.trace_id == trace_id && s.span_id == span_id)
    }
}

/// Named Perfetto tracks within a trace's group.
const TRACKS: &[(u64, &str)] = &[
    (1, "lifecycle"),
    (2, "attempts"),
    (3, "frames (virtual clock)"),
    (4, "phases (virtual clock)"),
    (5, "kernels (virtual clock)"),
];

/// The track a span category renders on.
fn track_of(cat: &str) -> u64 {
    match cat {
        "job" | "queue" | "admission" | "retry" | "drain" => 1,
        "attempt" | "checkpoint" => 2,
        "frame" => 3,
        "phase" => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    pub(crate) fn sample_log() -> TraceLog {
        let collector = Arc::new(TraceCollector::new());
        let ctx = TraceCtx::for_job("job-a");
        let root_sink = TraceSink::new(
            collector.clone(),
            TraceCtx {
                trace_id: ctx.trace_id,
                parent_span: 0,
            },
            Instant::now(),
        );
        let root = root_sink.record("job:job-a", "job", 0.0, 1000.0);
        assert_eq!(root, ctx.parent_span, "root id matches TraceCtx::for_job");
        let sink = root_sink.under(root);
        let adm = sink.record("admission", "admission", 0.0, 5.0);
        let q = sink.record("queue", "queue", 5.0, 95.0);
        let a0 = sink.record("attempt0", "attempt", 100.0, 400.0);
        sink.link(q, a0, EdgeKind::QueueAdmit);
        let attempt = sink.under(a0);
        let ck = attempt.record("ckpt0", "checkpoint", 300.0, 20.0);
        let f0 = attempt.record_full(
            "frame0",
            "frame",
            0.0,
            50.0,
            vec![DeviceSlice {
                device: 0,
                rows: 120,
                busy_ms: 0.04,
            }],
            vec![TraceArg {
                k: "tau1_ms".into(),
                v: 0.03,
            }],
        );
        let frame = attempt.under(f0);
        frame.record("phase1", "phase", 0.0, 30.0);
        frame.record("kernels:fast", "kernel", 0.0, 40.0);
        let f1 = attempt.record("frame1", "frame", 50.0, 45.0);
        sink.link(f0, f1, EdgeKind::PipelineOverlap);
        let a1 = sink.record("attempt1", "attempt", 520.0, 480.0);
        sink.record("retry1", "retry", 500.0, 20.0);
        sink.link(ck, a1, EdgeKind::CheckpointResume);
        let _ = adm;
        collector.snapshot()
    }

    #[test]
    fn ids_are_deterministic_and_parent_scoped() {
        let ctx = TraceCtx::for_job("job-a");
        assert_eq!(ctx, TraceCtx::for_job("job-a"));
        assert_ne!(ctx.trace_id, TraceCtx::for_job("job-b").trace_id);
        let (a, actx) = ctx.child("attempt0");
        let (b, _) = ctx.child("attempt1");
        assert_ne!(a, b);
        // Same name under different parents must not collide — retried
        // attempts re-emit the same frame names.
        let (f_a, _) = actx.child("frame3");
        let (f_b, _) = TraceCtx {
            trace_id: ctx.trace_id,
            parent_span: b,
        }
        .child("frame3");
        assert_ne!(f_a, f_b);
    }

    #[test]
    fn jsonl_round_trips() {
        let log = sample_log();
        let text = log.to_jsonl();
        assert!(text.starts_with("{\"schema\":\"feves-trace/1\"}\n"));
        assert!(TraceLog::sniff(&text));
        assert!(!TraceLog::sniff("{\"frame\":0}\n"));
        let back = TraceLog::parse_jsonl(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = TraceLog::parse_jsonl("{\"schema\":\"feves-trace/1\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = TraceLog::parse_jsonl("{\"span\":{}}\n").unwrap_err();
        assert!(
            err.contains("not a trace log") || err.contains("line 1"),
            "{err}"
        );
        let err = TraceLog::parse_jsonl("{\"schema\":\"feves-trace/9\"}\n").unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn collector_finds_last_checkpoint() {
        let log = sample_log();
        let collector = TraceCollector::new();
        for s in &log.spans {
            collector.span(s.clone());
        }
        let tid = log.trace_ids()[0];
        let ck = collector.last_span_of(tid, "checkpoint").unwrap();
        let span = log.spans.iter().find(|s| s.span_id == ck).unwrap();
        assert_eq!(span.name, "ckpt0");
        assert_eq!(collector.last_span_of(tid, "nope"), None);
    }

    #[test]
    fn perfetto_view_has_tracks_and_flows() {
        let log = sample_log();
        let json = log.to_perfetto().to_json();
        let doc = serde_json::value_from_str(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"s"), "flow starts present");
        assert!(phases.contains(&"f"), "flow ends present");
        // Flow ends must carry the Perfetto binding point.
        for e in events {
            if e.get("ph").and_then(Value::as_str) == Some("f") {
                assert_eq!(e.get("bp").and_then(Value::as_str), Some("e"));
            }
        }
        // Per (pid, tid) track, X-event timestamps are monotonic.
        let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for e in events {
            if e.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let key = (
                e.get("pid").and_then(Value::as_u64).unwrap(),
                e.get("tid").and_then(Value::as_u64).unwrap(),
            );
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            if let Some(prev) = last.insert(key, ts) {
                assert!(ts >= prev, "track {key:?} ts not monotonic");
            }
        }
    }
}
