//! The bounded telemetry bus: lock-free event transport between recording
//! hot paths and a dedicated drain/export thread.
//!
//! Recorders publish fixed-size [`TelemetryEvent`]s into a vendored
//! crossbeam [`ArrayQueue`]; a drain thread owned by [`BusController`] pops
//! them in batches and applies them to each event's session registry (via
//! [`crate::scope::hub`]). The policy at a full queue is **drop-and-count**:
//! [`TelemetryBus::publish`] returns `false` immediately and the session
//! folds the loss into its `obs.dropped_events` counter — the encode loop is
//! never blocked by telemetry, no matter how slow the drain side is.
//!
//! The bus also meters itself: every 64th publish is wall-clock timed
//! (`obs.bus_enqueue_ns`), and each drain batch records its pop+apply cost
//! (`obs.bus_drain_us`). Those two distributions are what the
//! `obs_overhead` bench gate uses to prove the live path stays under the
//! paper's 2 ms/frame scheduling-overhead budget.

use crate::histogram::Histogram;
use crate::live;
use crate::recorder::Recorder;
use crate::scope::{hub, SessionScope};
use crate::Metric;
use crossbeam::queue::ArrayQueue;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which live per-device field a [`TelemetryEvent::Device`] sample updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceField {
    /// Compute-busy percentage of the last frame.
    BusyPct,
    /// Signed LP-prediction residual (%); a NaN value clears it (probe
    /// frames carry no prediction).
    ResidualPct,
    /// Blacklist flag (0.0 = healthy, anything else = blacklisted).
    Blacklisted,
}

/// One fixed-size telemetry event. `Copy`, no heap payload — the queue slot
/// is the entire allocation, and publishing is a couple of atomic ops.
#[derive(Clone, Copy, Debug)]
pub enum TelemetryEvent {
    /// Counter increment.
    Add {
        /// Originating session id.
        session: u64,
        /// Target counter.
        metric: Metric,
        /// Increment.
        delta: u64,
    },
    /// Gauge write (last wins).
    Gauge {
        /// Originating session id.
        session: u64,
        /// Target gauge.
        metric: Metric,
        /// New value.
        value: f64,
    },
    /// Histogram sample.
    Observe {
        /// Originating session id.
        session: u64,
        /// Target histogram.
        metric: Metric,
        /// Sample value.
        value: f64,
    },
    /// Completed wall-clock span.
    SpanEnd {
        /// Originating session id.
        session: u64,
        /// Span point name.
        name: &'static str,
        /// Duration in µs.
        dur_us: u64,
    },
    /// Live per-device field update.
    Device {
        /// Originating session id.
        session: u64,
        /// Device index.
        device: u32,
        /// Field being written.
        field: DeviceField,
        /// New value (encoding per [`DeviceField`]).
        value: f64,
    },
    /// One frame finished in this session.
    FrameDone {
        /// Originating session id.
        session: u64,
    },
}

impl TelemetryEvent {
    /// The session this event belongs to.
    pub fn session(&self) -> u64 {
        match *self {
            TelemetryEvent::Add { session, .. }
            | TelemetryEvent::Gauge { session, .. }
            | TelemetryEvent::Observe { session, .. }
            | TelemetryEvent::SpanEnd { session, .. }
            | TelemetryEvent::Device { session, .. }
            | TelemetryEvent::FrameDone { session } => session,
        }
    }
}

/// Summary of one of the bus's self-cost distributions.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfCost {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 99th percentile (bucket upper bound).
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

impl SelfCost {
    fn of(h: &Histogram) -> SelfCost {
        SelfCost {
            count: h.count(),
            mean: h.mean(),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// Point-in-time bus accounting, embedded in live snapshots.
#[derive(Clone, Copy, Debug)]
pub struct BusStats {
    /// Queue capacity (events).
    pub capacity: usize,
    /// Events currently queued (approximate under concurrency).
    pub depth: usize,
    /// Events accepted by `publish` since start.
    pub published: u64,
    /// Events rejected at a full queue since start.
    pub dropped: u64,
    /// Events popped and applied by the drain thread.
    pub drained: u64,
    /// Sampled enqueue cost (ns; every 64th publish is timed).
    pub enqueue_ns: SelfCost,
    /// Per-batch drain cost (µs; pop + apply of up to [`DRAIN_BATCH`]).
    pub drain_batch_us: SelfCost,
}

/// Max events one drain batch pops before re-checking the clock and the
/// stop flag.
pub const DRAIN_BATCH: usize = 1024;
/// Publish-sampling interval for enqueue self-timing (power of two).
const ENQUEUE_SAMPLE: u64 = 64;

/// The transport half of the pipeline: a bounded MPMC queue plus drop/drain
/// accounting. Shared between producers (session scopes) and the
/// [`BusController`] drain thread.
pub struct TelemetryBus {
    queue: ArrayQueue<TelemetryEvent>,
    publishes: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    drained: AtomicU64,
    enqueue_ns: Histogram,
    drain_batch_us: Histogram,
}

impl std::fmt::Debug for TelemetryBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryBus")
            .field("stats", &self.stats())
            .finish()
    }
}

impl TelemetryBus {
    /// A bus holding at most `capacity` in-flight events.
    pub fn new(capacity: usize) -> TelemetryBus {
        TelemetryBus {
            queue: ArrayQueue::new(capacity),
            publishes: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            enqueue_ns: Histogram::new(),
            drain_batch_us: Histogram::new(),
        }
    }

    /// Publish one event. Returns `false` — immediately, without blocking —
    /// when the queue is full; the caller is responsible for counting the
    /// drop against its session.
    pub fn publish(&self, ev: TelemetryEvent) -> bool {
        let n = self.publishes.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(ENQUEUE_SAMPLE) {
            return self.push_counted(ev);
        }
        // Sampled publish: time the push and feed the measurement back
        // through the bus itself as an ordinary Observe event (losing the
        // self-metering event at a full queue is fine — the local histogram
        // below already has the sample).
        let session = ev.session();
        let t0 = Instant::now();
        let ok = self.push_counted(ev);
        let ns = t0.elapsed().as_nanos() as f64;
        self.enqueue_ns.observe(ns);
        if ok {
            let _ = self.push_counted(TelemetryEvent::Observe {
                session,
                metric: Metric::ObsBusEnqueueNs,
                value: ns,
            });
        }
        ok
    }

    fn push_counted(&self, ev: TelemetryEvent) -> bool {
        match self.queue.push(ev) {
            Ok(()) => {
                self.published.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Pop one event (drain side).
    pub fn pop(&self) -> Option<TelemetryEvent> {
        self.queue.pop()
    }

    /// Events currently queued (approximate under concurrency).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> BusStats {
        BusStats {
            capacity: self.queue.capacity(),
            depth: self.queue.len(),
            published: self.published.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            enqueue_ns: SelfCost::of(&self.enqueue_ns),
            drain_batch_us: SelfCost::of(&self.drain_batch_us),
        }
    }
}

/// Periodic live-snapshot output written by the drain thread.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Snapshot destination (written atomically: temp + fsync + rename).
    pub path: PathBuf,
    /// Interval between snapshot writes.
    pub period: Duration,
}

/// Owns the drain thread: spawns it on [`BusController::start`], joins it
/// (after a final drain and final snapshot) on [`BusController::stop`] or
/// drop.
pub struct BusController {
    bus: Arc<TelemetryBus>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl BusController {
    /// Start a bus of `capacity` events plus its drain thread. With a
    /// [`LiveConfig`], the drain thread also writes a live snapshot every
    /// `period` (and a final one at stop).
    pub fn start(capacity: usize, live: Option<LiveConfig>) -> BusController {
        let bus = Arc::new(TelemetryBus::new(capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let bus = bus.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("feves-obs-drain".into())
                .spawn(move || drain_loop(&bus, &stop, live))
                .expect("spawn telemetry drain thread")
        };
        BusController {
            bus,
            stop,
            handle: Some(handle),
        }
    }

    /// The shared bus handle, for [`crate::SessionScope::attach_bus`].
    pub fn bus(&self) -> Arc<TelemetryBus> {
        self.bus.clone()
    }

    /// Signal the drain thread, wait for it to drain the queue, apply
    /// everything, write the final snapshot (if configured) and exit.
    /// Idempotent. After `stop` returns, session registries reflect every
    /// event that was ever accepted by the bus.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            // A telemetry thread that panicked must not take the encoder
            // down with it at shutdown.
            let _ = h.join();
        }
    }
}

impl Drop for BusController {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Apply one drained event to its session, with a one-entry lookup cache —
/// events arrive in long same-session runs, so this avoids a hub read-lock
/// per event.
fn apply_event(ev: TelemetryEvent, cache: &mut Option<SessionScope>) {
    let id = ev.session();
    if !matches!(cache, Some(s) if s.id() == id) {
        *cache = hub().lookup(id);
    }
    // A session whose every handle dropped with events still in flight:
    // nowhere to apply — discard.
    if let Some(scope) = cache.as_ref() {
        scope.inner().apply(ev);
        scope.metrics().add(Metric::ObsBusEvents, 1);
    }
}

fn drain_loop(bus: &TelemetryBus, stop: &AtomicBool, live: Option<LiveConfig>) {
    let started = Instant::now();
    let mut cache: Option<SessionScope> = None;
    let mut seq = 0u64;
    let mut last_write = Instant::now();
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let t0 = Instant::now();
        let mut n = 0u64;
        let mut batch_sessions: Vec<SessionScope> = Vec::new();
        while n < DRAIN_BATCH as u64 {
            match bus.pop() {
                Some(ev) => {
                    apply_event(ev, &mut cache);
                    if let Some(s) = &cache {
                        if !batch_sessions.iter().any(|b| b.id() == s.id()) {
                            batch_sessions.push(s.clone());
                        }
                    }
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            bus.drained.fetch_add(n, Ordering::Relaxed);
            let us = t0.elapsed().as_nanos() as f64 / 1_000.0;
            bus.drain_batch_us.observe(us);
            // Attribute the batch cost to every session it served.
            for s in &batch_sessions {
                s.metrics().observe(Metric::ObsBusDrainUs, us);
            }
        }
        let due = live
            .as_ref()
            .is_some_and(|cfg| last_write.elapsed() >= cfg.period);
        if due && !stopping {
            if let Some(cfg) = &live {
                seq += 1;
                let _ = live::write_live(&cfg.path, seq, started.elapsed(), Some(&bus.stats()));
                last_write = Instant::now();
            }
        }
        // A batch shorter than DRAIN_BATCH means the pop loop above hit an
        // empty queue — with producers quiesced (the stop contract) that is
        // a complete drain. Checking via a probing pop instead would discard
        // the popped event.
        if stopping && n < DRAIN_BATCH as u64 {
            // Queue fully drained after the stop signal: final snapshot,
            // then exit. (A racing publisher at this point is a programming
            // error — scopes must stop recording before the controller is
            // stopped — and at worst loses its tail events.)
            if let Some(cfg) = &live {
                seq += 1;
                let _ = live::write_live(&cfg.path, seq, started.elapsed(), Some(&bus.stats()));
            }
            return;
        }
        if n == 0 {
            // Idle: yield briefly instead of spinning. 200 µs keeps worst-
            // case drain latency far below any snapshot period.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_full_returns_false_and_counts() {
        let bus = TelemetryBus::new(4);
        let ev = TelemetryEvent::FrameDone { session: 999_001 };
        // Publishes 1..=4 fill the queue (publish #0 is sampled and emits an
        // extra self-metering event, so start from a non-sampled index by
        // pre-loading the counter).
        bus.publishes.store(1, Ordering::Relaxed);
        for _ in 0..4 {
            assert!(bus.publish(ev));
        }
        assert!(!bus.publish(ev), "full bus must reject, not block");
        let s = bus.stats();
        assert_eq!(s.published, 4);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.depth, 4);
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn sampled_publish_records_enqueue_cost() {
        let bus = TelemetryBus::new(16);
        // Publish #0 is sampled: times the push and enqueues one extra
        // Observe(ObsBusEnqueueNs) event.
        assert!(bus.publish(TelemetryEvent::FrameDone { session: 999_002 }));
        assert_eq!(bus.stats().enqueue_ns.count, 1);
        assert_eq!(bus.depth(), 2);
        let mut saw_self_meter = false;
        while let Some(ev) = bus.pop() {
            if let TelemetryEvent::Observe { metric, .. } = ev {
                assert_eq!(metric, Metric::ObsBusEnqueueNs);
                saw_self_meter = true;
            }
        }
        assert!(saw_self_meter);
    }

    #[test]
    fn controller_drains_into_session_registry() {
        let scope = hub().session("bus-drain-test");
        let mut ctl = BusController::start(1 << 12, None);
        assert!(scope.attach_bus(ctl.bus()));
        let rec = scope.recorder();
        for _ in 0..500 {
            rec.add(Metric::FramesEncoded, 1);
            rec.observe(Metric::FrameTauTotMs, 33.0);
        }
        rec.span_record("bus-span", 42);
        scope.frame_done();
        ctl.stop();
        let m = scope.metrics();
        assert_eq!(m.counter(Metric::FramesEncoded), 500);
        assert_eq!(m.histogram(Metric::FrameTauTotMs).count(), 500);
        assert_eq!(scope.frames(), 1);
        assert!(m.spans().iter().any(|s| s.name == "bus-span"));
        // Self-accounting: every applied event is counted, and the drain
        // cost histogram has samples.
        assert!(m.counter(Metric::ObsBusEvents) >= 1002);
        assert!(m.histogram(Metric::ObsBusDrainUs).count() >= 1);
        assert_eq!(scope.dropped_events(), 0);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let mut ctl = BusController::start(64, None);
        ctl.stop();
        ctl.stop();
        drop(ctl);
    }

    #[test]
    fn overflow_drops_are_counted_per_session() {
        // No drain thread: a raw bus fills up and every further record is
        // dropped-and-counted on the session.
        let scope = hub().session("bus-overflow-test");
        let bus = Arc::new(TelemetryBus::new(8));
        assert!(scope.attach_bus(bus.clone()));
        let rec = scope.recorder();
        for _ in 0..100 {
            rec.add(Metric::FramesEncoded, 1);
        }
        // Capacity 8 (one slot may hold a self-metering event): at least
        // 100 − 8 of the records were dropped-and-counted.
        assert!(scope.dropped_events() >= 92, "{}", scope.dropped_events());
        assert_eq!(bus.depth(), 8);
        // Nothing was applied yet (no drain thread).
        assert_eq!(scope.metrics().counter(Metric::FramesEncoded), 0);
        scope.sync_dropped();
        assert_eq!(
            scope.metrics().counter(Metric::ObsDroppedEvents),
            scope.dropped_events()
        );
    }
}
