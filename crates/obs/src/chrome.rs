//! Chrome trace-event (Perfetto-compatible) JSON builder.
//!
//! Emits the JSON object format of the Trace Event spec: a top-level
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` object containing
//! `"M"` (metadata) events naming lanes and `"X"` (complete) events for
//! tasks, with `ts`/`dur` in microseconds. The output loads directly in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! All values flow through the ordered [`serde::Value`] tree, so output is
//! byte-stable for identical inputs — the golden-test contract.

use serde::Value;

/// Builder for a Chrome trace-event JSON document.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<Value>,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl ChromeTraceBuilder {
    /// Empty trace.
    pub fn new() -> Self {
        ChromeTraceBuilder { events: Vec::new() }
    }

    /// Emit a `process_name` metadata event for `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(obj(vec![
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("name", Value::Str(name.to_string()))])),
        ]));
    }

    /// Emit a `thread_name` metadata event so the lane shows as `name` in
    /// the timeline UI.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(obj(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("args", obj(vec![("name", Value::Str(name.to_string()))])),
        ]));
    }

    /// Emit an `"X"` complete event: a task on lane (`pid`, `tid`) starting
    /// at `ts_us` microseconds and lasting `dur_us` microseconds.
    pub fn complete(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64, dur_us: f64) {
        self.events.push(obj(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str(cat.to_string())),
            ("ph", Value::Str("X".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("ts", Value::Float(ts_us)),
            ("dur", Value::Float(dur_us)),
        ]));
    }

    /// Emit an `"i"` instant event (thread scope) — used for the τ1/τ2/τtot
    /// synchronisation-point markers.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64) {
        self.events.push(obj(vec![
            ("name", Value::Str(name.to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("t".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("ts", Value::Float(ts_us)),
        ]));
    }

    /// Emit an `"s"` flow-start event: the tail of a causal arrow leaving
    /// lane (`pid`, `tid`) at `ts_us`. `id` pairs it with its flow end.
    pub fn flow_start(&mut self, pid: u64, tid: u64, name: &str, cat: &str, id: u64, ts_us: f64) {
        self.events.push(obj(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str(cat.to_string())),
            ("ph", Value::Str("s".to_string())),
            ("id", Value::UInt(id)),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("ts", Value::Float(ts_us)),
        ]));
    }

    /// Emit an `"f"` flow-end event: the head of the causal arrow `id`,
    /// landing on lane (`pid`, `tid`) at `ts_us`. Carries the Perfetto
    /// binding point `"bp":"e"` — without it the renderer binds the arrow
    /// to the *next* slice on the lane and draws an orphan dot instead.
    pub fn flow_end(&mut self, pid: u64, tid: u64, name: &str, cat: &str, id: u64, ts_us: f64) {
        self.events.push(obj(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str(cat.to_string())),
            ("ph", Value::Str("f".to_string())),
            ("bp", Value::Str("e".to_string())),
            ("id", Value::UInt(id)),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("ts", Value::Float(ts_us)),
        ]));
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the builder into the trace-document value tree.
    pub fn finish(self) -> Value {
        obj(vec![
            ("traceEvents", Value::Array(self.events)),
            ("displayTimeUnit", Value::Str("ms".to_string())),
        ])
    }

    /// Serialize to compact JSON.
    pub fn to_json(self) -> String {
        serde_json::to_string(&self.finish()).expect("value is a tree")
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json_pretty(self) -> String {
        serde_json::to_string_pretty(&self.finish()).expect("value is a tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTraceBuilder {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(0, "feves");
        b.thread_name(0, 1, "dev0");
        b.thread_name(0, 2, "dev1 h2d");
        b.complete(0, 1, "ME f3", "compute", 0.0, 1500.5);
        b.complete(0, 2, "h2d f3", "transfer", 100.0, 400.0);
        b.instant(0, 1, "tau1", 1500.5);
        b
    }

    #[test]
    fn flow_events_pair_up_and_end_binds_to_enclosing_slice() {
        let mut b = ChromeTraceBuilder::new();
        b.flow_start(1, 1, "queue_admit", "causal", 42, 10.0);
        b.flow_end(1, 2, "queue_admit", "causal", 42, 25.0);
        let doc = b.finish();
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("s"));
        assert_eq!(events[0].get("id").and_then(|v| v.as_u64()), Some(42));
        assert!(events[0].get("bp").is_none(), "bp is a flow-end field");
        assert_eq!(events[1].get("ph").and_then(|v| v.as_str()), Some("f"));
        assert_eq!(events[1].get("bp").and_then(|v| v.as_str()), Some("e"));
        assert_eq!(events[1].get("id").and_then(|v| v.as_u64()), Some(42));
    }

    #[test]
    fn builds_well_formed_trace_document() {
        let b = sample();
        assert_eq!(b.len(), 6);
        let doc = b.finish();
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 6);
        assert_eq!(
            doc.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ms")
        );
        // Metadata first two, then the complete events.
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("M"));
        assert_eq!(events[3].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(events[3].get("dur").and_then(|v| v.as_f64()), Some(1500.5));
        assert_eq!(events[5].get("ph").and_then(|v| v.as_str()), Some("i"));
    }

    #[test]
    fn json_is_byte_stable_and_parseable() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        let parsed = serde_json::value_from_str(&a).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        let json = b.to_json();
        assert!(serde_json::value_from_str(&json).is_ok());
    }
}
