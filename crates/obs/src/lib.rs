#![warn(missing_docs)]
//! Observability for the FEVES framework: a lightweight, near-zero-overhead
//! metrics and span-tracing layer threaded through the whole stack.
//!
//! - [`Metric`] — a small *static registry* of framework metrics (scheduling
//!   overhead, τ sync points, load imbalance, data-reuse volumes, LP
//!   iteration counts). Every metric is an enum variant, so recording is an
//!   array index + one atomic op — no string hashing on the hot path.
//! - [`Recorder`] — the sink trait. [`NoopRecorder`] (the default) compiles
//!   recording down to a single `enabled()` check; [`MemoryRecorder`]
//!   aggregates counters, gauges and fixed-bucket [`Histogram`]s in atomics.
//! - [`span!`] — RAII wall-clock span guards around the interesting code
//!   paths (Algorithm 2, the LP solve, the VCM graph build, the DAM
//!   transfer planner, `encode_frame`).
//! - Exporters — JSONL event lines ([`MemoryRecorder::to_jsonl`]), a human
//!   `feves stats` summary table ([`MemoryRecorder::render_stats`]), and a
//!   Chrome-trace-event builder ([`ChromeTraceBuilder`]) whose output loads
//!   directly in Perfetto / `chrome://tracing`.
//!
//! Metrics derived from the *virtual* clock (τ times, byte volumes, LP
//! iterations) are deterministic for a fixed configuration; wall-clock
//! metrics (spans, `sched.overhead_us`) are flagged in the registry so
//! deterministic exports (golden tests) can exclude them.
//!
//! ```
//! use feves_obs::{Metric, MemoryRecorder, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(MemoryRecorder::new());
//! rec.observe(Metric::FrameTauTotMs, 33.1);
//! rec.add(Metric::DamBytesTransferred, 4096);
//! {
//!     let _guard = feves_obs::span!(rec.clone(), "demo");
//! }
//! assert_eq!(rec.counter(Metric::DamBytesTransferred), 4096);
//! assert!(rec.histogram(Metric::FrameTauTotMs).count() == 1);
//! ```

pub mod audit;
pub mod bus;
mod chrome;
pub mod compare;
pub mod critical;
pub mod flight;
mod histogram;
pub mod live;
pub mod persist;
mod recorder;
pub mod report;
pub mod scope;
pub mod trace;

pub use audit::{imbalance_index, residual_pct, AuditSummary, DeviceAudit};
pub use bus::{BusController, BusStats, DeviceField, LiveConfig, TelemetryBus, TelemetryEvent};
pub use chrome::ChromeTraceBuilder;
pub use compare::{compare_reports, compare_reports_metric, CompareOutcome, MetricDelta};
pub use critical::{validate_dag, Bucket, CriticalReport, JobCritical, WhatIf};
pub use flight::{
    parse_jsonl as parse_flight_jsonl, parse_jsonl_with_markers as parse_flight_jsonl_with_markers,
    DeviceRecord, FlightRecord, FlightRecorder, TauTriple,
};
pub use histogram::Histogram;
pub use live::{build_snapshot, LiveSnapshot};
pub use persist::{sweep_orphans, write_atomic};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder, Span, SpanStat};
pub use report::render_html;
pub use scope::{hub, DeviceLive, RetiredSession, SessionScope, TelemetryHub};
pub use trace::{EdgeKind, TraceCollector, TraceCtx, TraceEdge, TraceLog, TraceSink, TraceSpan};

use std::sync::Arc;

/// How a metric aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum of integer deltas.
    Counter,
    /// Last written value wins.
    Gauge,
    /// Value distribution with percentile queries.
    Histogram,
}

/// Static description of one registry entry.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Dotted metric name, e.g. `"frame.tau_tot_ms"`.
    pub name: &'static str,
    /// Unit suffix for display (`"ms"`, `"bytes"`, …).
    pub unit: &'static str,
    /// Aggregation kind.
    pub kind: MetricKind,
    /// True when the value depends on host wall-clock time (excluded from
    /// deterministic exports used by golden tests).
    pub wall_clock: bool,
}

/// The framework's metric registry. Indexes into [`REGISTRY`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Wall-clock load-balancer runtime per inter-frame (µs) — the paper's
    /// "< 2 ms scheduling overhead" claim.
    SchedOverheadUs,
    /// Simulated τ1 sync point per inter-frame (ms).
    FrameTau1Ms,
    /// Simulated τ2 sync point per inter-frame (ms).
    FrameTau2Ms,
    /// Simulated τtot (frame encoding time) per inter-frame (ms).
    FrameTauTotMs,
    /// Per-frame compute-lane busy-time imbalance, `(max−min)/max·100`.
    LbImbalancePct,
    /// Simplex iterations per Algorithm 2 LP solve.
    LpIterations,
    /// Bytes *not* transferred thanks to the Δ/σ data-reuse machinery.
    DamBytesReused,
    /// Bytes moved over PCIe per the DAM transfer plans.
    DamBytesTransferred,
    /// Tasks (kernels + transfers + barriers) scheduled by the VCM.
    VcmTasksScheduled,
    /// Frames encoded (intra + inter).
    FramesEncoded,
    /// Device faults injected by the fault schedule.
    FtFaultsInjected,
    /// Device faults detected (missed deadlines, transfer errors, stripe
    /// panics).
    FtFaultsDetected,
    /// Detected faults the framework recovered from (re-dispatch completed).
    FtFaultsRecovered,
    /// Algorithm-2 re-solves on a reduced platform after a fault.
    FtResolves,
    /// MB rows re-dispatched from faulty devices to survivors.
    FtRedispatchedRows,
    /// Virtual time lost to fault detection + re-dispatch per affected
    /// frame (ms).
    FtRecoveryMs,
    /// Active hot-kernel implementation (0 = scalar, 1 = fast SWAR), per
    /// `FEVES_KERNELS` / `feves_codec::kernels::active_kind`.
    KernelDispatch,
    /// Drift-detector firings: a device's prediction residual stayed outside
    /// the configured band for K consecutive frames (triggers
    /// re-characterization).
    SchedDrift,
    /// Deadline misses attributed to a device the drift detector had
    /// *already* flagged — likely model drift, not a hard fault.
    FtDriftVsFault,
    /// Absolute LP-prediction residual per device per frame,
    /// `|measured − predicted| / predicted · 100`.
    AuditResidualAbsPct,
    /// Per-frame load-imbalance index, `max/mean` compute-lane busy time
    /// (the Fig 6 quantity; 1.0 = perfectly balanced).
    LbImbalanceIndex,
    /// Checkpoints durably committed (temp + fsync + rename completed).
    CkptWrites,
    /// Total checkpoint bytes written across all generations.
    CkptBytes,
    /// Wall-clock time spent snapshotting + writing one checkpoint (ms).
    CkptWriteMs,
    /// Telemetry-bus events drained and applied to this session's registry.
    ObsBusEvents,
    /// Telemetry events dropped at a full bus (the drop-and-count policy:
    /// the encode loop is never blocked; losses are made visible here).
    ObsDroppedEvents,
    /// Sampled cost of one bus enqueue (every 64th publish is timed) —
    /// the bus metering its own hot-path overhead.
    ObsBusEnqueueNs,
    /// Wall-clock cost of one drain batch (pop + apply, up to 1024 events).
    ObsBusDrainUs,
    /// Jobs waiting in the farm admission queue (sampled at every farm
    /// state change).
    FarmQueueDepth,
    /// Jobs rejected at admission because the queue crossed its
    /// high-watermark (`QueueFull`).
    FarmAdmissionRejects,
    /// Session retries launched by the farm supervisor (after a panic or
    /// device fault, resuming from the last durable checkpoint).
    FarmRetries,
    /// Jobs that completed successfully (bitstream fully written).
    FarmJobsCompleted,
    /// Jobs that exhausted their retry budget or failed fatally.
    FarmJobsFailed,
    /// Wall-clock time from drain request to farm exit (ms).
    FarmDrainMs,
    /// Per-frame critical-path time shaved by inter-frame pipelining (µs):
    /// the span of frame N+1's phase-1 prefix that ran inside frame N's
    /// per-device τ-sync stalls.
    PipelineOverlapUs,
    /// Per-frame total device stall recovered by the pipeline (µs), summed
    /// across devices (each device's recovered span ≤ its carried stall).
    PipelineStallRecoveredUs,
    /// Causal-trace spans recorded (job/queue/attempt/frame/kernel spans
    /// flowing into the farm's `TraceCollector`).
    TraceSpans,
    /// Causal-trace edges recorded (queue→admit, checkpoint→resume,
    /// pipeline-overlap links).
    TraceEdges,
    /// Transient-I/O retries spent by durable writers (checkpoints,
    /// `write_atomic`, spool/done control files).
    IoRetries,
    /// Writes that failed with ENOSPC (disk full) — the farm's
    /// disk-pressure trigger.
    IoEnospcEvents,
    /// Corrupt control files / artifacts rejected by CRC or structural
    /// validation (quarantined, never trusted).
    IoCorruptRejected,
    /// Farm disk-pressure state (1 = admission paused at the free-space low
    /// watermark, 0 = healthy).
    FarmDiskPressure,
}

/// Definitions for every [`Metric`], in `Metric` discriminant order.
pub static REGISTRY: [MetricDef; 42] = [
    MetricDef {
        name: "sched.overhead_us",
        unit: "us",
        kind: MetricKind::Histogram,
        wall_clock: true,
    },
    MetricDef {
        name: "frame.tau1_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "frame.tau2_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "frame.tau_tot_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "lb.imbalance_pct",
        unit: "%",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "lp.iterations",
        unit: "iters",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "dam.bytes_reused",
        unit: "bytes",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "dam.bytes_transferred",
        unit: "bytes",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "vcm.tasks_scheduled",
        unit: "tasks",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "frames.encoded",
        unit: "frames",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.faults_injected",
        unit: "faults",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.faults_detected",
        unit: "faults",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.faults_recovered",
        unit: "faults",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.resolves",
        unit: "solves",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.redispatched_rows",
        unit: "rows",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.recovery_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "kernel.dispatch",
        unit: "impl",
        kind: MetricKind::Gauge,
        wall_clock: false,
    },
    MetricDef {
        name: "sched.drift",
        unit: "events",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ft.drift_vs_fault",
        unit: "faults",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "audit.residual_abs_pct",
        unit: "%",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "lb.imbalance_index",
        unit: "ratio",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "ckpt.writes",
        unit: "ckpts",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ckpt.bytes_written",
        unit: "bytes",
        kind: MetricKind::Counter,
        wall_clock: false,
    },
    MetricDef {
        name: "ckpt.write_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: true,
    },
    // The obs.* bus metrics are all flagged wall_clock: how many events a
    // drain batch catches — and whether any are dropped — depends on host
    // scheduling, so none of them belong in a deterministic export.
    MetricDef {
        name: "obs.bus_events",
        unit: "events",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "obs.dropped_events",
        unit: "events",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "obs.bus_enqueue_ns",
        unit: "ns",
        kind: MetricKind::Histogram,
        wall_clock: true,
    },
    MetricDef {
        name: "obs.bus_drain_us",
        unit: "us",
        kind: MetricKind::Histogram,
        wall_clock: true,
    },
    // The farm.* metrics describe the `feves serve` supervisor. All are
    // wall_clock: queue depth and retry counts depend on job arrival order
    // and host scheduling, never on the virtual encode clock.
    MetricDef {
        name: "farm.queue_depth",
        unit: "jobs",
        kind: MetricKind::Gauge,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.admission_rejects",
        unit: "jobs",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.retries",
        unit: "retries",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.jobs_completed",
        unit: "jobs",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.jobs_failed",
        unit: "jobs",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.drain_ms",
        unit: "ms",
        kind: MetricKind::Histogram,
        wall_clock: true,
    },
    // The pipeline.* metrics are virtual-clock quantities (derived from the
    // simulated schedule), so they stay in deterministic exports.
    MetricDef {
        name: "pipeline.overlap_us",
        unit: "us",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    MetricDef {
        name: "pipeline.stall_recovered_us",
        unit: "us",
        kind: MetricKind::Histogram,
        wall_clock: false,
    },
    // The trace.* counters are wall_clock: farm-level span counts depend on
    // retry/drain timing (how many checkpoints and attempts a run needed),
    // so they surface in live snapshots but stay out of deterministic
    // exports — trace *logs* are schema-golden-tested instead.
    MetricDef {
        name: "trace.spans",
        unit: "spans",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "trace.edges",
        unit: "edges",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    // The io.* counters and the disk-pressure gauge are wall_clock: fault
    // schedules and free-space probes depend on host state, so they surface
    // in live snapshots but stay out of deterministic exports.
    MetricDef {
        name: "io.retries",
        unit: "retries",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "io.enospc_events",
        unit: "events",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "io.corrupt_rejected",
        unit: "files",
        kind: MetricKind::Counter,
        wall_clock: true,
    },
    MetricDef {
        name: "farm.disk_pressure",
        unit: "state",
        kind: MetricKind::Gauge,
        wall_clock: true,
    },
];

impl Metric {
    /// All metrics, in registry order.
    pub const ALL: [Metric; 42] = [
        Metric::SchedOverheadUs,
        Metric::FrameTau1Ms,
        Metric::FrameTau2Ms,
        Metric::FrameTauTotMs,
        Metric::LbImbalancePct,
        Metric::LpIterations,
        Metric::DamBytesReused,
        Metric::DamBytesTransferred,
        Metric::VcmTasksScheduled,
        Metric::FramesEncoded,
        Metric::FtFaultsInjected,
        Metric::FtFaultsDetected,
        Metric::FtFaultsRecovered,
        Metric::FtResolves,
        Metric::FtRedispatchedRows,
        Metric::FtRecoveryMs,
        Metric::KernelDispatch,
        Metric::SchedDrift,
        Metric::FtDriftVsFault,
        Metric::AuditResidualAbsPct,
        Metric::LbImbalanceIndex,
        Metric::CkptWrites,
        Metric::CkptBytes,
        Metric::CkptWriteMs,
        Metric::ObsBusEvents,
        Metric::ObsDroppedEvents,
        Metric::ObsBusEnqueueNs,
        Metric::ObsBusDrainUs,
        Metric::FarmQueueDepth,
        Metric::FarmAdmissionRejects,
        Metric::FarmRetries,
        Metric::FarmJobsCompleted,
        Metric::FarmJobsFailed,
        Metric::FarmDrainMs,
        Metric::PipelineOverlapUs,
        Metric::PipelineStallRecoveredUs,
        Metric::TraceSpans,
        Metric::TraceEdges,
        Metric::IoRetries,
        Metric::IoEnospcEvents,
        Metric::IoCorruptRejected,
        Metric::FarmDiskPressure,
    ];

    /// Registry index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Static definition.
    #[inline]
    pub fn def(self) -> &'static MetricDef {
        &REGISTRY[self.index()]
    }

    /// Dotted name.
    #[inline]
    pub fn name(self) -> &'static str {
        self.def().name
    }
}

/// Install `rec` as the *default-scope* recorder used by free functions
/// (Algorithm 2, the LP solve, the DAM planner) and by encoders that were
/// not given an explicit recorder or [`SessionScope`].
///
/// This is a thin shim over [`scope::TelemetryHub::default_scope`]: the
/// process keeps exactly one anonymous default session, and `install` swaps
/// its sink. Multi-session callers should create named scopes via
/// [`hub()`]`.session(..)` instead — per-session metrics never flow through
/// the default scope.
pub fn install(rec: Arc<dyn Recorder>) {
    scope::hub().default_scope().set_recorder(rec);
}

/// The default-scope recorder (a [`NoopRecorder`] until [`install`]).
pub fn global() -> Arc<dyn Recorder> {
    scope::hub().default_scope().recorder()
}

/// Exact percentile by the nearest-rank method over `values` (reordered in
/// place). `p` in `[0, 100]`. NaN samples are ignored; returns `f64::NAN`
/// when no finite-comparable sample remains (empty or all-NaN input).
pub fn percentile_exact(values: &mut [f64], p: f64) -> f64 {
    // Partition NaNs to the tail, then rank only over the real prefix.
    let mut n = values.len();
    let mut i = 0;
    while i < n {
        if values[i].is_nan() {
            n -= 1;
            values.swap(i, n);
        } else {
            i += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    values[..n].sort_by(|a, b| a.partial_cmp(b).expect("NaNs were partitioned out"));
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    values[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_enum_order() {
        for m in Metric::ALL {
            assert_eq!(REGISTRY[m.index()].name, m.name());
        }
        assert_eq!(Metric::SchedOverheadUs.name(), "sched.overhead_us");
        assert_eq!(Metric::LpIterations.name(), "lp.iterations");
        assert!(Metric::SchedOverheadUs.def().wall_clock);
        assert!(!Metric::FrameTauTotMs.def().wall_clock);
    }

    #[test]
    fn global_defaults_to_noop_and_swaps() {
        // Runs in-process with other tests: only check the install path by
        // swapping a memory recorder in and back out.
        let mem = Arc::new(MemoryRecorder::new());
        install(mem.clone());
        global().add(Metric::FramesEncoded, 2);
        assert_eq!(mem.counter(Metric::FramesEncoded), 2);
        install(Arc::new(NoopRecorder));
        assert!(!global().enabled());
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_exact(&mut v, 50.0), 2.0);
        assert_eq!(percentile_exact(&mut v, 75.0), 3.0);
        assert_eq!(percentile_exact(&mut v, 100.0), 4.0);
        assert_eq!(percentile_exact(&mut v, 0.0), 1.0);
        let mut one = vec![7.5];
        assert_eq!(percentile_exact(&mut one, 99.0), 7.5);
    }

    #[test]
    fn percentile_empty_and_nan_inputs() {
        assert!(percentile_exact(&mut [], 50.0).is_nan());
        let mut all_nan = vec![f64::NAN, f64::NAN];
        assert!(percentile_exact(&mut all_nan, 50.0).is_nan());
        // NaNs are ignored, not counted toward the rank.
        let mut mixed = vec![f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile_exact(&mut mixed, 50.0), 2.0);
        assert_eq!(percentile_exact(&mut mixed, 100.0), 3.0);
        assert_eq!(percentile_exact(&mut mixed, 0.0), 1.0);
        // A single finite value among NaNs is every percentile.
        let mut lone = vec![f64::NAN, 5.0];
        assert_eq!(percentile_exact(&mut lone, 1.0), 5.0);
        assert_eq!(percentile_exact(&mut lone, 99.0), 5.0);
    }
}
