//! Lock-free fixed-bucket logarithmic histogram.
//!
//! 256 buckets: bucket 0 collects zero and underflow (`v < 2^MIN_EXP`);
//! bucket `i ≥ 1` covers the half-open interval
//! `[2^(MIN_EXP + (i−1)/SUB), 2^(MIN_EXP + i/SUB))` — [`SUB`] sub-buckets
//! per octave, so every bucket is ≤ 2^(1/8) ≈ 9 % wide. Percentile queries
//! return the *upper bound* of the rank's bucket, which makes the math
//! exactly unit-testable at bucket boundaries. Values past the top bucket
//! clamp into it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in the histogram (1 underflow + 255 log buckets).
pub const BUCKETS: usize = 256;
/// Sub-buckets per octave (power of two).
const SUB: i32 = 8;
/// Exponent of the smallest resolvable value: `2^MIN_EXP = 1/256`.
const MIN_EXP: i32 = -8;

/// A concurrent histogram of non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of samples, stored as `f64` bits, CAS-updated.
    sum_bits: AtomicU64,
    /// Maximum sample, stored as `f64` bits, CAS-updated.
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Bucket index for `v` (negative/NaN values count as underflow).
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v < 2f64.powi(MIN_EXP) {
            return 0;
        }
        let idx = ((v.log2() - MIN_EXP as f64) * SUB as f64).floor() as isize + 1;
        idx.clamp(1, BUCKETS as isize - 1) as usize
    }

    /// Upper bound of bucket `i` (0.0 for the underflow bucket — its samples
    /// are indistinguishable from zero at this resolution).
    pub fn bucket_upper(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            2f64.powf(MIN_EXP as f64 + i as f64 / SUB as f64)
        }
    }

    /// Record one sample.
    pub fn observe(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + add).to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                if add > f64::from_bits(bits) {
                    Some(add.to_bits())
                } else {
                    None
                }
            });
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact maximum sample seen (0.0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Fold every sample of `other` into `self` (bucket-wise), so per-device
    /// histograms can be combined into a fleet-level one. Count, sum and max
    /// aggregate exactly; `other` is left untouched. Concurrent `observe`s on
    /// either side are not lost, though a racing reader may briefly see a
    /// partially merged state.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let add = theirs.load(Ordering::Relaxed);
            if add != 0 {
                mine.fetch_add(add, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add_sum = other.sum();
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + add_sum).to_bits())
            });
        let their_max = other.max();
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                if their_max > f64::from_bits(bits) {
                    Some(their_max.to_bits())
                } else {
                    None
                }
            });
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the upper
    /// bound of the bucket containing that rank. 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        let min = 2f64.powi(MIN_EXP);
        // Below the smallest resolvable value → underflow bucket.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(min * 0.999), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // Exactly 2^MIN_EXP starts bucket 1.
        assert_eq!(Histogram::bucket_index(min), 1);
        // One octave spans SUB buckets: 2·min starts bucket SUB+1.
        assert_eq!(Histogram::bucket_index(2.0 * min), 1 + SUB as usize);
        // 1.0 is MIN_EXP octaves up.
        assert_eq!(Histogram::bucket_index(1.0), 1 + (-MIN_EXP * SUB) as usize);
        // Upper bound of a value's bucket is > the value; lower edge equals
        // the previous bucket's upper bound.
        for v in [0.004, 0.03, 1.0, 7.3, 1000.0] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_upper(i) > v * 0.999_999);
            assert!(Histogram::bucket_upper(i - 1) <= v);
        }
        // Huge values clamp into the top bucket.
        assert_eq!(Histogram::bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn bucket_width_is_tight() {
        // Relative bucket width is 2^(1/SUB) everywhere above underflow.
        for i in 2..BUCKETS {
            let ratio = Histogram::bucket_upper(i) / Histogram::bucket_upper(i - 1);
            assert!((ratio - 2f64.powf(1.0 / SUB as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn percentiles_return_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(10.0);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        assert_eq!(h.count(), 100);
        let b10 = Histogram::bucket_upper(Histogram::bucket_index(10.0));
        let b100 = Histogram::bucket_upper(Histogram::bucket_index(100.0));
        assert_eq!(h.percentile(50.0), b10);
        assert_eq!(h.percentile(90.0), b10);
        // Rank 91 falls into the 100.0 bucket.
        assert_eq!(h.percentile(91.0), b100);
        assert_eq!(h.percentile(99.0), b100);
        assert_eq!(h.percentile(100.0), b100);
        // The bound is within the bucket's 2^(1/8) relative error.
        assert!(b10 > 10.0 && b10 < 10.0 * 2f64.powf(1.0 / SUB as f64));
    }

    #[test]
    fn mean_max_sum_are_exact() {
        let h = Histogram::new();
        h.observe(1.0);
        h.observe(2.0);
        h.observe(9.0);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.max(), 9.0);
        let empty = Histogram::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.percentile(50.0), 0.0);
    }

    #[test]
    fn zeroes_land_in_underflow_and_report_zero() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.observe(0.0);
        }
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn merge_combines_counts_sums_and_percentiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..90 {
            a.observe(10.0);
        }
        for _ in 0..10 {
            b.observe(100.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.sum(), 90.0 * 10.0 + 10.0 * 100.0);
        assert_eq!(a.max(), 100.0);
        // Percentiles reflect the combined distribution.
        let b10 = Histogram::bucket_upper(Histogram::bucket_index(10.0));
        let b100 = Histogram::bucket_upper(Histogram::bucket_index(100.0));
        assert_eq!(a.percentile(50.0), b10);
        assert_eq!(a.percentile(99.0), b100);
        // The source is untouched.
        assert_eq!(b.count(), 10);
        assert_eq!(b.max(), 100.0);
        // Merging an empty histogram is a no-op.
        let before = (a.count(), a.sum(), a.max());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.sum(), a.max()), before);
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 / 7.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let bucket_total: u64 = (0..BUCKETS)
            .map(|i| h.buckets[i].load(Ordering::Relaxed))
            .sum();
        assert_eq!(bucket_total, 4000);
    }
}
