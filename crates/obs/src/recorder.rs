//! Recorder sinks and RAII span guards.

use crate::histogram::Histogram;
use crate::{Metric, MetricKind, REGISTRY};
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const N: usize = REGISTRY.len();
/// Sentinel bits marking a gauge that was never written (NaN payload no
/// real sample produces).
const GAUGE_UNSET: u64 = u64::MAX;

/// A metrics/span sink. Implementations must be cheap and thread-safe —
/// recording happens on the per-frame scheduling path.
pub trait Recorder: Send + Sync {
    /// False when recording is compiled down to nothing ([`NoopRecorder`]);
    /// callers may skip expensive metric derivation when disabled.
    fn enabled(&self) -> bool;

    /// Increment counter `m` by `delta`.
    fn add(&self, m: Metric, delta: u64);

    /// Set gauge `m` to `value` (last write wins).
    fn gauge(&self, m: Metric, value: f64);

    /// Record one histogram sample for `m`.
    fn observe(&self, m: Metric, value: f64);

    /// Record a completed wall-clock span of `dur_us` microseconds.
    fn span_record(&self, name: &'static str, dur_us: u64);
}

/// The default sink: drops everything. `enabled()` returns false so
/// instrumented code can skip metric derivation entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn add(&self, _m: Metric, _delta: u64) {}
    #[inline]
    fn gauge(&self, _m: Metric, _value: f64) {}
    #[inline]
    fn observe(&self, _m: Metric, _value: f64) {}
    #[inline]
    fn span_record(&self, _name: &'static str, _dur_us: u64) {}
}

/// Aggregate statistics of one named span point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (e.g. `"algorithm2"`).
    pub name: &'static str,
    /// Completed spans.
    pub count: u64,
    /// Summed duration in µs.
    pub total_us: u64,
    /// Longest single span in µs.
    pub max_us: u64,
}

/// In-memory aggregating recorder: atomic counters and gauges, lock-free
/// [`Histogram`]s, and per-name span aggregates.
#[derive(Debug)]
pub struct MemoryRecorder {
    counters: [AtomicU64; N],
    /// f64 bits; [`GAUGE_UNSET`] until first write.
    gauges: [AtomicU64; N],
    histograms: [Histogram; N],
    /// Ordered by first use; span points are few and low-rate, so a mutex
    /// is fine here.
    spans: Mutex<Vec<SpanStat>>,
}

// Derived `Default` stops at 32-element arrays (and would zero the gauges
// instead of marking them unset), so delegate to `new`.
impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        MemoryRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(GAUGE_UNSET)),
            histograms: std::array::from_fn(|_| Histogram::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Current value of counter `m`.
    pub fn counter(&self, m: Metric) -> u64 {
        self.counters[m.index()].load(Ordering::Relaxed)
    }

    /// Last written gauge value, if any.
    pub fn gauge_value(&self, m: Metric) -> Option<f64> {
        match self.gauges[m.index()].load(Ordering::Relaxed) {
            GAUGE_UNSET => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Histogram for `m`.
    pub fn histogram(&self, m: Metric) -> &Histogram {
        &self.histograms[m.index()]
    }

    /// Span aggregates, sorted by name.
    pub fn spans(&self) -> Vec<SpanStat> {
        // Recover from poisoning: a panicking exporter thread must not take
        // span accounting (or the encoder) down with it.
        let mut v = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        v.sort_by_key(|s| s.name);
        v
    }

    fn metric_line(&self, m: Metric) -> Value {
        let def = m.def();
        let mut fields = vec![
            (
                "type".to_string(),
                Value::Str(
                    match def.kind {
                        MetricKind::Counter => "counter",
                        MetricKind::Gauge => "gauge",
                        MetricKind::Histogram => "histogram",
                    }
                    .to_string(),
                ),
            ),
            ("metric".to_string(), Value::Str(def.name.to_string())),
            ("unit".to_string(), Value::Str(def.unit.to_string())),
        ];
        match def.kind {
            MetricKind::Counter => {
                fields.push(("value".to_string(), Value::UInt(self.counter(m))));
            }
            MetricKind::Gauge => {
                let v = self.gauge_value(m).map(Value::Float).unwrap_or(Value::Null);
                fields.push(("value".to_string(), v));
            }
            MetricKind::Histogram => {
                let h = self.histogram(m);
                fields.push(("count".to_string(), Value::UInt(h.count())));
                fields.push(("mean".to_string(), Value::Float(h.mean())));
                fields.push(("p50".to_string(), Value::Float(h.percentile(50.0))));
                fields.push(("p95".to_string(), Value::Float(h.percentile(95.0))));
                fields.push(("p99".to_string(), Value::Float(h.percentile(99.0))));
                fields.push(("max".to_string(), Value::Float(h.max())));
            }
        }
        Value::Object(fields)
    }

    /// Export everything as JSONL (one JSON object per line, registry order,
    /// spans last). With `deterministic_only`, wall-clock entries — flagged
    /// metrics and all spans — are excluded, making the output byte-stable
    /// for a fixed configuration (the golden-test contract).
    pub fn to_jsonl(&self, deterministic_only: bool) -> String {
        let mut out = String::new();
        for m in Metric::ALL {
            if deterministic_only && m.def().wall_clock {
                continue;
            }
            out.push_str(&serde_json::to_string(&self.metric_line(m)).expect("value is a tree"));
            out.push('\n');
        }
        if !deterministic_only {
            for s in self.spans() {
                let v = Value::Object(vec![
                    ("type".to_string(), Value::Str("span".to_string())),
                    ("name".to_string(), Value::Str(s.name.to_string())),
                    ("count".to_string(), Value::UInt(s.count)),
                    ("total_us".to_string(), Value::UInt(s.total_us)),
                    ("max_us".to_string(), Value::UInt(s.max_us)),
                ]);
                out.push_str(&serde_json::to_string(&v).expect("value is a tree"));
                out.push('\n');
            }
        }
        out
    }

    /// Human-readable summary table (the `feves stats` view).
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}  unit\n",
            "metric", "count", "mean", "p50", "p95", "p99", "max/value"
        ));
        for m in Metric::ALL {
            let def = m.def();
            match def.kind {
                MetricKind::Counter => {
                    out.push_str(&format!(
                        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}  {}\n",
                        def.name,
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        self.counter(m),
                        def.unit
                    ));
                }
                MetricKind::Gauge => {
                    let v = self
                        .gauge_value(m)
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into());
                    out.push_str(&format!(
                        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}  {}\n",
                        def.name, "-", "-", "-", "-", "-", v, def.unit
                    ));
                }
                MetricKind::Histogram => {
                    let h = self.histogram(m);
                    out.push_str(&format!(
                        "{:<24} {:>10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.2}  {}\n",
                        def.name,
                        h.count(),
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                        h.max(),
                        def.unit
                    ));
                }
            }
        }
        let spans = self.spans();
        if !spans.is_empty() {
            out.push_str("\nspans (wall-clock):\n");
            for s in spans {
                let mean = s.total_us.checked_div(s.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {:<22} count {:>7}  total {:>10} µs  mean {:>8} µs  max {:>8} µs\n",
                    s.name, s.count, s.total_us, mean, s.max_us
                ));
            }
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, m: Metric, delta: u64) {
        self.counters[m.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, m: Metric, value: f64) {
        self.gauges[m.index()].store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, m: Metric, value: f64) {
        self.histograms[m.index()].observe(value);
    }

    fn span_record(&self, name: &'static str, dur_us: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        match spans.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.count += 1;
                s.total_us += dur_us;
                s.max_us = s.max_us.max(dur_us);
            }
            None => spans.push(SpanStat {
                name,
                count: 1,
                total_us: dur_us,
                max_us: dur_us,
            }),
        }
    }
}

/// RAII wall-clock span: reports its duration to the recorder on drop.
/// Construct via [`crate::span!`] or [`Span::enter`]; against a disabled
/// recorder the guard holds nothing and drop is free.
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
pub struct Span {
    rec: Option<Arc<dyn Recorder>>,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Start a span on `rec` (accepts any `Arc<impl Recorder>` by unsized
    /// coercion).
    pub fn enter(rec: Arc<dyn Recorder>, name: &'static str) -> Span {
        let rec = if rec.enabled() { Some(rec) } else { None };
        Span {
            rec,
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = &self.rec {
            rec.span_record(self.name, self.start.elapsed().as_micros() as u64);
        }
    }
}

/// Open an RAII span on a recorder: `let _g = span!(rec, "algorithm2");`.
/// `rec` is any `Arc<impl Recorder>` expression (e.g. [`crate::global()`]).
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::Span::enter($rec, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add(Metric::FramesEncoded, 5);
        r.observe(Metric::FrameTauTotMs, 1.0);
        r.span_record("x", 10);
    }

    #[test]
    fn memory_recorder_aggregates() {
        let r = MemoryRecorder::new();
        r.add(Metric::DamBytesTransferred, 100);
        r.add(Metric::DamBytesTransferred, 50);
        assert_eq!(r.counter(Metric::DamBytesTransferred), 150);
        assert_eq!(r.gauge_value(Metric::LbImbalancePct), None);
        r.gauge(Metric::LbImbalancePct, 12.5);
        assert_eq!(r.gauge_value(Metric::LbImbalancePct), Some(12.5));
        r.observe(Metric::FrameTauTotMs, 33.0);
        r.observe(Metric::FrameTauTotMs, 35.0);
        assert_eq!(r.histogram(Metric::FrameTauTotMs).count(), 2);
        r.span_record("a", 10);
        r.span_record("a", 30);
        r.span_record("b", 7);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].count, 2);
        assert_eq!(spans[0].total_us, 40);
        assert_eq!(spans[0].max_us, 30);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _g = crate::span!(rec.clone(), "scoped");
            std::hint::black_box(17u64.pow(3));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scoped");
        assert_eq!(spans[0].count, 1);
    }

    #[test]
    fn span_against_noop_records_nothing() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let g = Span::enter(rec, "ignored");
        assert!(g.rec.is_none(), "disabled recorder must not be retained");
    }

    #[test]
    fn jsonl_deterministic_mode_excludes_wall_clock() {
        let r = MemoryRecorder::new();
        r.observe(Metric::SchedOverheadUs, 123.0);
        r.observe(Metric::FrameTauTotMs, 33.0);
        r.span_record("algorithm2", 99);
        let full = r.to_jsonl(false);
        let det = r.to_jsonl(true);
        assert!(full.contains("sched.overhead_us"));
        assert!(full.contains("\"type\":\"span\""));
        assert!(!det.contains("sched.overhead_us"));
        assert!(!det.contains("span"));
        assert!(det.contains("frame.tau_tot_ms"));
        // Every line parses as JSON.
        for line in det.lines() {
            serde_json::value_from_str(line).expect("valid JSON line");
        }
        // Deterministic export is stable across calls.
        assert_eq!(det, r.to_jsonl(true));
    }

    #[test]
    fn stats_table_mentions_every_metric() {
        let r = MemoryRecorder::new();
        r.observe(Metric::FrameTau1Ms, 10.0);
        r.add(Metric::VcmTasksScheduled, 42);
        r.span_record("vcm.build", 5);
        let table = r.render_stats();
        for m in Metric::ALL {
            assert!(
                table.contains(m.name()),
                "missing {} in:\n{table}",
                m.name()
            );
        }
        assert!(table.contains("vcm.build"));
    }
}
