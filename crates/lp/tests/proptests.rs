//! Property-based tests of the simplex solver against first principles and
//! a brute-force vertex enumerator on small instances.

use feves_lp::{LpError, Problem, Relation, Sense};
use proptest::prelude::*;

/// Coefficient strategy: small integers keep vertex enumeration exact.
fn coeff() -> impl Strategy<Value = f64> {
    (-5i32..=5).prop_map(|v| v as f64)
}

proptest! {
    /// Construct a feasible LP by construction: pick x0 ≥ 0, random A, and
    /// set b = A·x0 + slack ≥ A·x0 (so x0 is feasible). With c ≥ 0 and
    /// x ≥ 0, the objective is bounded below by 0. The solver must return
    /// an optimum that (a) satisfies every constraint and (b) is no worse
    /// than the known feasible point.
    #[test]
    fn feasible_by_construction_is_solved(
        x0 in proptest::collection::vec(0.0f64..4.0, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(coeff(), 5), 0.0f64..3.0), 1..7),
        c in proptest::collection::vec(0.0f64..4.0, 5),
    ) {
        let nv = x0.len();
        let mut lp = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..nv).map(|i| lp.add_var(format!("x{i}"), c[i])).collect();
        for (a_row, slack) in &rows {
            let terms: Vec<_> = vars.iter().zip(a_row).map(|(&v, &a)| (v, a)).collect();
            let b: f64 = a_row.iter().zip(&x0).map(|(a, x)| a * x).sum::<f64>() + slack;
            lp.add_constraint(&terms, Relation::Le, b);
        }
        let sol = lp.solve().expect("constructed-feasible LP must solve");

        // (a) primal feasibility.
        for (a_row, slack) in &rows {
            let b: f64 = a_row.iter().zip(&x0).map(|(a, x)| a * x).sum::<f64>() + slack;
            let lhs: f64 = a_row.iter().zip(&vars).map(|(a, &v)| a * sol.value(v)).sum();
            prop_assert!(lhs <= b + 1e-6, "constraint violated: {lhs} > {b}");
        }
        for &v in &vars {
            prop_assert!(sol.value(v) >= -1e-9);
        }
        // (b) optimality vs the known feasible point.
        let ref_obj: f64 = c.iter().zip(&x0).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective() <= ref_obj + 1e-6,
            "objective {} worse than feasible point {}", sol.objective(), ref_obj);
        prop_assert!(sol.objective() >= -1e-6, "c ≥ 0, x ≥ 0 ⇒ objective ≥ 0");
    }

    /// Two-variable LPs: compare against brute-force vertex enumeration.
    #[test]
    fn two_var_matches_vertex_enumeration(
        rows in proptest::collection::vec((coeff(), coeff(), 0.0f64..8.0), 1..6),
        cx in coeff(), cy in coeff(),
    ) {
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", cx);
        let y = lp.add_var("y", cy);
        for &(a, b, r) in &rows {
            lp.add_constraint(&[(x, a), (y, b)], Relation::Le, r);
        }
        // Brute force: candidate vertices are intersections of constraint
        // boundary pairs (incl. the axes x=0, y=0).
        let mut lines: Vec<(f64, f64, f64)> = rows.clone();
        lines.push((1.0, 0.0, 0.0)); // x = 0
        lines.push((0.0, 1.0, 0.0)); // y = 0
        let feasible = |px: f64, py: f64| {
            px >= -1e-7 && py >= -1e-7
                && rows.iter().all(|&(a, b, r)| a * px + b * py <= r + 1e-7)
        };
        let mut best: Option<f64> = None;
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                let (a1, b1, r1) = lines[i];
                let (a2, b2, r2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 { continue; }
                let px = (r1 * b2 - r2 * b1) / det;
                let py = (a1 * r2 - a2 * r1) / det;
                if feasible(px, py) {
                    let obj = cx * px + cy * py;
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }
        }
        match lp.solve() {
            Ok(sol) => {
                // Origin is always feasible here (rhs ≥ 0), so brute force
                // found at least one vertex unless the optimum is unbounded.
                if let Some(best) = best {
                    prop_assert!(sol.objective() <= best + 1e-6,
                        "simplex {} worse than vertex best {}", sol.objective(), best);
                    prop_assert!(sol.objective() >= best - 1e-6 - best.abs() * 1e-9,
                        "simplex {} better than any vertex {} (impossible)",
                        sol.objective(), best);
                }
                prop_assert!(feasible(sol.value(x), sol.value(y)));
            }
            Err(LpError::Unbounded) => {
                // Verify unboundedness: some ray direction (dx, dy) ≥ 0 with
                // negative objective and A·d ≤ 0 must exist. Spot-check the
                // axis rays and the diagonal.
                let ray_ok = |dx: f64, dy: f64| {
                    cx * dx + cy * dy < -1e-9
                        && rows.iter().all(|&(a, b, _)| a * dx + b * dy <= 1e-9)
                };
                // Sample a few rational directions.
                let mut found = false;
                for &(dx, dy) in &[(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (1.0, 2.0),
                                    (3.0, 1.0), (1.0, 3.0), (4.0, 1.0), (1.0, 4.0), (5.0, 1.0),
                                    (1.0, 5.0), (5.0, 2.0), (2.0, 5.0), (5.0, 3.0), (3.0, 5.0),
                                    (4.0, 3.0), (3.0, 4.0), (5.0, 4.0), (4.0, 5.0)] {
                    if ray_ok(dx, dy) { found = true; break; }
                }
                // The sampled directions cover all slope classes that can
                // arise from integer coefficients in [-5, 5]; not finding
                // one is almost surely a solver bug, but keep it a soft
                // check against exotic corner directions.
                if !found {
                    // Dense sweep as fallback.
                    for k in 0..=100 {
                        let t = k as f64 / 100.0;
                        if ray_ok(t, 1.0 - t) { found = true; break; }
                    }
                }
                prop_assert!(found, "solver claims unbounded but no escaping ray found");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?} (origin is feasible)"),
        }
    }

    /// Equality-constrained LPs stay feasible: x fixed by Σx = s with a
    /// random split must solve and respect the equality.
    #[test]
    fn equality_partition_sums(
        n in 2usize..6,
        total in 1.0f64..100.0,
        weights in proptest::collection::vec(0.5f64..4.0, 6),
    ) {
        let mut lp = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..n).map(|i| lp.add_var(format!("m{i}"), 0.0)).collect();
        let tau = lp.add_var("tau", 1.0);
        let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&all, Relation::Eq, total);
        // Each device: weight_i · m_i ≤ tau  (the τ1-style constraint).
        for (i, &v) in vars.iter().enumerate() {
            lp.add_constraint(&[(v, weights[i]), (tau, -1.0)], Relation::Le, 0.0);
        }
        let sol = lp.solve().expect("partition LP must be feasible");
        let sum: f64 = vars.iter().map(|&v| sol.value(v)).sum();
        prop_assert!((sum - total).abs() < 1e-6, "sum {sum} != {total}");
        // Optimal tau equals total / Σ(1/w): the classic makespan balance.
        let ideal: f64 = total / weights[..n].iter().map(|w| 1.0 / w).sum::<f64>();
        prop_assert!((sol.objective() - ideal).abs() < 1e-5,
            "tau {} vs ideal {}", sol.objective(), ideal);
    }
}
