#![warn(missing_docs)]
//! A small, dependency-free linear-programming solver (dense two-phase
//! primal simplex with Bland's anti-cycling rule).
//!
//! The FEVES load-balancing routine (paper Algorithm 2) is a linear program
//! over the per-device distribution vectors `m`, `l`, `s` and the
//! synchronization times τ1, τ2, τtot. No LP crate is available in the
//! offline dependency set, so this crate implements one from scratch; its
//! problem sizes (a handful of variables per device) are solved in
//! microseconds, far below the paper's < 2 ms scheduling-overhead budget.
//!
//! All variables are non-negative — exactly what the FEVES formulation
//! needs (row counts, transfer amounts and times are all ≥ 0).

pub mod problem;
pub mod simplex;

pub use problem::{LpError, Problem, Relation, Sense, Solution, VarId};
