//! Dense two-phase primal simplex on a standard-form tableau.
//!
//! Solves `min cᵀx  s.t.  Ax = b, x ≥ 0, b ≥ 0` with Bland's anti-cycling
//! rule. Problem sizes in FEVES are tiny (tens of variables/constraints for
//! up to a dozen devices), so a dense tableau is both the simplest and the
//! fastest-in-practice choice — the paper reports < 2 ms scheduling overhead
//! per frame and this solver is orders of magnitude below that.

/// Numerical tolerance for optimality/feasibility decisions.
pub const EPS: f64 = 1e-9;

/// Minimum magnitude of an acceptable pivot element: pivoting on smaller
/// values amplifies elimination noise into structural corruption.
pub const PIVOT_EPS: f64 = 1e-7;

/// Outcome of a simplex run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimplexOutcome {
    /// Optimal basic solution found.
    Optimal,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration cap reached (possible cycling under Dantzig's rule).
    IterationLimit,
}

/// Entering-variable selection rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PivotRule {
    /// Smallest index with negative reduced cost — never cycles (Bland).
    Bland,
    /// Most negative reduced cost — fast in practice, capped iterations.
    Dantzig,
}

/// Dense simplex tableau: `m` equality rows over `n` variables.
pub struct Tableau {
    /// Row-major coefficients, `m × n`.
    a: Vec<f64>,
    /// Right-hand sides, length `m` (kept ≥ 0 by pivoting).
    b: Vec<f64>,
    /// Objective row (reduced costs), length `n`.
    c: Vec<f64>,
    /// Objective offset (negated running objective value).
    obj: f64,
    /// Basis: `basis[row]` = variable index basic in that row.
    basis: Vec<usize>,
    m: usize,
    n: usize,
    /// Pivot iterations performed across all `solve_with` calls on this
    /// tableau (observability: feeds the `lp.iterations` metric).
    iters: usize,
}

impl Tableau {
    /// Build a tableau from equality rows `a x = b` (with `b ≥ 0`), an
    /// objective `c`, and an initial basis (one basic variable per row whose
    /// column must be a unit vector in `a`).
    pub fn new(a: Vec<f64>, b: Vec<f64>, c: Vec<f64>, basis: Vec<usize>) -> Self {
        let m = b.len();
        let n = c.len();
        assert_eq!(a.len(), m * n, "A must be m×n");
        assert_eq!(basis.len(), m, "one basic variable per row");
        debug_assert!(b.iter().all(|&v| v >= -EPS), "b must be non-negative");
        let mut t = Tableau {
            a,
            b,
            c,
            obj: 0.0,
            basis,
            m,
            n,
            iters: 0,
        };
        t.price_out_basis();
        t
    }

    /// Make reduced costs of basic variables exactly zero.
    fn price_out_basis(&mut self) {
        for row in 0..self.m {
            let var = self.basis[row];
            let coeff = self.c[var];
            if coeff.abs() > 0.0 {
                for col in 0..self.n {
                    self.c[col] -= coeff * self.a[row * self.n + col];
                }
                self.obj -= coeff * self.b[row];
            }
        }
    }

    /// Current objective value.
    pub fn objective(&self) -> f64 {
        -self.obj
    }

    /// Extract the current basic solution (length `n`).
    pub fn solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for row in 0..self.m {
            x[self.basis[row]] = self.b[row];
        }
        x
    }

    /// Basis accessor.
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    /// Total simplex iterations run on this tableau so far.
    pub fn iterations(&self) -> usize {
        self.iters
    }

    /// Run the primal simplex with Bland's rule until optimal or unbounded.
    /// `allowed` limits the entering columns (used in phase 1→2 transition
    /// to lock out artificial variables); pass `n` to allow all.
    pub fn solve(&mut self, allowed: usize) -> SimplexOutcome {
        self.solve_with(allowed, PivotRule::Bland)
    }

    /// Run the primal simplex with a selectable entering rule. Dantzig runs
    /// under an iteration cap (it can cycle on degenerate problems).
    pub fn solve_with(&mut self, allowed: usize, rule: PivotRule) -> SimplexOutcome {
        let max_iters = 50 * (self.m + self.n) + 200;
        let mut iters = 0usize;
        loop {
            iters += 1;
            self.iters += 1;
            if iters > max_iters {
                return SimplexOutcome::IterationLimit;
            }
            let bound = allowed.min(self.n);
            let entering = match rule {
                PivotRule::Bland => (0..bound).find(|&j| self.c[j] < -EPS),
                PivotRule::Dantzig => {
                    let mut best: Option<(usize, f64)> = None;
                    for j in 0..bound {
                        if self.c[j] < -EPS && best.is_none_or(|(_, bc)| self.c[j] < bc) {
                            best = Some((j, self.c[j]));
                        }
                    }
                    best.map(|(j, _)| j)
                }
            };
            let Some(col) = entering else {
                return SimplexOutcome::Optimal;
            };
            // Ratio test; Bland: smallest basic-variable index among ties.
            let mut leave: Option<(usize, f64)> = None;
            for row in 0..self.m {
                let a = self.a[row * self.n + col];
                if a > PIVOT_EPS {
                    let ratio = self.b[row] / a;
                    match leave {
                        None => leave = Some((row, ratio)),
                        Some((lrow, lratio)) => {
                            if ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[row] < self.basis[lrow])
                            {
                                leave = Some((row, ratio));
                            }
                        }
                    }
                }
            }
            let Some((pivot_row, _)) = leave else {
                return SimplexOutcome::Unbounded;
            };
            self.pivot(pivot_row, col);
        }
    }

    /// Gauss-Jordan pivot on (`row`, `col`).
    pub fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n;
        let p = self.a[row * n + col];
        debug_assert!(p.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / p;
        for j in 0..n {
            self.a[row * n + j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row * n + col] = 1.0; // exact

        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.a[r * n + col];
            if f.abs() > 0.0 {
                for j in 0..n {
                    self.a[r * n + j] -= f * self.a[row * n + j];
                }
                self.a[r * n + col] = 0.0; // exact
                self.b[r] -= f * self.b[row];
                if self.b[r].abs() < EPS {
                    self.b[r] = 0.0;
                }
            }
        }
        let f = self.c[col];
        if f.abs() > 0.0 {
            for j in 0..n {
                self.c[j] -= f * self.a[row * n + j];
            }
            self.c[col] = 0.0;
            self.obj -= f * self.b[row];
        }
        self.basis[row] = col;
    }

    /// Element accessor (row-major).
    pub fn coeff(&self, row: usize, col: usize) -> f64 {
        self.a[row * self.n + col]
    }

    /// Replace the objective row (used for the phase-1 → phase-2 switch);
    /// re-prices the current basis.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n);
        self.c = c;
        self.obj = 0.0;
        self.price_out_basis();
    }

    /// Try to pivot any artificial variable (index ≥ `first_artificial`) out
    /// of the basis; rows where that is impossible are redundant and are
    /// neutralized (zeroed).
    pub fn drive_out_artificials(&mut self, first_artificial: usize) {
        for row in 0..self.m {
            if self.basis[row] >= first_artificial {
                // Find a structural column with a safely-sized coefficient.
                let col =
                    (0..first_artificial).find(|&j| self.a[row * self.n + j].abs() > PIVOT_EPS);
                if let Some(col) = col {
                    self.pivot(row, col);
                } else {
                    // Redundant row: all structural coefficients zero. Its
                    // rhs must also be ~0 (phase 1 succeeded). Leave the
                    // artificial basic at value 0 — harmless.
                    debug_assert!(self.b[row].abs() < 1e-6);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_textbook_maximization() {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  →  (2, 6), obj 36.
        // As min −3x −5y with slacks s1..s3 (columns 2..5).
        #[rustfmt::skip]
        let a = vec![
            1.0, 0.0, 1.0, 0.0, 0.0,
            0.0, 2.0, 0.0, 1.0, 0.0,
            3.0, 2.0, 0.0, 0.0, 1.0,
        ];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        let mut t = Tableau::new(a, b, c, vec![2, 3, 4]);
        assert_eq!(t.solve(5), SimplexOutcome::Optimal);
        let x = t.solution();
        assert!((x[0] - 2.0).abs() < 1e-9, "x = {x:?}");
        assert!((x[1] - 6.0).abs() < 1e-9);
        assert!((t.objective() + 36.0).abs() < 1e-9);
    }

    #[test]
    fn detects_unbounded() {
        // min −x  s.t. x − y ≤ 1 (x grows with y unboundedly).
        let a = vec![1.0, -1.0, 1.0];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        let mut t = Tableau::new(a, b, c, vec![2]);
        assert_eq!(t.solve(3), SimplexOutcome::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Degenerate vertex: multiple constraints meet at the same point.
        // min −x − y  s.t. x + y ≤ 1, x + y ≤ 1 (duplicated), x ≤ 1.
        #[rustfmt::skip]
        let a = vec![
            1.0, 1.0, 1.0, 0.0, 0.0,
            1.0, 1.0, 0.0, 1.0, 0.0,
            1.0, 0.0, 0.0, 0.0, 1.0,
        ];
        let b = vec![1.0, 1.0, 1.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0, 0.0];
        let mut t = Tableau::new(a, b, c, vec![2, 3, 4]);
        assert_eq!(t.solve(5), SimplexOutcome::Optimal);
        assert!((t.objective() + 1.0).abs() < 1e-9);
    }
}
