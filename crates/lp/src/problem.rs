//! User-facing LP model builder on top of the two-phase simplex.

use crate::simplex::{PivotRule, SimplexOutcome, Tableau, EPS};
use std::fmt;

/// Handle to a decision variable (all variables are non-negative).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Constraint relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Clone, Debug)]
struct Constraint {
    terms: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// Errors from [`Problem::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The model is malformed (e.g. no variables).
    Malformed(&'static str),
    /// The solver's result failed post-solve verification (numerical
    /// breakdown); callers should fall back to a heuristic.
    Numerical,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::Malformed(m) => write!(f, "malformed LP: {m}"),
            LpError::Numerical => write!(f, "numerical breakdown in simplex"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    iterations: usize,
}

impl Solution {
    /// Value of variable `v`.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Optimal objective value (in the problem's own sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Simplex pivot iterations spent producing this solution (phase 1 +
    /// phase 2 of the successful attempt) — the `lp.iterations` metric.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// A linear program: `min/max cᵀx` subject to linear constraints, `x ≥ 0`.
///
/// ```
/// use feves_lp::{Problem, Relation, Sense};
/// let mut lp = Problem::new(Sense::Maximize);
/// let x = lp.add_var("x", 3.0);
/// let y = lp.add_var("y", 5.0);
/// lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
/// lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
/// lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective() - 36.0).abs() < 1e-9);
/// assert!((sol.value(x) - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Problem {
    sense: Sense,
    obj: Vec<f64>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Create an empty problem.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            obj: Vec::new(),
            names: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a non-negative variable with objective coefficient `obj_coeff`.
    pub fn add_var(&mut self, name: impl Into<String>, obj_coeff: f64) -> VarId {
        self.obj.push(obj_coeff);
        self.names.push(name.into());
        VarId(self.obj.len() - 1)
    }

    /// Number of variables so far.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Add `Σ terms ⋈ rhs`. Duplicate variables in `terms` are summed.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) {
        let mut combined: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.obj.len(), "variable from another problem");
            if let Some(e) = combined.iter_mut().find(|(i, _)| *i == v.0) {
                e.1 += c;
            } else {
                combined.push((v.0, c));
            }
        }
        self.constraints.push(Constraint {
            terms: combined,
            rel,
            rhs,
        });
    }

    /// Solve with the two-phase simplex.
    ///
    /// Strategy: a fast Dantzig-rule attempt first; if it hits its
    /// iteration cap or fails post-solve verification, an authoritative
    /// Bland-rule attempt (anti-cycling) decides.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let _span = feves_obs::span!(feves_obs::global(), "lp.solve");
        match self.solve_attempt(PivotRule::Dantzig) {
            Ok(s) => Ok(s),
            Err(LpError::Unbounded) => Err(LpError::Unbounded),
            Err(_) => self.solve_attempt(PivotRule::Bland),
        }
    }

    fn solve_attempt(&self, rule: PivotRule) -> Result<Solution, LpError> {
        let nv = self.obj.len();
        if nv == 0 {
            return Err(LpError::Malformed("no variables"));
        }
        let m = self.constraints.len();

        // Count auxiliary columns: one slack/surplus per inequality, one
        // artificial per Ge/Eq row (and per Le row with negative rhs, which
        // normalization turns into Ge).
        #[derive(Clone, Copy)]
        enum RowKind {
            Slack,
            SurplusArtificial,
            ArtificialOnly,
        }
        let mut kinds = Vec::with_capacity(m);
        for c in &self.constraints {
            // Normalize to rhs ≥ 0 by flipping sign (and relation).
            let (rel, rhs) = if c.rhs < 0.0 {
                (flip(c.rel), -c.rhs)
            } else {
                (c.rel, c.rhs)
            };
            let kind = match rel {
                Relation::Le => {
                    if rhs >= 0.0 {
                        RowKind::Slack
                    } else {
                        RowKind::SurplusArtificial
                    }
                }
                Relation::Ge => RowKind::SurplusArtificial,
                Relation::Eq => RowKind::ArtificialOnly,
            };
            kinds.push((kind, rel, rhs));
        }
        let n_slack = kinds
            .iter()
            .filter(|(k, _, _)| matches!(k, RowKind::Slack | RowKind::SurplusArtificial))
            .count();
        let n_art = kinds
            .iter()
            .filter(|(k, _, _)| matches!(k, RowKind::SurplusArtificial | RowKind::ArtificialOnly))
            .count();
        let n_total = nv + n_slack + n_art;

        let mut a = vec![0.0; m * n_total];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut slack_at = nv;
        let first_artificial = nv + n_slack;
        let mut art_at = first_artificial;

        for (row, c) in self.constraints.iter().enumerate() {
            let (kind, _rel, rhs) = kinds[row];
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            // Row equilibration: divide the row by its largest coefficient
            // magnitude so wildly mixed scales (seconds-per-row rates vs
            // row counts) do not destabilize the pivoting.
            let scale = c
                .terms
                .iter()
                .map(|&(_, coeff)| coeff.abs())
                .fold(rhs.abs(), f64::max);
            let inv = if scale > 0.0 { 1.0 / scale } else { 1.0 };
            for &(v, coeff) in &c.terms {
                a[row * n_total + v] = sign * coeff * inv;
            }
            b[row] = rhs * inv;
            match kind {
                RowKind::Slack => {
                    a[row * n_total + slack_at] = 1.0;
                    basis[row] = slack_at;
                    slack_at += 1;
                }
                RowKind::SurplusArtificial => {
                    a[row * n_total + slack_at] = -1.0;
                    slack_at += 1;
                    a[row * n_total + art_at] = 1.0;
                    basis[row] = art_at;
                    art_at += 1;
                }
                RowKind::ArtificialOnly => {
                    a[row * n_total + art_at] = 1.0;
                    basis[row] = art_at;
                    art_at += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificials.
        if n_art > 0 {
            let mut c1 = vec![0.0; n_total];
            for c in c1.iter_mut().take(n_total).skip(first_artificial) {
                *c = 1.0;
            }
            let mut t = Tableau::new(a, b, c1, basis);
            match t.solve_with(n_total, rule) {
                SimplexOutcome::Optimal => {}
                SimplexOutcome::IterationLimit => return Err(LpError::Numerical),
                SimplexOutcome::Unbounded => return Err(LpError::Infeasible),
            }
            if t.objective() > 1e-7 {
                return Err(LpError::Infeasible);
            }
            t.drive_out_artificials(first_artificial);
            // Phase 2 with the real objective, artificials locked out.
            let mut c2 = vec![0.0; n_total];
            for (j, &coeff) in self.obj.iter().enumerate() {
                c2[j] = match self.sense {
                    Sense::Minimize => coeff,
                    Sense::Maximize => -coeff,
                };
            }
            t.set_objective(c2);
            match t.solve_with(first_artificial, rule) {
                SimplexOutcome::Optimal => self.extract(&t, nv),
                SimplexOutcome::IterationLimit => Err(LpError::Numerical),
                SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            }
        } else {
            // All-slack basis is feasible; single phase.
            let mut c2 = vec![0.0; n_total];
            for (j, &coeff) in self.obj.iter().enumerate() {
                c2[j] = match self.sense {
                    Sense::Minimize => coeff,
                    Sense::Maximize => -coeff,
                };
            }
            let mut t = Tableau::new(a, b, c2, basis);
            match t.solve_with(n_total, rule) {
                SimplexOutcome::Optimal => self.extract(&t, nv),
                SimplexOutcome::IterationLimit => Err(LpError::Numerical),
                SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            }
        }
    }

    fn extract(&self, t: &Tableau, nv: usize) -> Result<Solution, LpError> {
        let full = t.solution();
        let values: Vec<f64> = full[..nv]
            .iter()
            .map(|&v| if v.abs() < EPS { 0.0 } else { v })
            .collect();
        // Post-solve verification: the basic solution must satisfy every
        // original constraint (within a scale-relative tolerance). A tableau
        // corrupted by near-singular pivots is caught here instead of being
        // handed to the caller as a bogus "optimum".
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, k)| k * values[v]).sum();
            let scale =
                1.0 + c.rhs.abs() + c.terms.iter().map(|&(_, k)| k.abs()).fold(0.0, f64::max);
            let tol = 1e-6 * scale;
            let ok = match c.rel {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(LpError::Numerical);
            }
        }
        if values.iter().any(|&v| v < -1e-9) {
            return Err(LpError::Numerical);
        }
        let objective = values
            .iter()
            .zip(&self.obj)
            .map(|(x, c)| x * c)
            .sum::<f64>();
        Ok(Solution {
            values,
            objective,
            iterations: t.iterations(),
        })
    }
}

fn flip(rel: Relation) -> Relation {
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_max() {
        let mut lp = Problem::new(Sense::Maximize);
        let x = lp.add_var("x", 3.0);
        let y = lp.add_var("y", 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 36.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 6.0).abs() < 1e-9);
        assert!(sol.iterations() > 0, "pivot count must be reported");
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y  s.t. x + y = 10, x ≥ 3  →  (10 − y… ) best: y as large
        // as possible? obj grows with y, so y = 0 … but x + y = 10 → x = 10.
        // With x ≥ 3 satisfied. Optimal (10, 0), obj 10.
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 10.0).abs() < 1e-9);
        assert!(sol.value(y).abs() < 1e-9);
        assert!((sol.objective() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Problem::new(Sense::Maximize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 5.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x − y ≤ −2  ⇔  y − x ≥ 2. min x + y with x,y ≥ 0 → (0, 2).
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert!(sol.value(x).abs() < 1e-9);
        assert!((sol.value(y) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // (x + x) ≤ 4 ⇒ x ≤ 2.
        let mut lp = Problem::new(Sense::Maximize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, 1.0), (x, 1.0)], Relation::Le, 4.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // min y  s.t. x − y = 0, x ≥ 1 → (1, 1).
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_ok() {
        // Same equality twice (redundant row must not break phase 1).
        let mut lp = Problem::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) + sol.value(y) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_empty() {
        let lp = Problem::new(Sense::Minimize);
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }
}
