//! Property-based tests of the codec invariants the FEVES framework relies
//! on: partition invariance of the balanced kernels, quantizer error
//! bounds, entropy round-trips and deblocking sanity on random content.

use feves_codec::entropy::{decode_block, encode_block, BitReader, BitWriter};
use feves_codec::interp::{interpolate, SubpelFrame};
use feves_codec::me::{motion_estimate_rows, MbMotion};
use feves_codec::quant::{itq_block, qstep, tq_block};
use feves_codec::sme::{sme_rows, MbSubMotion};
use feves_codec::types::{EncodeParams, SearchArea};
use feves_video::geometry::{ranges_from_counts, RowRange};
use feves_video::plane::Plane;
use proptest::prelude::*;

fn arb_plane(w: usize, h: usize) -> impl Strategy<Value = Plane<u8>> {
    proptest::collection::vec(any::<u8>(), w * h).prop_map(move |data| Plane::from_vec(data, w, h))
}

/// Split `total` into `parts` non-negative counts.
fn arb_split(total: usize, parts: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..=total, parts - 1).prop_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(total);
        cuts.sort_unstable();
        cuts.windows(2).map(|w| w[1] - w[0]).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ME over any row partition equals whole-frame ME — the invariance
    /// that makes FEVES' cross-device distribution lossless.
    #[test]
    fn me_partition_invariance(
        cf in arb_plane(64, 64),
        rf in arb_plane(64, 64),
        split in arb_split(4, 3),
    ) {
        let params = EncodeParams {
            search_area: SearchArea(8),
            n_ref: 1,
            ..Default::default()
        };
        let mb_cols = 4;
        let mut whole = vec![MbMotion::default(); mb_cols * 4];
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 4), &mut whole);
        let mut stitched = vec![MbMotion::default(); mb_cols * 4];
        for range in ranges_from_counts(&split) {
            if range.is_empty() { continue; }
            let out = &mut stitched[range.start * mb_cols..range.end * mb_cols];
            motion_estimate_rows(&cf, &[&rf], &params, range, out);
        }
        prop_assert_eq!(whole, stitched);
    }

    /// Interpolation over any row partition equals whole-frame
    /// interpolation.
    #[test]
    fn interp_partition_invariance(
        rf in arb_plane(48, 64),
        split in arb_split(4, 3),
    ) {
        let full = interpolate(&rf);
        let mut sliced = SubpelFrame::new(48, 64);
        for range in ranges_from_counts(&split) {
            sliced.interpolate_rows(&rf, range);
        }
        prop_assert_eq!(full, sliced);
    }

    /// SME over any row partition equals whole-frame SME, and never
    /// worsens the ME cost.
    #[test]
    fn sme_partition_invariance_and_improvement(
        cf in arb_plane(64, 48),
        rf in arb_plane(64, 48),
        split in arb_split(3, 2),
    ) {
        let params = EncodeParams {
            search_area: SearchArea(8),
            n_ref: 1,
            ..Default::default()
        };
        let mb_cols = 4;
        let sf = interpolate(&rf);
        let mut me = vec![MbMotion::default(); mb_cols * 3];
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 3), &mut me);

        let mut whole = vec![MbSubMotion::default(); mb_cols * 3];
        sme_rows(&cf, &[&sf], &me, RowRange::new(0, 3), &mut whole);

        let mut stitched = vec![MbSubMotion::default(); mb_cols * 3];
        for range in ranges_from_counts(&split) {
            if range.is_empty() { continue; }
            let me_slice = &me[range.start * mb_cols..range.end * mb_cols];
            let out = &mut stitched[range.start * mb_cols..range.end * mb_cols];
            sme_rows(&cf, &[&sf], me_slice, range, out);
        }
        prop_assert_eq!(&whole, &stitched);

        for (s, m) in whole.iter().zip(&me) {
            for mode in feves_codec::types::ALL_PARTITION_MODES {
                for i in 0..mode.count() {
                    prop_assert!(s.block(mode, i).cost <= m.block(mode, i).cost);
                }
            }
        }
    }

    /// TQ⁻¹(TQ(x)) error stays within the quantization step bound for any
    /// residual block and QP.
    #[test]
    fn quant_roundtrip_error_bound(
        residual in proptest::array::uniform16(-255i16..=255),
        qp in 0u8..=51,
    ) {
        let levels = tq_block(&residual, qp, false);
        let back = itq_block(&levels, qp);
        let bound = qstep(qp) * 2.0 + 2.0;
        for i in 0..16 {
            let err = (residual[i] - back[i]).abs() as f64;
            prop_assert!(err <= bound, "qp {} i {}: err {} > {}", qp, i, err, bound);
        }
    }

    /// The entropy coder round-trips arbitrary level blocks bit-exactly.
    #[test]
    fn entropy_block_roundtrip(levels in proptest::array::uniform16(-512i16..=512)) {
        let mut w = BitWriter::new();
        encode_block(&mut w, &levels);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(decode_block(&mut r).unwrap(), levels);
    }

    /// Exp-Golomb values round-trip and the code length is monotone.
    #[test]
    fn expgolomb_roundtrip(values in proptest::collection::vec(0u32..1_000_000, 1..50)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.ue().unwrap(), v);
        }
    }

    /// Deblocking only moves samples by bounded amounts and is idempotent
    /// on already-flat content.
    #[test]
    fn deblock_bounded_change(
        seed_plane in arb_plane(48, 48),
        qp in 20u8..=44,
    ) {
        use feves_codec::dbl::deblock_frame;
        use feves_codec::mc::ModeField;
        use feves_codec::recon::CoeffField;
        let mb = 3;
        let mut modes = ModeField::new(mb, mb);
        let mut coeffs = CoeffField::new(mb, mb);
        for y in 0..mb {
            for x in 0..mb {
                modes.mb_mut(x, y).mvs = [feves_codec::sme::SmeBlockMv {
                    rf: 0,
                    mv: feves_codec::types::QpelMv::new((x * 4) as i16, (y * 4) as i16),
                    cost: 0,
                }; 16];
                coeffs.mb_mut(x, y).coded_mask = if (x + y) % 2 == 0 { 0xFFFF } else { 0 };
            }
        }
        let mut filtered = seed_plane.clone();
        deblock_frame(&mut filtered, &modes, &coeffs, qp);
        // Filter taps clip the per-sample change to tc ≤ β(QP)·bS/4 + 2.
        let max_change = 2 * (qp as i16) + 16; // generous structural bound
        for y in 0..48 {
            for x in 0..48 {
                let d = (filtered.get(x, y) as i16 - seed_plane.get(x, y) as i16).abs();
                prop_assert!(d <= max_change, "at {},{}: moved {}", x, y, d);
            }
        }
    }
}
