//! CABAC-style adaptive binary arithmetic coding — the H.264 Main-profile
//! entropy backend, here built from first principles: a carry-less binary
//! range coder plus adaptive per-context probability models, with the same
//! frame syntax as the Exp-Golomb coder of [`crate::entropy`].
//!
//! The paper's Baseline-profile evaluation uses CAVLC-class coding (our
//! [`crate::entropy`] module); this module is the natural Main-profile
//! extension and demonstrates the rate gap between static and adaptive
//! entropy coding on the same quantized data (see the `rd_sweep` binary).
//! The encoder/decoder pair round-trips bit-exactly, which the property
//! tests assert.

use crate::chroma::{ChromaField, MbChromaCoeffs};
use crate::entropy::{DecodeError, MvPredictor, ZIGZAG_4X4};
use crate::mc::{MbMode, ModeField};
use crate::recon::{CoeffField, MbCoeffs};
use crate::sme::SmeBlockMv;
use crate::types::{QpelMv, ALL_PARTITION_MODES};
use bytes::Bytes;

const PROB_BITS: u32 = 12;
const PROB_ONE: u16 = 1 << PROB_BITS;
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive binary probability model (probability that the bit is 0).
#[derive(Clone, Copy, Debug)]
pub struct Context(u16);

impl Default for Context {
    fn default() -> Self {
        Context(PROB_ONE / 2)
    }
}

impl Context {
    fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> ADAPT_SHIFT;
        } else {
            self.0 += (PROB_ONE - self.0) >> ADAPT_SHIFT;
        }
        // Keep away from 0/1 certainty.
        self.0 = self.0.clamp(32, PROB_ONE - 32);
    }
}

/// Carry-less binary range encoder (LZMA-style renormalization).
pub struct ArithEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for ArithEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        ArithEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000u64 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit under the adaptive `ctx`.
    pub fn encode(&mut self, ctx: &mut Context, bit: bool) {
        let bound = (self.range >> PROB_BITS) * ctx.0 as u32;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        ctx.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode one equiprobable ("bypass") bit.
    pub fn encode_bypass(&mut self, bit: bool) {
        let bound = self.range >> 1;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Flush and return the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// The matching range decoder.
pub struct ArithDecoder<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> ArithDecoder<'a> {
    /// Wrap a byte stream produced by [`ArithEncoder::finish`].
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.is_empty() {
            return Err(DecodeError("empty arithmetic stream".into()));
        }
        let mut d = ArithDecoder {
            code: 0,
            range: u32::MAX,
            data,
            pos: 1, // the first byte is the encoder's initial zero cache
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte();
        }
        Ok(d)
    }

    fn next_byte(&mut self) -> u32 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b as u32
    }

    /// Decode one bit under the adaptive `ctx`.
    pub fn decode(&mut self, ctx: &mut Context) -> bool {
        let bound = (self.range >> PROB_BITS) * ctx.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        ctx.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte();
        }
        bit
    }

    /// Decode one bypass bit.
    pub fn decode_bypass(&mut self) -> bool {
        let bound = self.range >> 1;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte();
        }
        bit
    }
}

// ---- Binarizations ----------------------------------------------------

/// Unsigned value: truncated-unary prefix (adaptive, up to `k` ctx bits)
/// followed by a bypass Exp-Golomb suffix for the remainder.
fn encode_uval(e: &mut ArithEncoder, ctxs: &mut [Context], v: u32) {
    let k = ctxs.len() as u32;
    let prefix = v.min(k);
    for i in 0..prefix {
        e.encode(&mut ctxs[i as usize], true);
    }
    if prefix < k {
        e.encode(&mut ctxs[prefix as usize], false);
        return;
    }
    // Bypass Exp-Golomb of (v - k).
    let rest = v - k;
    let mut n = 0u32;
    while (rest + 1) >> (n + 1) > 0 {
        n += 1;
    }
    for _ in 0..n {
        e.encode_bypass(true);
    }
    e.encode_bypass(false);
    for i in (0..n).rev() {
        e.encode_bypass(((rest + 1) >> i) & 1 == 1);
    }
}

fn decode_uval(d: &mut ArithDecoder<'_>, ctxs: &mut [Context]) -> Result<u32, DecodeError> {
    let k = ctxs.len() as u32;
    let mut prefix = 0u32;
    while prefix < k {
        if d.decode(&mut ctxs[prefix as usize]) {
            prefix += 1;
        } else {
            return Ok(prefix);
        }
    }
    let mut n = 0u32;
    while d.decode_bypass() {
        n += 1;
        if n > 40 {
            return Err(DecodeError("arithmetic EG prefix too long".into()));
        }
    }
    let mut v = 1u32;
    for _ in 0..n {
        v = (v << 1) | d.decode_bypass() as u32;
    }
    Ok(k + v - 1)
}

fn encode_sval(e: &mut ArithEncoder, ctxs: &mut [Context], v: i32) {
    encode_uval(e, ctxs, v.unsigned_abs());
    if v != 0 {
        e.encode_bypass(v < 0);
    }
}

fn decode_sval(d: &mut ArithDecoder<'_>, ctxs: &mut [Context]) -> Result<i32, DecodeError> {
    let mag = decode_uval(d, ctxs)? as i32;
    if mag == 0 {
        return Ok(0);
    }
    Ok(if d.decode_bypass() { -mag } else { mag })
}

// ---- Frame syntax ------------------------------------------------------

/// The adaptive context set for one frame.
struct Models {
    mode: Vec<Context>,
    rf: Vec<Context>,
    mvd_x: Vec<Context>,
    mvd_y: Vec<Context>,
    coded_block: Vec<Context>, // [luma, chroma]
    sig: Vec<Context>,         // per zigzag position
    level: Vec<Context>,
}

impl Models {
    fn new() -> Self {
        Models {
            mode: vec![Context::default(); 6],
            rf: vec![Context::default(); 4],
            mvd_x: vec![Context::default(); 9],
            mvd_y: vec![Context::default(); 9],
            coded_block: vec![Context::default(); 2],
            sig: vec![Context::default(); 16],
            level: vec![Context::default(); 8],
        }
    }
}

fn code_block(e: &mut ArithEncoder, m: &mut Models, levels: &[i16; 16], chroma: bool) {
    let scanned: Vec<i16> = ZIGZAG_4X4.iter().map(|&i| levels[i]).collect();
    let any = scanned.iter().any(|&v| v != 0);
    let cbf = usize::from(chroma);
    e.encode(&mut m.coded_block[cbf], any);
    if !any {
        return;
    }
    for (pos, &v) in scanned.iter().enumerate() {
        e.encode(&mut m.sig[pos], v != 0);
        if v != 0 {
            encode_uval(e, &mut m.level, (v.unsigned_abs() - 1) as u32);
            e.encode_bypass(v < 0);
        }
    }
}

fn decode_block(
    d: &mut ArithDecoder<'_>,
    m: &mut Models,
    chroma: bool,
) -> Result<[i16; 16], DecodeError> {
    let cbf = usize::from(chroma);
    let mut out = [0i16; 16];
    if !d.decode(&mut m.coded_block[cbf]) {
        return Ok(out);
    }
    for pos in 0..16 {
        if d.decode(&mut m.sig[pos]) {
            let mag1 = decode_uval(d, &mut m.level)? as i32;
            let neg = d.decode_bypass();
            let mag = mag1 + 1;
            out[ZIGZAG_4X4[pos]] = if neg { -mag as i16 } else { mag as i16 };
        }
    }
    Ok(out)
}

/// Encode a full YUV frame with adaptive arithmetic coding; returns the
/// stream and its exact bit count.
pub fn encode_frame_cabac(
    modes: &ModeField,
    coeffs: &CoeffField,
    chroma: Option<&ChromaField>,
    qp: u8,
) -> (Bytes, u64) {
    let mut e = ArithEncoder::new();
    let mut m = Models::new();
    // Plain header bits (dimensions + qp) via bypass.
    for v in [
        modes.mb_cols() as u32,
        modes.mb_rows() as u32,
        qp as u32,
        chroma.is_some() as u32,
    ] {
        for i in (0..16).rev() {
            e.encode_bypass((v >> i) & 1 == 1);
        }
    }
    let mut pred = MvPredictor::new(modes.mb_cols(), modes.mb_rows());
    for mby in 0..modes.mb_rows() {
        for mbx in 0..modes.mb_cols() {
            let mb = modes.mb(mbx, mby);
            encode_uval(&mut e, &mut m.mode, mb.mode.index() as u32);
            let (pw, ph) = mb.mode.dims();
            let (w4, h4) = (pw / 4, ph / 4);
            for i in 0..mb.mode.count() {
                let blk = &mb.mvs[i];
                let (ox, oy) = mb.mode.offset(i);
                let (x4, y4) = (mbx * 4 + ox / 4, mby * 4 + oy / 4);
                let p = pred.predict(x4, y4, w4);
                encode_uval(&mut e, &mut m.rf, blk.rf as u32);
                encode_sval(&mut e, &mut m.mvd_x, (blk.mv.x - p.x) as i32);
                encode_sval(&mut e, &mut m.mvd_y, (blk.mv.y - p.y) as i32);
                pred.record(x4, y4, w4, h4, blk.mv);
            }
            let c = coeffs.mb(mbx, mby);
            for blk in &c.blocks {
                code_block(&mut e, &mut m, blk, false);
            }
            if let Some(ch) = chroma {
                let cm = ch.mb(mbx, mby);
                for blk in cm.cb.iter().chain(cm.cr.iter()) {
                    code_block(&mut e, &mut m, blk, true);
                }
            }
        }
    }
    let bytes = e.finish();
    let bits = bytes.len() as u64 * 8;
    (Bytes::from(bytes), bits)
}

/// Decode a stream produced by [`encode_frame_cabac`].
#[allow(clippy::type_complexity)]
pub fn decode_frame_cabac(
    data: &[u8],
) -> Result<(ModeField, CoeffField, Option<ChromaField>, u8), DecodeError> {
    let mut d = ArithDecoder::new(data)?;
    let mut m = Models::new();
    let mut hdr = [0u32; 4];
    for h in hdr.iter_mut() {
        let mut v = 0u32;
        for _ in 0..16 {
            v = (v << 1) | d.decode_bypass() as u32;
        }
        *h = v;
    }
    let (mb_cols, mb_rows, qp, has_chroma) =
        (hdr[0] as usize, hdr[1] as usize, hdr[2] as u8, hdr[3] != 0);
    if mb_cols == 0 || mb_rows == 0 || mb_cols > 1024 || mb_rows > 1024 {
        return Err(DecodeError(format!("bad dimensions {mb_cols}x{mb_rows}")));
    }
    let mut modes = ModeField::new(mb_cols, mb_rows);
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    let mut chroma = if has_chroma {
        Some(ChromaField::new(mb_cols, mb_rows))
    } else {
        None
    };
    let mut pred = MvPredictor::new(mb_cols, mb_rows);
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let mode_idx = decode_uval(&mut d, &mut m.mode)? as usize;
            let mode = *ALL_PARTITION_MODES
                .get(mode_idx)
                .ok_or_else(|| DecodeError(format!("bad mode {mode_idx}")))?;
            let (pw, ph) = mode.dims();
            let (w4, h4) = (pw / 4, ph / 4);
            let mut mvs = [SmeBlockMv::default(); 16];
            for (i, slot) in mvs.iter_mut().enumerate().take(mode.count()) {
                let (ox, oy) = mode.offset(i);
                let (x4, y4) = (mbx * 4 + ox / 4, mby * 4 + oy / 4);
                let p = pred.predict(x4, y4, w4);
                let rf = decode_uval(&mut d, &mut m.rf)? as u8;
                let dx = decode_sval(&mut d, &mut m.mvd_x)? as i16;
                let dy = decode_sval(&mut d, &mut m.mvd_y)? as i16;
                let mv = QpelMv::new(p.x + dx, p.y + dy);
                *slot = SmeBlockMv { rf, mv, cost: 0 };
                pred.record(x4, y4, w4, h4, mv);
            }
            *modes.mb_mut(mbx, mby) = MbMode { mode, mvs, cost: 0 };
            let mut mc = MbCoeffs::default();
            for (b, blk) in mc.blocks.iter_mut().enumerate() {
                *blk = decode_block(&mut d, &mut m, false)?;
                if blk.iter().any(|&v| v != 0) {
                    mc.coded_mask |= 1 << b;
                }
            }
            *coeffs.mb_mut(mbx, mby) = mc;
            if let Some(ch) = chroma.as_mut() {
                let mut cm = MbChromaCoeffs::default();
                for b in 0..4 {
                    cm.cb[b] = decode_block(&mut d, &mut m, true)?;
                    if cm.cb[b].iter().any(|&v| v != 0) {
                        cm.coded_mask |= 1 << b;
                    }
                }
                for b in 0..4 {
                    cm.cr[b] = decode_block(&mut d, &mut m, true)?;
                    if cm.cr[b].iter().any(|&v| v != 0) {
                        cm.coded_mask |= 1 << (b + 4);
                    }
                }
                *ch.mb_mut(mbx, mby) = cm;
            }
        }
    }
    Ok((modes, coeffs, chroma, qp))
}

/// Which entropy backend a stream uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntropyBackend {
    /// Static Exp-Golomb / run-level (Baseline-profile class).
    ExpGolomb,
    /// Adaptive binary arithmetic coding (Main-profile class).
    Cabac,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_coder_roundtrips_random_bits() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        // Biased bit stream: contexts should adapt and compress it.
        let bits: Vec<bool> = (0..20_000).map(|_| rng.gen_bool(0.15)).collect();
        let mut e = ArithEncoder::new();
        let mut ctx = Context::default();
        for &b in &bits {
            e.encode(&mut ctx, b);
        }
        let bytes = e.finish();
        // Entropy of p=0.15 is ~0.61 bits/symbol; the adaptive coder should
        // land well below 0.8.
        assert!(
            (bytes.len() * 8) < 16_000,
            "poor compression: {} bits for 20k symbols",
            bytes.len() * 8
        );
        let mut d = ArithDecoder::new(&bytes).unwrap();
        let mut ctx = Context::default();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(d.decode(&mut ctx), b, "bit {i}");
        }
    }

    #[test]
    fn bypass_bits_roundtrip() {
        let bits: Vec<bool> = (0..999).map(|i| (i * 7) % 3 == 0).collect();
        let mut e = ArithEncoder::new();
        for &b in &bits {
            e.encode_bypass(b);
        }
        let bytes = e.finish();
        let mut d = ArithDecoder::new(&bytes).unwrap();
        for &b in &bits {
            assert_eq!(d.decode_bypass(), b);
        }
    }

    #[test]
    fn uval_sval_roundtrip() {
        let values = [0u32, 1, 2, 3, 7, 8, 100, 4096, 70000];
        let signed = [0i32, 1, -1, 2, -2, 63, -64, 500, -70000];
        let mut e = ArithEncoder::new();
        let mut cu = vec![Context::default(); 4];
        let mut cs = vec![Context::default(); 6];
        for &v in &values {
            encode_uval(&mut e, &mut cu, v);
        }
        for &v in &signed {
            encode_sval(&mut e, &mut cs, v);
        }
        let bytes = e.finish();
        let mut d = ArithDecoder::new(&bytes).unwrap();
        let mut cu = vec![Context::default(); 4];
        let mut cs = vec![Context::default(); 6];
        for &v in &values {
            assert_eq!(decode_uval(&mut d, &mut cu).unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(decode_sval(&mut d, &mut cs).unwrap(), v);
        }
    }

    fn synthetic_fields(mb_cols: usize, mb_rows: usize) -> (ModeField, CoeffField, ChromaField) {
        let mut modes = ModeField::new(mb_cols, mb_rows);
        let mut coeffs = CoeffField::new(mb_cols, mb_rows);
        let mut chroma = ChromaField::new(mb_cols, mb_rows);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                let mode = ALL_PARTITION_MODES[(mbx * 3 + mby) % 7];
                let mut mvs = [SmeBlockMv::default(); 16];
                for (i, mv) in mvs.iter_mut().enumerate().take(mode.count()) {
                    mv.mv = QpelMv::new((mbx as i16) * 4 + i as i16, (mby as i16) * 2 - 3);
                    mv.rf = ((mbx + i) % 2) as u8;
                }
                *modes.mb_mut(mbx, mby) = MbMode { mode, mvs, cost: 0 };
                if (mbx + mby) % 3 == 0 {
                    let mb = coeffs.mb_mut(mbx, mby);
                    mb.blocks[2][0] = 7;
                    mb.blocks[2][5] = -2;
                    mb.blocks[9][1] = 1;
                    mb.coded_mask = (1 << 2) | (1 << 9);
                    let cm = chroma.mb_mut(mbx, mby);
                    cm.cb[1][0] = -3;
                    cm.coded_mask = 1 << 1;
                }
            }
        }
        (modes, coeffs, chroma)
    }

    #[test]
    fn frame_roundtrip_with_chroma() {
        let (modes, coeffs, chroma) = synthetic_fields(5, 4);
        let (bytes, bits) = encode_frame_cabac(&modes, &coeffs, Some(&chroma), 28);
        assert!(bits > 0);
        let (dm, dc, dch, qp) = decode_frame_cabac(&bytes).unwrap();
        assert_eq!(qp, 28);
        let dch = dch.expect("chroma flag set");
        for mby in 0..4 {
            for mbx in 0..5 {
                assert_eq!(dm.mb(mbx, mby).mode, modes.mb(mbx, mby).mode);
                for i in 0..modes.mb(mbx, mby).mode.count() {
                    assert_eq!(dm.mb(mbx, mby).mvs[i].mv, modes.mb(mbx, mby).mvs[i].mv);
                    assert_eq!(dm.mb(mbx, mby).mvs[i].rf, modes.mb(mbx, mby).mvs[i].rf);
                }
                assert_eq!(dc.mb(mbx, mby), coeffs.mb(mbx, mby));
                assert_eq!(dch.mb(mbx, mby), chroma.mb(mbx, mby));
            }
        }
    }

    #[test]
    fn frame_roundtrip_without_chroma() {
        let (modes, coeffs, _) = synthetic_fields(3, 3);
        let (bytes, _) = encode_frame_cabac(&modes, &coeffs, None, 30);
        let (_, dc, dch, qp) = decode_frame_cabac(&bytes).unwrap();
        assert_eq!(qp, 30);
        assert!(dch.is_none());
        assert_eq!(dc.mb(1, 1), coeffs.mb(1, 1));
    }

    #[test]
    fn cabac_beats_expgolomb_on_real_content() {
        // Encode a synthetic frame with the real pipeline, then compare the
        // two entropy backends on identical quantized data.
        use feves_video::synth::{SynthConfig, SynthSequence};
        let mut cfg = SynthConfig::tiny_test();
        cfg.resolution = feves_video::geometry::Resolution::QCIF;
        let frames = SynthSequence::new(cfg).take_frames(2);
        let params = crate::types::EncodeParams {
            search_area: crate::types::SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let intra = crate::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
        let mut store = crate::inter_loop::ReferenceStore::new(1);
        store.push(intra.recon);
        let out = crate::inter_loop::encode_inter_frame(frames[1].y(), &store, &params);
        let (_, eg_bits) = crate::entropy::encode_frame(&out.modes, &out.coeffs, params.qp);
        let (_, cb_bits) = encode_frame_cabac(&out.modes, &out.coeffs, None, params.qp);
        assert!(
            (cb_bits as f64) < eg_bits as f64 * 0.95,
            "CABAC {cb_bits} should beat Exp-Golomb {eg_bits} by >5%"
        );
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let (modes, coeffs, _) = synthetic_fields(3, 3);
        let (bytes, _) = encode_frame_cabac(&modes, &coeffs, None, 30);
        // Heavy truncation: must error or decode garbage, never panic.
        let _ = decode_frame_cabac(&bytes[..2.min(bytes.len())]);
        let _ = decode_frame_cabac(&[0u8; 1]);
    }
}
