//! Sum-of-absolute-differences primitives.
//!
//! These are the innermost loops of the encoder (full-search block matching
//! evaluates millions of them per frame), so they operate on raw row slices
//! and avoid bounds checks in the hot path. The paper's CPU kernels use
//! SSE/AVX intrinsics; here the loops are written so LLVM auto-vectorizes
//! them (`u8 → u16` widening absolute difference over contiguous slices).

use feves_video::plane::Plane;

/// SAD between two `w × h` blocks given as (slice, stride) raster views.
///
/// `a` and `b` must each contain at least `(h-1)*stride + w` samples.
#[inline]
pub fn sad_block(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    let mut acc = 0u32;
    for y in 0..h {
        let ra = &a[y * a_stride..y * a_stride + w];
        let rb = &b[y * b_stride..y * b_stride + w];
        acc += row_sad(ra, rb);
    }
    acc
}

/// SAD of two equal-length rows (auto-vectorizable).
#[inline]
pub fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as i16 - y as i16).unsigned_abs() as u32)
        .sum()
}

/// The 4×4 SAD grid of one macroblock against one reference position:
/// sixteen 4×4 SADs in raster order. Larger-partition SADs are sums of
/// entries of this grid — the classic "fast full search" decomposition
/// (JM / x264) that lets one pass serve all 7 partition modes.
pub type SadGrid = [u32; 16];

/// Compute the [`SadGrid`] for the 16×16 block at `(cur_x, cur_y)` in `cur`
/// against the block at `(ref_x, ref_y)` in `reference`.
///
/// The reference position may partially leave the plane; samples are then
/// taken with border clamping (slower fallback path).
pub fn sad_grid_16x16(
    cur: &Plane<u8>,
    cur_x: usize,
    cur_y: usize,
    reference: &Plane<u8>,
    ref_x: isize,
    ref_y: isize,
) -> SadGrid {
    let mut grid = [0u32; 16];
    let inside = ref_x >= 0
        && ref_y >= 0
        && (ref_x as usize) + 16 <= reference.width()
        && (ref_y as usize) + 16 <= reference.height();
    if inside {
        let (rx, ry) = (ref_x as usize, ref_y as usize);
        for row in 0..16 {
            let ca = &cur.row(cur_y + row)[cur_x..cur_x + 16];
            let rb = &reference.row(ry + row)[rx..rx + 16];
            let gy = row / 4;
            for gx in 0..4 {
                grid[gy * 4 + gx] += row_sad(&ca[gx * 4..gx * 4 + 4], &rb[gx * 4..gx * 4 + 4]);
            }
        }
    } else {
        for row in 0..16 {
            let ca = &cur.row(cur_y + row)[cur_x..cur_x + 16];
            let gy = row / 4;
            for (col, &c) in ca.iter().enumerate() {
                let r = reference.get_clamped(ref_x + col as isize, ref_y + row as isize);
                let gx = col / 4;
                grid[gy * 4 + gx] += (c as i16 - r as i16).unsigned_abs() as u32;
            }
        }
    }
    grid
}

/// Sum the grid entries covering the `w × h` sub-block at pixel offset
/// `(ox, oy)` inside the macroblock (all multiples of 4).
#[inline]
pub fn grid_partition_sad(grid: &SadGrid, ox: usize, oy: usize, w: usize, h: usize) -> u32 {
    debug_assert!(
        ox.is_multiple_of(4) && oy.is_multiple_of(4) && w.is_multiple_of(4) && h.is_multiple_of(4)
    );
    let mut acc = 0u32;
    for gy in oy / 4..(oy + h) / 4 {
        for gx in ox / 4..(ox + w) / 4 {
            acc += grid[gy * 4 + gx];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn identical_blocks_zero_sad() {
        let p = plane_from_fn(32, 32, |x, y| (x * 7 + y * 13) as u8);
        let g = sad_grid_16x16(&p, 8, 8, &p, 8, 8);
        assert_eq!(g, [0u32; 16]);
    }

    #[test]
    fn sad_block_matches_manual() {
        let a = [10u8, 20, 30, 40];
        let b = [12u8, 18, 33, 40];
        assert_eq!(sad_block(&a, 2, &b, 2, 2, 2), (2 + 2 + 3));
    }

    #[test]
    fn grid_aggregation_equals_direct_sad() {
        let cur = plane_from_fn(48, 48, |x, y| ((x * 31) ^ (y * 17)) as u8);
        let rf = plane_from_fn(48, 48, |x, y| ((x * 13) ^ (y * 29)) as u8);
        let grid = sad_grid_16x16(&cur, 16, 16, &rf, 20, 12);

        // Full 16x16 from the grid equals a direct block SAD.
        let direct: u32 = (0..16)
            .map(|row| row_sad(&cur.row(16 + row)[16..32], &rf.row(12 + row)[20..36]))
            .sum();
        assert_eq!(grid_partition_sad(&grid, 0, 0, 16, 16), direct);

        // 8x8 quadrant.
        let q: u32 = (0..8)
            .map(|row| {
                row_sad(
                    &cur.row(16 + 8 + row)[24..32],
                    &rf.row(12 + 8 + row)[28..36],
                )
            })
            .sum();
        assert_eq!(grid_partition_sad(&grid, 8, 8, 8, 8), q);
    }

    #[test]
    fn out_of_bounds_reference_uses_clamping() {
        let cur = plane_from_fn(32, 32, |_, _| 100);
        let rf = plane_from_fn(32, 32, |_, _| 100);
        // Fully off the top-left corner still evaluates (clamped == 100).
        let g = sad_grid_16x16(&cur, 0, 0, &rf, -20, -20);
        assert_eq!(g, [0u32; 16]);
    }

    #[test]
    fn clamped_and_inside_paths_agree_on_border() {
        let cur = plane_from_fn(32, 32, |x, y| (x + y) as u8);
        let rf = plane_from_fn(32, 32, |x, y| (x * 2 + y) as u8);
        // Position exactly at the edge: inside path.
        let inside = sad_grid_16x16(&cur, 8, 8, &rf, 16, 16);
        // Same position forced through clamped path must agree.
        let mut clamped = [0u32; 16];
        for row in 0..16usize {
            for col in 0..16usize {
                let c = cur.get(8 + col, 8 + row);
                let r = rf.get_clamped(16 + col as isize, 16 + row as isize);
                clamped[(row / 4) * 4 + col / 4] += (c as i16 - r as i16).unsigned_abs() as u32;
            }
        }
        assert_eq!(inside, clamped);
    }
}
