//! Sum-of-absolute-differences primitives.
//!
//! These are the innermost loops of the encoder (full-search block matching
//! evaluates millions of them per frame). The paper's CPU kernels use
//! SSE/AVX intrinsics; here each primitive dispatches through
//! [`crate::kernels`] to either the scalar reference loop or the u64 SWAR
//! fast path (`FEVES_KERNELS=scalar|fast`), both bit-exact.

use feves_video::plane::Plane;

/// SAD between two `w × h` blocks given as (slice, stride) raster views.
///
/// `a` and `b` must each contain at least `(h-1)*stride + w` samples.
#[inline]
pub fn sad_block(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    crate::kernels::sad_block(a, a_stride, b, b_stride, w, h)
}

/// SAD of two equal-length rows.
///
/// # Panics
/// If `a.len() != b.len()`, in **all** build profiles — see
/// [`crate::kernels::row_sad`].
#[inline]
pub fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    crate::kernels::row_sad(a, b)
}

/// The 4×4 SAD grid of one macroblock against one reference position:
/// sixteen 4×4 SADs in raster order. Larger-partition SADs are sums of
/// entries of this grid — the classic "fast full search" decomposition
/// (JM / x264) that lets one pass serve all 7 partition modes.
pub type SadGrid = [u32; 16];

/// Compute the [`SadGrid`] for the 16×16 block at `(cur_x, cur_y)` in `cur`
/// against the block at `(ref_x, ref_y)` in `reference`.
///
/// The reference position may partially leave the plane; samples are then
/// taken with border clamping (slower fallback path).
#[inline]
pub fn sad_grid_16x16(
    cur: &Plane<u8>,
    cur_x: usize,
    cur_y: usize,
    reference: &Plane<u8>,
    ref_x: isize,
    ref_y: isize,
) -> SadGrid {
    crate::kernels::sad_grid_16x16(cur, cur_x, cur_y, reference, ref_x, ref_y)
}

/// Sum the grid entries covering the `w × h` sub-block at pixel offset
/// `(ox, oy)` inside the macroblock (all multiples of 4).
#[inline]
pub fn grid_partition_sad(grid: &SadGrid, ox: usize, oy: usize, w: usize, h: usize) -> u32 {
    debug_assert!(
        ox.is_multiple_of(4) && oy.is_multiple_of(4) && w.is_multiple_of(4) && h.is_multiple_of(4)
    );
    let mut acc = 0u32;
    for gy in oy / 4..(oy + h) / 4 {
        for gx in ox / 4..(ox + w) / 4 {
            acc += grid[gy * 4 + gx];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn identical_blocks_zero_sad() {
        let p = plane_from_fn(32, 32, |x, y| (x * 7 + y * 13) as u8);
        let g = sad_grid_16x16(&p, 8, 8, &p, 8, 8);
        assert_eq!(g, [0u32; 16]);
    }

    #[test]
    fn sad_block_matches_manual() {
        let a = [10u8, 20, 30, 40];
        let b = [12u8, 18, 33, 40];
        assert_eq!(sad_block(&a, 2, &b, 2, 2, 2), (2 + 2 + 3));
    }

    #[test]
    fn grid_aggregation_equals_direct_sad() {
        let cur = plane_from_fn(48, 48, |x, y| ((x * 31) ^ (y * 17)) as u8);
        let rf = plane_from_fn(48, 48, |x, y| ((x * 13) ^ (y * 29)) as u8);
        let grid = sad_grid_16x16(&cur, 16, 16, &rf, 20, 12);

        // Full 16x16 from the grid equals a direct block SAD.
        let direct: u32 = (0..16)
            .map(|row| row_sad(&cur.row(16 + row)[16..32], &rf.row(12 + row)[20..36]))
            .sum();
        assert_eq!(grid_partition_sad(&grid, 0, 0, 16, 16), direct);

        // 8x8 quadrant.
        let q: u32 = (0..8)
            .map(|row| {
                row_sad(
                    &cur.row(16 + 8 + row)[24..32],
                    &rf.row(12 + 8 + row)[28..36],
                )
            })
            .sum();
        assert_eq!(grid_partition_sad(&grid, 8, 8, 8, 8), q);
    }

    #[test]
    fn out_of_bounds_reference_uses_clamping() {
        let cur = plane_from_fn(32, 32, |_, _| 100);
        let rf = plane_from_fn(32, 32, |_, _| 100);
        // Fully off the top-left corner still evaluates (clamped == 100).
        let g = sad_grid_16x16(&cur, 0, 0, &rf, -20, -20);
        assert_eq!(g, [0u32; 16]);
    }

    #[test]
    fn clamped_and_inside_paths_agree_on_border() {
        let cur = plane_from_fn(32, 32, |x, y| (x + y) as u8);
        let rf = plane_from_fn(32, 32, |x, y| (x * 2 + y) as u8);
        // Position exactly at the edge: inside path.
        let inside = sad_grid_16x16(&cur, 8, 8, &rf, 16, 16);
        // Same position forced through clamped path must agree.
        let mut clamped = [0u32; 16];
        for row in 0..16usize {
            for col in 0..16usize {
                let c = cur.get(8 + col, 8 + row);
                let r = rf.get_clamped(16 + col as isize, 16 + row as isize);
                clamped[(row / 4) * 4 + col / 4] += (c as i16 - r as i16).unsigned_abs() as u32;
            }
        }
        assert_eq!(inside, clamped);
    }

    // ---- scalar vs fast differentials (direct calls, no global flip) ----

    #[test]
    fn differential_row_sad_all_lengths() {
        for len in 0..64usize {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 101 + 63) as u8).collect();
            assert_eq!(
                kernels::scalar::row_sad(&a, &b),
                kernels::fast::row_sad(&a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn differential_sad_block_strided() {
        let a: Vec<u8> = (0..40 * 24).map(|i| (i * 7 % 251) as u8).collect();
        let b: Vec<u8> = (0..48 * 24).map(|i| (i * 13 % 241) as u8).collect();
        for &(w, h) in &[(4usize, 4usize), (8, 8), (16, 16), (7, 5), (13, 3)] {
            assert_eq!(
                kernels::scalar::sad_block(&a, 40, &b, 48, w, h),
                kernels::fast::sad_block(&a, 40, &b, 48, w, h),
                "{w}x{h}"
            );
        }
    }

    #[test]
    fn differential_grid_inside_and_border() {
        let cur = plane_from_fn(64, 64, |x, y| ((x * 29) ^ (y * 41)) as u8);
        let rf = plane_from_fn(64, 64, |x, y| ((x * 3).wrapping_add(y * 59)) as u8);
        // Sweep positions crossing every border and the fully-inside core.
        for ry in (-20..=68isize).step_by(4) {
            for rx in (-20..=68isize).step_by(4) {
                assert_eq!(
                    kernels::scalar::sad_grid_16x16(&cur, 16, 16, &rf, rx, ry),
                    kernels::fast::sad_grid_16x16(&cur, 16, 16, &rf, rx, ry),
                    "ref pos ({rx},{ry})"
                );
            }
        }
    }

    #[test]
    fn differential_extreme_values() {
        // 0/255 checkerboards stress the SWAR bias trick at both extremes.
        let cur = plane_from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let rf = plane_from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 255 } else { 0 });
        assert_eq!(
            kernels::scalar::sad_grid_16x16(&cur, 0, 0, &rf, 5, 3),
            kernels::fast::sad_grid_16x16(&cur, 0, 0, &rf, 5, 3),
        );
        let full = kernels::fast::sad_grid_16x16(&cur, 0, 0, &rf, 0, 0);
        assert_eq!(grid_partition_sad(&full, 0, 0, 16, 16), 255 * 256);
    }
}
