//! Entropy coding: Exp-Golomb bit codes and CAVLC-style run/level coding of
//! quantized coefficients, producing the output bitstream of the encoder.
//!
//! The paper's framework treats entropy coding as outside the measured
//! inter-loop (it is pipelined on the CPU after TQ), but a real encoder
//! needs a bitstream: this module provides a compact, self-consistent one —
//! zigzag-scanned (run, level) pairs with Exp-Golomb codes — together with a
//! decoder used by the round-trip tests to prove the stream is lossless
//! w.r.t. the quantized data.

use crate::mc::{MbMode, ModeField};
use crate::recon::{CoeffField, MbCoeffs};
use crate::sme::SmeBlockMv;
use crate::types::{PartitionMode, QpelMv, ALL_PARTITION_MODES};
use bytes::{BufMut, Bytes, BytesMut};

/// Zigzag scan order of a 4×4 block (H.264 Table 8-13, frame scan).
pub const ZIGZAG_4X4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// MSB-first bit writer.
pub struct BitWriter {
    buf: BytesMut,
    cur: u64,
    nbits: u32,
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        BitWriter {
            buf: BytesMut::new(),
            cur: 0,
            nbits: 0,
        }
    }

    /// Append the `n` low bits of `v`, MSB first (`n <= 32`).
    pub fn put_bits(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || v < (1u32 << n));
        self.cur = (self.cur << n) | v as u64;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.put_u8(((self.cur >> self.nbits) & 0xFF) as u8);
        }
    }

    /// Append one bit.
    pub fn put_bit(&mut self, b: bool) {
        self.put_bits(b as u32, 1);
    }

    /// Unsigned Exp-Golomb.
    pub fn ue(&mut self, v: u32) {
        let code = v as u64 + 1;
        let len = 64 - code.leading_zeros(); // bits in code
        self.put_bits(0, len - 1);
        // Write `code` in `len` bits (may exceed 32 for huge v; split).
        if len > 32 {
            self.put_bits((code >> 32) as u32, len - 32);
            self.put_bits((code & 0xFFFF_FFFF) as u32, 32);
        } else {
            self.put_bits(code as u32, len);
        }
    }

    /// Signed Exp-Golomb (`0, 1, -1, 2, -2, …`).
    pub fn se(&mut self, v: i32) {
        let mapped = if v > 0 {
            (v as u32) * 2 - 1
        } else {
            (-(v as i64) as u32) * 2
        };
        self.ue(mapped);
    }

    /// Total bits written so far (incl. pending).
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Byte-align with zero bits and return the stream.
    pub fn finish(mut self) -> Bytes {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put_bits(0, pad);
        }
        self.buf.freeze()
    }
}

/// MSB-first bit reader over a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    byte_pos: usize,
    bit_pos: u32,
}

/// Error type for bitstream decoding.
#[derive(Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Read one bit.
    pub fn bit(&mut self) -> Result<bool, DecodeError> {
        if self.byte_pos >= self.data.len() {
            return Err(DecodeError("past end of stream".into()));
        }
        let b = (self.data[self.byte_pos] >> (7 - self.bit_pos)) & 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Ok(b != 0)
    }

    /// Read `n` bits MSB-first (`n <= 32`).
    pub fn bits(&mut self, n: u32) -> Result<u32, DecodeError> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.bit()? as u32;
        }
        Ok(v)
    }

    /// Unsigned Exp-Golomb.
    pub fn ue(&mut self) -> Result<u32, DecodeError> {
        let mut zeros = 0u32;
        while !self.bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(DecodeError("ue prefix too long".into()));
            }
        }
        let tail = self.bits(zeros)?;
        Ok(((1u64 << zeros) - 1 + tail as u64) as u32)
    }

    /// Signed Exp-Golomb.
    pub fn se(&mut self) -> Result<i32, DecodeError> {
        let m = self.ue()? as i64;
        Ok(if m % 2 == 1 { (m + 1) / 2 } else { -(m / 2) } as i32)
    }
}

/// Encode one 4×4 block of quantized levels as zigzag (run, level) pairs.
pub fn encode_block(w: &mut BitWriter, levels: &[i16; 16]) {
    let scanned: Vec<i16> = ZIGZAG_4X4.iter().map(|&i| levels[i]).collect();
    let total = scanned.iter().filter(|&&v| v != 0).count() as u32;
    w.ue(total);
    let mut run = 0u32;
    for &v in &scanned {
        if v == 0 {
            run += 1;
        } else {
            w.ue(run);
            w.se(v as i32);
            run = 0;
        }
    }
}

/// Decode one 4×4 block written by [`encode_block`].
pub fn decode_block(r: &mut BitReader<'_>) -> Result<[i16; 16], DecodeError> {
    let total = r.ue()?;
    if total > 16 {
        return Err(DecodeError(format!("block claims {total} coefficients")));
    }
    let mut scanned = [0i16; 16];
    let mut pos = 0usize;
    for _ in 0..total {
        let run = r.ue()? as usize;
        let level = r.se()?;
        pos += run;
        if pos >= 16 {
            return Err(DecodeError("run past block end".into()));
        }
        scanned[pos] = level as i16;
        pos += 1;
    }
    let mut out = [0i16; 16];
    for (s, &z) in ZIGZAG_4X4.iter().enumerate() {
        out[z] = scanned[s];
    }
    Ok(out)
}

/// Median motion-vector predictor over the 4×4 grid (H.264 §8.4.1.3
/// style): each partition's MV is predicted from the component-wise median
/// of its left (A), above (B) and above-right (C) neighbours' MVs, with
/// standard availability fallbacks. Both encoder and decoder advance an
/// identical [`MvPredictor`], so only the (usually tiny) differences are
/// Exp-Golomb coded.
pub struct MvPredictor {
    grid: Vec<Option<QpelMv>>,
    cols4: usize,
    rows4: usize,
}

impl MvPredictor {
    /// Fresh predictor for an `mb_cols × mb_rows` frame.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        let cols4 = mb_cols * 4;
        let rows4 = mb_rows * 4;
        MvPredictor {
            grid: vec![None; cols4 * rows4],
            cols4,
            rows4,
        }
    }

    fn at(&self, x4: isize, y4: isize) -> Option<QpelMv> {
        if x4 < 0 || y4 < 0 || x4 >= self.cols4 as isize || y4 >= self.rows4 as isize {
            return None;
        }
        self.grid[y4 as usize * self.cols4 + x4 as usize]
    }

    /// Predict the MV of a block whose top-left 4×4 cell is `(x4, y4)` and
    /// which spans `w4` cells horizontally.
    pub fn predict(&self, x4: usize, y4: usize, w4: usize) -> QpelMv {
        let a = self.at(x4 as isize - 1, y4 as isize);
        let b = self.at(x4 as isize, y4 as isize - 1);
        let c = self
            .at(x4 as isize + w4 as isize, y4 as isize - 1)
            .or_else(|| self.at(x4 as isize - 1, y4 as isize - 1));
        match (a, b, c) {
            // Only the left neighbour exists (first row): use it directly.
            (Some(a), None, None) => a,
            (None, None, None) => QpelMv::ZERO,
            _ => {
                let a = a.unwrap_or(QpelMv::ZERO);
                let b = b.unwrap_or(QpelMv::ZERO);
                let c = c.unwrap_or(QpelMv::ZERO);
                QpelMv::new(median3(a.x, b.x, c.x), median3(a.y, b.y, c.y))
            }
        }
    }

    /// Record a coded block's MV over its `w4 × h4` cell footprint.
    pub fn record(&mut self, x4: usize, y4: usize, w4: usize, h4: usize, mv: QpelMv) {
        for dy in 0..h4 {
            for dx in 0..w4 {
                let idx = (y4 + dy) * self.cols4 + (x4 + dx);
                self.grid[idx] = Some(mv);
            }
        }
    }
}

fn median3(a: i16, b: i16, c: i16) -> i16 {
    a.max(b.min(c)).min(b.max(c))
}

fn mode_from_index(idx: usize) -> Result<PartitionMode, DecodeError> {
    ALL_PARTITION_MODES
        .get(idx)
        .copied()
        .ok_or_else(|| DecodeError(format!("bad mode index {idx}")))
}

/// Encode one inter macroblock: mode, per-partition (rf, mvd), coded mask
/// and coefficient blocks. Motion vectors are differentially coded against
/// the previous partition of the same MB (first partition against zero).
pub fn encode_mb(w: &mut BitWriter, mode: &MbMode, coeffs: &MbCoeffs) {
    w.ue(mode.mode.index() as u32);
    let mut pred = QpelMv::ZERO;
    for i in 0..mode.mode.count() {
        let blk = &mode.mvs[i];
        w.ue(blk.rf as u32);
        w.se((blk.mv.x - pred.x) as i32);
        w.se((blk.mv.y - pred.y) as i32);
        pred = blk.mv;
    }
    w.put_bits(coeffs.coded_mask as u32, 16);
    for b in 0..16 {
        if coeffs.coded_mask & (1 << b) != 0 {
            encode_block(w, &coeffs.blocks[b]);
        }
    }
}

/// Decode one macroblock written by [`encode_mb`].
pub fn decode_mb(r: &mut BitReader<'_>) -> Result<(MbMode, MbCoeffs), DecodeError> {
    let mode = mode_from_index(r.ue()? as usize)?;
    let mut mvs = [SmeBlockMv::default(); 16];
    let mut pred = QpelMv::ZERO;
    for mv_slot in mvs.iter_mut().take(mode.count()) {
        let rf = r.ue()? as u8;
        let dx = r.se()? as i16;
        let dy = r.se()? as i16;
        let mv = QpelMv::new(pred.x + dx, pred.y + dy);
        *mv_slot = SmeBlockMv { rf, mv, cost: 0 };
        pred = mv;
    }
    let coded_mask = r.bits(16)? as u16;
    let mut coeffs = MbCoeffs {
        blocks: [[0i16; 16]; 16],
        coded_mask,
    };
    for b in 0..16 {
        if coded_mask & (1 << b) != 0 {
            coeffs.blocks[b] = decode_block(r)?;
        }
    }
    Ok((MbMode { mode, mvs, cost: 0 }, coeffs))
}

/// Encode one inter macroblock with median MV prediction (see
/// [`MvPredictor`]); `(mbx, mby)` locate the MB for the prediction grid.
pub fn encode_mb_pred(
    w: &mut BitWriter,
    mode: &MbMode,
    coeffs: &MbCoeffs,
    mbx: usize,
    mby: usize,
    pred: &mut MvPredictor,
) {
    w.ue(mode.mode.index() as u32);
    let (pw, ph) = mode.mode.dims();
    let (w4, h4) = (pw / 4, ph / 4);
    for i in 0..mode.mode.count() {
        let blk = &mode.mvs[i];
        let (ox, oy) = mode.mode.offset(i);
        let (x4, y4) = (mbx * 4 + ox / 4, mby * 4 + oy / 4);
        let p = pred.predict(x4, y4, w4);
        w.ue(blk.rf as u32);
        w.se((blk.mv.x - p.x) as i32);
        w.se((blk.mv.y - p.y) as i32);
        pred.record(x4, y4, w4, h4, blk.mv);
    }
    w.put_bits(coeffs.coded_mask as u32, 16);
    for b in 0..16 {
        if coeffs.coded_mask & (1 << b) != 0 {
            encode_block(w, &coeffs.blocks[b]);
        }
    }
}

/// Decode one macroblock written by [`encode_mb_pred`].
pub fn decode_mb_pred(
    r: &mut BitReader<'_>,
    mbx: usize,
    mby: usize,
    pred: &mut MvPredictor,
) -> Result<(MbMode, MbCoeffs), DecodeError> {
    let mode = mode_from_index(r.ue()? as usize)?;
    let (pw, ph) = mode.dims();
    let (w4, h4) = (pw / 4, ph / 4);
    let mut mvs = [SmeBlockMv::default(); 16];
    for (i, mv_slot) in mvs.iter_mut().enumerate().take(mode.count()) {
        let (ox, oy) = mode.offset(i);
        let (x4, y4) = (mbx * 4 + ox / 4, mby * 4 + oy / 4);
        let p = pred.predict(x4, y4, w4);
        let rf = r.ue()? as u8;
        let dx = r.se()? as i16;
        let dy = r.se()? as i16;
        let mv = QpelMv::new(p.x + dx, p.y + dy);
        *mv_slot = SmeBlockMv { rf, mv, cost: 0 };
        pred.record(x4, y4, w4, h4, mv);
    }
    let coded_mask = r.bits(16)? as u16;
    let mut coeffs = MbCoeffs {
        blocks: [[0i16; 16]; 16],
        coded_mask,
    };
    for b in 0..16 {
        if coded_mask & (1 << b) != 0 {
            coeffs.blocks[b] = decode_block(r)?;
        }
    }
    Ok((MbMode { mode, mvs, cost: 0 }, coeffs))
}

/// Encode one macroblock's chroma coefficients (mask + coded blocks).
pub fn encode_mb_chroma(w: &mut BitWriter, c: &crate::chroma::MbChromaCoeffs) {
    w.put_bits(c.coded_mask as u32, 8);
    for (i, blk) in c.cb.iter().enumerate() {
        if c.coded_mask & (1 << i) != 0 {
            encode_block(w, blk);
        }
    }
    for (i, blk) in c.cr.iter().enumerate() {
        if c.coded_mask & (1 << (i + 4)) != 0 {
            encode_block(w, blk);
        }
    }
}

/// Decode chroma coefficients written by [`encode_mb_chroma`].
pub fn decode_mb_chroma(
    r: &mut BitReader<'_>,
) -> Result<crate::chroma::MbChromaCoeffs, DecodeError> {
    let coded_mask = r.bits(8)? as u8;
    let mut c = crate::chroma::MbChromaCoeffs {
        coded_mask,
        ..Default::default()
    };
    for i in 0..4 {
        if coded_mask & (1 << i) != 0 {
            c.cb[i] = decode_block(r)?;
        }
    }
    for i in 0..4 {
        if coded_mask & (1 << (i + 4)) != 0 {
            c.cr[i] = decode_block(r)?;
        }
    }
    Ok(c)
}

/// Encode a whole YUV inter frame: the luma syntax of [`encode_frame`]
/// followed, per macroblock, by its chroma coefficients.
pub fn encode_frame_yuv(
    modes: &ModeField,
    coeffs: &CoeffField,
    chroma: &crate::chroma::ChromaField,
    qp: u8,
) -> (Bytes, u64) {
    let mut w = BitWriter::new();
    w.ue(modes.mb_cols() as u32);
    w.ue(modes.mb_rows() as u32);
    w.ue(qp as u32);
    let mut pred = MvPredictor::new(modes.mb_cols(), modes.mb_rows());
    for mby in 0..modes.mb_rows() {
        for mbx in 0..modes.mb_cols() {
            encode_mb_pred(
                &mut w,
                modes.mb(mbx, mby),
                coeffs.mb(mbx, mby),
                mbx,
                mby,
                &mut pred,
            );
            encode_mb_chroma(&mut w, chroma.mb(mbx, mby));
        }
    }
    let bits = w.bit_len();
    (w.finish(), bits)
}

/// Decode a frame written by [`encode_frame_yuv`].
#[allow(clippy::type_complexity)]
pub fn decode_frame_yuv(
    data: &[u8],
) -> Result<(ModeField, CoeffField, crate::chroma::ChromaField, u8), DecodeError> {
    let mut r = BitReader::new(data);
    let mb_cols = r.ue()? as usize;
    let mb_rows = r.ue()? as usize;
    if mb_cols == 0 || mb_rows == 0 || mb_cols > 1024 || mb_rows > 1024 {
        return Err(DecodeError(format!("bad dimensions {mb_cols}x{mb_rows}")));
    }
    let qp = r.ue()? as u8;
    let mut modes = ModeField::new(mb_cols, mb_rows);
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    let mut chroma = crate::chroma::ChromaField::new(mb_cols, mb_rows);
    let mut pred = MvPredictor::new(mb_cols, mb_rows);
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let (m, c) = decode_mb_pred(&mut r, mbx, mby, &mut pred)?;
            *modes.mb_mut(mbx, mby) = m;
            *coeffs.mb_mut(mbx, mby) = c;
            *chroma.mb_mut(mbx, mby) = decode_mb_chroma(&mut r)?;
        }
    }
    Ok((modes, coeffs, chroma, qp))
}

/// Encode a whole inter frame (dimension header + raster MBs); returns the
/// bitstream and its exact bit length.
pub fn encode_frame(modes: &ModeField, coeffs: &CoeffField, qp: u8) -> (Bytes, u64) {
    let mut w = BitWriter::new();
    w.ue(modes.mb_cols() as u32);
    w.ue(modes.mb_rows() as u32);
    w.ue(qp as u32);
    let mut pred = MvPredictor::new(modes.mb_cols(), modes.mb_rows());
    for mby in 0..modes.mb_rows() {
        for mbx in 0..modes.mb_cols() {
            encode_mb_pred(
                &mut w,
                modes.mb(mbx, mby),
                coeffs.mb(mbx, mby),
                mbx,
                mby,
                &mut pred,
            );
        }
    }
    let bits = w.bit_len();
    (w.finish(), bits)
}

/// Decode a frame written by [`encode_frame`].
pub fn decode_frame(data: &[u8]) -> Result<(ModeField, CoeffField, u8), DecodeError> {
    let mut r = BitReader::new(data);
    let mb_cols = r.ue()? as usize;
    let mb_rows = r.ue()? as usize;
    if mb_cols == 0 || mb_rows == 0 || mb_cols > 1024 || mb_rows > 1024 {
        return Err(DecodeError(format!("bad dimensions {mb_cols}x{mb_rows}")));
    }
    let qp = r.ue()? as u8;
    let mut modes = ModeField::new(mb_cols, mb_rows);
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    let mut pred = MvPredictor::new(mb_cols, mb_rows);
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let (m, c) = decode_mb_pred(&mut r, mbx, mby, &mut pred)?;
            *modes.mb_mut(mbx, mby) = m;
            *coeffs.mb_mut(mbx, mby) = c;
        }
    }
    Ok((modes, coeffs, qp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_se_roundtrip() {
        let mut w = BitWriter::new();
        let values = [0u32, 1, 2, 3, 7, 8, 255, 256, 65535, 1_000_000];
        for &v in &values {
            w.ue(v);
        }
        let signed = [0i32, 1, -1, 2, -2, 17, -300, 40_000, -40_000];
        for &v in &signed {
            w.se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.ue().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.se().unwrap(), v);
        }
    }

    #[test]
    fn ue_known_codewords() {
        // ue(0) = "1", ue(1) = "010", ue(2) = "011".
        let mut w = BitWriter::new();
        w.ue(0);
        w.ue(1);
        w.ue(2);
        // 1 010 011 + one pad bit = 1010_0110.
        assert_eq!(w.bit_len(), 7);
        let b = w.finish();
        assert_eq!(&b[..], &[0b1010_0110]);
    }

    #[test]
    fn block_roundtrip_sparse_and_dense() {
        let sparse: [i16; 16] = {
            let mut b = [0i16; 16];
            b[0] = 12;
            b[5] = -3;
            b[15] = 1;
            b
        };
        let dense: [i16; 16] = core::array::from_fn(|i| (i as i16 % 5) - 2);
        for blk in [sparse, dense, [0i16; 16]] {
            let mut w = BitWriter::new();
            encode_block(&mut w, &blk);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_block(&mut r).unwrap(), blk);
        }
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 16];
        for &z in &ZIGZAG_4X4 {
            assert!(!seen[z]);
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn frame_roundtrip() {
        let (mb_cols, mb_rows) = (3, 2);
        let mut modes = ModeField::new(mb_cols, mb_rows);
        let mut coeffs = CoeffField::new(mb_cols, mb_rows);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                let mode = ALL_PARTITION_MODES[(mbx + mby) % 7];
                let mut mvs = [SmeBlockMv::default(); 16];
                for (i, mv) in mvs.iter_mut().enumerate().take(mode.count()) {
                    *mv = SmeBlockMv {
                        rf: ((mbx + i) % 3) as u8,
                        mv: QpelMv::new((mbx as i16) * 5 - 7, (mby as i16) * 3 - 2 + i as i16),
                        cost: 0,
                    };
                }
                *modes.mb_mut(mbx, mby) = MbMode { mode, mvs, cost: 0 };
                let mb = coeffs.mb_mut(mbx, mby);
                if (mbx + mby) % 2 == 0 {
                    mb.blocks[3][0] = 9;
                    mb.blocks[3][7] = -2;
                    mb.coded_mask = 1 << 3;
                }
            }
        }
        let (bytes, bits) = encode_frame(&modes, &coeffs, 28);
        assert!(bits > 0 && bits <= bytes.len() as u64 * 8);
        let (dm, dc, qp) = decode_frame(&bytes).unwrap();
        assert_eq!(qp, 28);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                let a = modes.mb(mbx, mby);
                let b = dm.mb(mbx, mby);
                assert_eq!(a.mode, b.mode);
                for i in 0..a.mode.count() {
                    assert_eq!(a.mvs[i].rf, b.mvs[i].rf);
                    assert_eq!(a.mvs[i].mv, b.mvs[i].mv);
                }
                assert_eq!(coeffs.mb(mbx, mby), dc.mb(mbx, mby));
            }
        }
    }

    #[test]
    fn truncated_stream_is_error_not_panic() {
        let mut modes = ModeField::new(2, 2);
        let coeffs = CoeffField::new(2, 2);
        for mby in 0..2 {
            for mbx in 0..2 {
                modes.mb_mut(mbx, mby).mvs = [SmeBlockMv::default(); 16];
            }
        }
        let (bytes, _) = encode_frame(&modes, &coeffs, 30);
        for cut in [1usize, 2, bytes.len() / 2] {
            let res = decode_frame(&bytes[..cut.min(bytes.len() - 1)]);
            // Either a clean error or (for generous cuts) success — never a
            // panic. Most cuts must error.
            let _ = res;
        }
        assert!(decode_frame(&bytes[..1]).is_err());
    }

    #[test]
    fn bit_len_counts_exactly() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
        let b = w.finish();
        assert_eq!(b.len(), 2);
    }
}

#[cfg(test)]
mod mvpred_tests {
    use super::*;
    use crate::sme::SmeBlockMv;

    #[test]
    fn median_predictor_fallback_rules() {
        let mut p = MvPredictor::new(2, 2);
        // Nothing coded yet: zero.
        assert_eq!(p.predict(0, 0, 4), QpelMv::ZERO);
        // Only a left neighbour: use it directly.
        p.record(0, 0, 4, 4, QpelMv::new(12, -4));
        assert_eq!(p.predict(4, 0, 4), QpelMv::new(12, -4));
        // With above + above-right, the median rule kicks in.
        let mut p = MvPredictor::new(3, 2);
        p.record(0, 0, 4, 4, QpelMv::new(0, 0)); // above-left
        p.record(4, 0, 4, 4, QpelMv::new(8, 8)); // above
        p.record(8, 0, 4, 4, QpelMv::new(16, 0)); // above-right
        p.record(0, 4, 4, 4, QpelMv::new(4, 4)); // left
                                                 // A=(4,4) B=(8,8) C=(16,0) → median = (8, 4).
        assert_eq!(p.predict(4, 4, 4), QpelMv::new(8, 4));
    }

    fn field_with_mv(
        mb_cols: usize,
        mb_rows: usize,
        f: impl Fn(usize, usize) -> QpelMv,
    ) -> (ModeField, CoeffField) {
        let mut modes = ModeField::new(mb_cols, mb_rows);
        let coeffs = CoeffField::new(mb_cols, mb_rows);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                modes.mb_mut(mbx, mby).mvs = [SmeBlockMv {
                    rf: 0,
                    mv: f(mbx, mby),
                    cost: 0,
                }; 16];
                modes.mb_mut(mbx, mby).cost = 0;
            }
        }
        (modes, coeffs)
    }

    #[test]
    fn predictive_frame_roundtrips() {
        let (modes, coeffs) = field_with_mv(4, 3, |x, y| {
            QpelMv::new((x as i16) * 5 - 7, (y as i16) * 3 - 2)
        });
        let (bytes, _) = encode_frame(&modes, &coeffs, 28);
        let (dm, _, qp) = decode_frame(&bytes).unwrap();
        assert_eq!(qp, 28);
        for mby in 0..3 {
            for mbx in 0..4 {
                assert_eq!(
                    dm.mb(mbx, mby).mvs[0].mv,
                    modes.mb(mbx, mby).mvs[0].mv,
                    "mb {mbx},{mby}"
                );
            }
        }
    }

    #[test]
    fn coherent_motion_codes_small() {
        // A uniform motion field must cost far fewer MV bits than an
        // incoherent one — the point of median prediction.
        let (uniform, c1) = field_with_mv(8, 6, |_, _| QpelMv::new(40, -24));
        let (random, c2) = field_with_mv(8, 6, |x, y| {
            QpelMv::new(
                (((x * 37 + y * 91) % 100) as i16) - 50,
                (((x * 53 + y * 17) % 100) as i16) - 50,
            )
        });
        let (_, uniform_bits) = encode_frame(&uniform, &c1, 28);
        let (_, random_bits) = encode_frame(&random, &c2, 28);
        assert!(
            (uniform_bits as f64) < 0.5 * random_bits as f64,
            "uniform {uniform_bits} vs random {random_bits}"
        );
    }
}
