//! Chroma (4:2:0) coding.
//!
//! H.264/AVC derives chroma prediction from the luma decision: the chroma
//! motion vector is the luma quarter-pel vector reinterpreted in chroma
//! eighth-pel units (chroma planes are half resolution), sampled with
//! bilinear weights; the chroma QP is a table-mapped companion of the luma
//! QP. Each macroblock covers an 8×8 region per chroma component, coded as
//! four 4×4 transform blocks with the shared TQ/TQ⁻¹ path.
//!
//! Chroma is part of the `R*` work (it rides with MC/TQ/recon on the single
//! selected device), so — unlike the luma ME/INT/SME kernels — it needs no
//! row distribution machinery. The in-loop deblocking of chroma is omitted
//! (a documented simplification; chroma blocking at the paper's QP 27/28 is
//! visually negligible and DBL is time-modelled as a whole).

use crate::mc::ModeField;
use crate::quant::{has_coefficients, itq_block, tq_block};
use crate::types::QpelMv;
use feves_video::plane::Plane;

/// Chroma QP as a function of luma QP (H.264 Table 8-15).
pub fn chroma_qp(luma_qp: u8) -> u8 {
    const MAP: [u8; 22] = [
        29, 30, 31, 32, 32, 33, 34, 34, 35, 35, 36, 36, 37, 37, 37, 38, 38, 38, 39, 39, 39, 39,
    ];
    if luma_qp < 30 {
        luma_qp
    } else {
        MAP[(luma_qp - 30) as usize]
    }
}

/// Bilinear eighth-pel chroma sample at chroma-plane position
/// `(8·x + fx, 8·y + fy)` (H.264 §8.4.2.2.2 chroma interpolation).
#[inline]
fn sample_eighth_pel(p: &Plane<u8>, x: isize, y: isize, fx: i32, fy: i32) -> u8 {
    debug_assert!((0..8).contains(&fx) && (0..8).contains(&fy));
    let a = p.get_clamped(x, y) as i32;
    let b = p.get_clamped(x + 1, y) as i32;
    let c = p.get_clamped(x, y + 1) as i32;
    let d = p.get_clamped(x + 1, y + 1) as i32;
    let v = (8 - fx) * (8 - fy) * a + fx * (8 - fy) * b + (8 - fx) * fy * c + fx * fy * d;
    ((v + 32) >> 6) as u8
}

/// Predict a `w × h` chroma block anchored at chroma position `(bx, by)`
/// displaced by the *luma* quarter-pel vector `mv` (which is exactly the
/// chroma eighth-pel vector).
pub fn predict_chroma_block(
    reference: &Plane<u8>,
    bx: usize,
    by: usize,
    mv: QpelMv,
    w: usize,
    h: usize,
    dst: &mut [i16],
) {
    debug_assert_eq!(dst.len(), w * h);
    let fx = (mv.x as i32).rem_euclid(8);
    let fy = (mv.y as i32).rem_euclid(8);
    let x0 = bx as isize + (mv.x as isize).div_euclid(8);
    let y0 = by as isize + (mv.y as isize).div_euclid(8);
    for row in 0..h {
        for col in 0..w {
            dst[row * w + col] =
                sample_eighth_pel(reference, x0 + col as isize, y0 + row as isize, fx, fy) as i16;
        }
    }
}

/// Quantized chroma coefficients of one macroblock: four 4×4 blocks per
/// component covering its 8×8 chroma footprint.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MbChromaCoeffs {
    /// Cb blocks (raster order within the 8×8 region).
    pub cb: [[i16; 16]; 4],
    /// Cr blocks.
    pub cr: [[i16; 16]; 4],
    /// Bits 0–3: coded Cb blocks; bits 4–7: coded Cr blocks.
    pub coded_mask: u8,
}

/// Chroma coefficients for a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromaField {
    mbs: Vec<MbChromaCoeffs>,
    mb_cols: usize,
    mb_rows: usize,
}

impl ChromaField {
    /// All-zero field.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        ChromaField {
            mbs: vec![MbChromaCoeffs::default(); mb_cols * mb_rows],
            mb_cols,
            mb_rows,
        }
    }

    /// Macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Coefficients of macroblock `(mbx, mby)`.
    pub fn mb(&self, mbx: usize, mby: usize) -> &MbChromaCoeffs {
        &self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable coefficients.
    pub fn mb_mut(&mut self, mbx: usize, mby: usize) -> &mut MbChromaCoeffs {
        &mut self.mbs[mby * self.mb_cols + mbx]
    }

    /// Total non-zero chroma levels.
    pub fn nonzero_levels(&self) -> usize {
        self.mbs
            .iter()
            .flat_map(|m| m.cb.iter().chain(m.cr.iter()))
            .flat_map(|b| b.iter())
            .filter(|&&v| v != 0)
            .count()
    }
}

/// Output of chroma encoding for one frame.
#[derive(Clone, Debug)]
pub struct ChromaOutput {
    /// Quantized coefficients.
    pub coeffs: ChromaField,
    /// Reconstructed Cb plane.
    pub recon_u: Plane<u8>,
    /// Reconstructed Cr plane.
    pub recon_v: Plane<u8>,
    /// Approximate coded bits (exact numbers come from the entropy coder).
    pub bits: u64,
}

/// Code one 8×8 chroma region: predict → TQ → TQ⁻¹ → reconstruct.
/// Returns the four quantized blocks and updates `recon`.
fn code_region(
    cf: &Plane<u8>,
    pred8: &[i16; 64],
    cx: usize,
    cy: usize,
    qp_c: u8,
    intra: bool,
    recon: &mut Plane<u8>,
) -> ([[i16; 16]; 4], u8, u64) {
    let mut blocks = [[0i16; 16]; 4];
    let mut mask = 0u8;
    let mut bits = 0u64;
    #[allow(clippy::needless_range_loop)] // blk indexes geometry AND blocks
    for blk in 0..4 {
        let bx = (blk % 2) * 4;
        let by = (blk / 2) * 4;
        let mut rbuf = [0i16; 16];
        for row in 0..4 {
            for col in 0..4 {
                let p = pred8[(by + row) * 8 + bx + col];
                rbuf[row * 4 + col] = cf.get(cx + bx + col, cy + by + row) as i16 - p;
            }
        }
        let levels = tq_block(&rbuf, qp_c, intra);
        if has_coefficients(&levels) {
            mask |= 1 << blk;
            bits += 6 * levels.iter().filter(|&&v| v != 0).count() as u64;
        }
        let r = itq_block(&levels, qp_c);
        for row in 0..4 {
            for col in 0..4 {
                let p = pred8[(by + row) * 8 + bx + col];
                let v = (p + r[row * 4 + col]).clamp(0, 255) as u8;
                recon.set(cx + bx + col, cy + by + row, v);
            }
        }
        blocks[blk] = levels;
    }
    (blocks, mask, bits)
}

/// Inter-code the chroma planes of a frame using the luma mode decisions.
///
/// `refs_u`/`refs_v` are the reconstructed chroma references, most recent
/// first, matching the luma reference list the modes index into.
pub fn encode_chroma_inter(
    cf_u: &Plane<u8>,
    cf_v: &Plane<u8>,
    refs_u: &[&Plane<u8>],
    refs_v: &[&Plane<u8>],
    modes: &ModeField,
    luma_qp: u8,
) -> ChromaOutput {
    assert_eq!(refs_u.len(), refs_v.len());
    let qp_c = chroma_qp(luma_qp);
    let mb_cols = modes.mb_cols();
    let mb_rows = modes.mb_rows();
    let mut coeffs = ChromaField::new(mb_cols, mb_rows);
    let mut recon_u: Plane<u8> = Plane::new(cf_u.width(), cf_u.height());
    let mut recon_v: Plane<u8> = Plane::new(cf_v.width(), cf_v.height());
    let mut bits = 0u64;

    let mut pred_u = [0i16; 64];
    let mut pred_v = [0i16; 64];
    let mut block = vec![0i16; 64];
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let m = modes.mb(mbx, mby);
            let (cx, cy) = (mbx * 8, mby * 8); // chroma MB anchor
                                               // Build the 8x8 chroma prediction from the winning partitions
                                               // (each luma partition maps to a half-size chroma block).
            let mode = m.mode;
            let (lw, lh) = mode.dims();
            let (w, h) = (lw / 2, lh / 2);
            for i in 0..mode.count() {
                let (ox, oy) = mode.offset(i);
                let (ox, oy) = (ox / 2, oy / 2);
                let blk = &m.mvs[i];
                for (pred, refs) in [(&mut pred_u, refs_u), (&mut pred_v, refs_v)] {
                    block.truncate(0);
                    block.resize(w * h, 0);
                    predict_chroma_block(
                        refs[blk.rf as usize],
                        cx + ox,
                        cy + oy,
                        blk.mv,
                        w,
                        h,
                        &mut block,
                    );
                    for row in 0..h {
                        for col in 0..w {
                            pred[(oy + row) * 8 + ox + col] = block[row * w + col];
                        }
                    }
                }
            }
            let (cb, cb_mask, b1) = code_region(cf_u, &pred_u, cx, cy, qp_c, false, &mut recon_u);
            let (cr, cr_mask, b2) = code_region(cf_v, &pred_v, cx, cy, qp_c, false, &mut recon_v);
            let mb = coeffs.mb_mut(mbx, mby);
            mb.cb = cb;
            mb.cr = cr;
            mb.coded_mask = cb_mask | (cr_mask << 4);
            bits += b1 + b2;
        }
    }
    ChromaOutput {
        coeffs,
        recon_u,
        recon_v,
        bits,
    }
}

/// Intra-code the chroma planes (8×8 DC prediction per component, the
/// H.264 chroma-DC mode).
pub fn encode_chroma_intra(
    cf_u: &Plane<u8>,
    cf_v: &Plane<u8>,
    mb_cols: usize,
    mb_rows: usize,
    luma_qp: u8,
) -> ChromaOutput {
    let qp_c = chroma_qp(luma_qp);
    let mut coeffs = ChromaField::new(mb_cols, mb_rows);
    let mut recon_u: Plane<u8> = Plane::new(cf_u.width(), cf_u.height());
    let mut recon_v: Plane<u8> = Plane::new(cf_v.width(), cf_v.height());
    let mut bits = 0u64;

    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let (cx, cy) = (mbx * 8, mby * 8);
            let mut masks = [0u8; 2];
            let mut blocks = [[[0i16; 16]; 4]; 2];
            for (ci, (cf, recon)) in [(cf_u, &mut recon_u), (cf_v, &mut recon_v)]
                .into_iter()
                .enumerate()
            {
                // DC from reconstructed neighbours.
                let mut sum = 0u32;
                let mut n = 0u32;
                if mby > 0 {
                    for x in 0..8 {
                        sum += recon.get(cx + x, cy - 1) as u32;
                    }
                    n += 8;
                }
                if mbx > 0 {
                    for y in 0..8 {
                        sum += recon.get(cx - 1, cy + y) as u32;
                    }
                    n += 8;
                }
                let dc = (sum + n / 2).checked_div(n).map_or(128, |v| v as i16);
                let pred8 = [dc; 64];
                let (blks, mask, b) = code_region(cf, &pred8, cx, cy, qp_c, true, recon);
                blocks[ci] = blks;
                masks[ci] = mask;
                bits += b + 1; // + mode bit
            }
            let mb = coeffs.mb_mut(mbx, mby);
            mb.cb = blocks[0];
            mb.cr = blocks[1];
            mb.coded_mask = masks[0] | (masks[1] << 4);
        }
    }
    ChromaOutput {
        coeffs,
        recon_u,
        recon_v,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::MbMode;
    use crate::sme::SmeBlockMv;
    use crate::types::PartitionMode;
    use feves_video::metrics::psnr;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn chroma_qp_mapping_matches_standard() {
        assert_eq!(chroma_qp(0), 0);
        assert_eq!(chroma_qp(29), 29);
        assert_eq!(chroma_qp(30), 29);
        assert_eq!(chroma_qp(39), 35);
        assert_eq!(chroma_qp(51), 39);
        // Monotone non-decreasing.
        for qp in 0..51u8 {
            assert!(chroma_qp(qp + 1) >= chroma_qp(qp));
        }
    }

    #[test]
    fn integer_mv_prediction_copies_reference() {
        let rf = plane_from_fn(32, 32, |x, y| ((x * 7) ^ (y * 3)) as u8);
        let mut dst = [0i16; 16];
        // mv = (16, -8) eighth-pels = (2, -1) full chroma pels.
        predict_chroma_block(&rf, 8, 8, QpelMv::new(16, -8), 4, 4, &mut dst);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(dst[row * 4 + col], rf.get(10 + col, 7 + row) as i16);
            }
        }
    }

    #[test]
    fn half_pel_chroma_is_average_on_ramp() {
        let rf = plane_from_fn(32, 8, |x, _| (x * 8) as u8);
        let mut dst = [0i16; 4];
        // fx = 4/8: halfway between columns.
        predict_chroma_block(&rf, 4, 2, QpelMv::new(4, 0), 2, 2, &mut dst);
        assert_eq!(
            dst[0],
            ((rf.get(4, 2) as i32 + rf.get(5, 2) as i32 + 1) / 2) as i16
        );
    }

    fn zero_mode_field(mb_cols: usize, mb_rows: usize) -> ModeField {
        let mut modes = ModeField::new(mb_cols, mb_rows);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                *modes.mb_mut(mbx, mby) = MbMode {
                    mode: PartitionMode::P16x16,
                    mvs: [SmeBlockMv {
                        rf: 0,
                        mv: QpelMv::ZERO,
                        cost: 0,
                    }; 16],
                    cost: 0,
                };
            }
        }
        modes
    }

    #[test]
    fn identical_chroma_codes_to_zero() {
        let u = plane_from_fn(32, 32, |x, y| ((x * 5 + y) % 256) as u8);
        let v = plane_from_fn(32, 32, |x, y| ((x + y * 3) % 256) as u8);
        let modes = zero_mode_field(4, 4);
        let out = encode_chroma_inter(&u, &v, &[&u], &[&v], &modes, 28);
        assert_eq!(out.coeffs.nonzero_levels(), 0);
        assert_eq!(out.recon_u, u);
        assert_eq!(out.recon_v, v);
    }

    #[test]
    fn inter_chroma_quality_reasonable() {
        let ref_u = plane_from_fn(32, 32, |x, y| (((x * 13) ^ (y * 7)) % 200 + 20) as u8);
        let ref_v = plane_from_fn(32, 32, |x, y| ((x * 3 + y * 9) % 220 + 10) as u8);
        // Current = reference + small change.
        let cf_u = plane_from_fn(32, 32, |x, y| ref_u.get(x, y).saturating_add(6));
        let cf_v = plane_from_fn(32, 32, |x, y| ref_v.get(x, y).saturating_sub(4));
        let modes = zero_mode_field(4, 4);
        let out = encode_chroma_inter(&cf_u, &cf_v, &[&ref_u], &[&ref_v], &modes, 28);
        assert!(psnr(&out.recon_u, &cf_u) > 34.0);
        assert!(psnr(&out.recon_v, &cf_v) > 34.0);
        assert!(out.bits > 0);
    }

    #[test]
    fn intra_chroma_flat_reconstructs_flat() {
        // The first MB predicts DC=128 and its residual quantizes with a
        // small error; every later MB predicts exactly from the (flat)
        // reconstruction. So the output must be uniform and within one
        // quantization step of the source.
        let mut u = Plane::new(32, 32);
        u.fill(90);
        let mut v = Plane::new(32, 32);
        v.fill(160);
        let out = encode_chroma_intra(&u, &v, 4, 4, 28);
        for (recon, src) in [(&out.recon_u, 90i16), (&out.recon_v, 160i16)] {
            let first = recon.get(0, 0);
            for y in 0..32 {
                for x in 0..32 {
                    assert_eq!(recon.get(x, y), first, "must stay flat");
                }
            }
            let err = (first as i16 - src).abs() as f64;
            assert!(
                err <= crate::quant::qstep(chroma_qp(28)),
                "flat error {err} exceeds the quantization step"
            );
        }
    }

    #[test]
    fn subdivided_modes_predict_per_partition() {
        // 8x8 partitions with different MVs per quadrant must produce a
        // stitched prediction, not a single-vector one.
        let rf_u = plane_from_fn(64, 64, |x, y| ((x * 11) ^ (y * 5)) as u8);
        let rf_v = plane_from_fn(64, 64, |x, y| ((x * 2 + y * 7) % 256) as u8);
        let mut modes = ModeField::new(2, 2);
        for mby in 0..2 {
            for mbx in 0..2 {
                let mut mvs = [SmeBlockMv {
                    rf: 0,
                    mv: QpelMv::ZERO,
                    cost: 0,
                }; 16];
                for (i, mv) in mvs.iter_mut().enumerate().take(4) {
                    mv.mv = QpelMv::new((i as i16) * 8, 8 - (i as i16) * 8);
                }
                *modes.mb_mut(mbx, mby) = MbMode {
                    mode: PartitionMode::P8x8,
                    mvs,
                    cost: 0,
                };
            }
        }
        // Build the current frame so each quadrant matches its displaced
        // reference — the encoder must then code (nearly) zero residual.
        let make_cf = |rf: &Plane<u8>| {
            plane_from_fn(32, 32, |x, y| {
                let (mbx, mby) = (x / 8, y / 8);
                let (sx, sy) = (x % 8, y % 8);
                let quad = (sy / 4) * 2 + sx / 4;
                let m = QpelMv::new((quad as i16) * 8, 8 - (quad as i16) * 8);
                let _ = (mbx, mby);
                rf.get_clamped(
                    x as isize + (m.x / 8) as isize,
                    y as isize + (m.y / 8) as isize,
                )
            })
        };
        let cf_u = make_cf(&rf_u);
        let cf_v = make_cf(&rf_v);
        let out = encode_chroma_inter(&cf_u, &cf_v, &[&rf_u], &[&rf_v], &modes, 28);
        assert_eq!(
            out.coeffs.nonzero_levels(),
            0,
            "per-partition MVs must match"
        );
    }
}
