//! Sub-pixel motion estimation (the paper's SME module).
//!
//! Refines the full-pel motion vectors produced by ME on the sub-pixel
//! interpolated frame (SF): a half-pel refinement step (±½ around the ME
//! vector) followed by a quarter-pel step (±¼ around the half-pel winner) —
//! the standard two-stage refinement of the JM encoder. Like ME, the result
//! for a macroblock depends only on the CF, the SFs and that macroblock's ME
//! output, so row-wise distribution across devices is result-invariant.
//! Block SADs go through [`crate::kernels`], so `FEVES_KERNELS` selects the
//! scalar or SWAR implementation here too.

use crate::interp::SubpelFrame;
use crate::me::{mode_base, MbMotion};
use crate::types::{PartitionMode, QpelMv, ALL_PARTITION_MODES, TOTAL_PARTITION_BLOCKS};
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;
use rayon::prelude::*;

/// Refined match for one partition block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmeBlockMv {
    /// Reference-frame index (inherited from ME).
    pub rf: u8,
    /// Quarter-pel motion vector.
    pub mv: QpelMv,
    /// SAD at the refined position.
    pub cost: u32,
}

impl Default for SmeBlockMv {
    fn default() -> Self {
        SmeBlockMv {
            rf: 0,
            mv: QpelMv::ZERO,
            cost: u32::MAX,
        }
    }
}

/// Refined motion data of one macroblock (41 blocks, mode-major — same
/// layout as [`MbMotion`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbSubMotion {
    blocks: [SmeBlockMv; TOTAL_PARTITION_BLOCKS],
}

impl Default for MbSubMotion {
    fn default() -> Self {
        MbSubMotion {
            blocks: [SmeBlockMv::default(); TOTAL_PARTITION_BLOCKS],
        }
    }
}

impl MbSubMotion {
    /// Refined match for block `idx` of `mode`.
    #[inline]
    pub fn block(&self, mode: PartitionMode, idx: usize) -> &SmeBlockMv {
        &self.blocks[mode_base(mode) + idx]
    }

    /// Mutable access.
    #[inline]
    pub fn block_mut(&mut self, mode: PartitionMode, idx: usize) -> &mut SmeBlockMv {
        &mut self.blocks[mode_base(mode) + idx]
    }

    /// Total refined SAD of a partition mode.
    pub fn mode_cost(&self, mode: PartitionMode) -> u64 {
        (0..mode.count())
            .map(|i| self.block(mode, i).cost as u64)
            .sum()
    }
}

/// The refined motion field of a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmeField {
    mbs: Vec<MbSubMotion>,
    mb_cols: usize,
    mb_rows: usize,
}

impl SmeField {
    /// Create an empty field.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        SmeField {
            mbs: vec![MbSubMotion::default(); mb_cols * mb_rows],
            mb_cols,
            mb_rows,
        }
    }

    /// Macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Refined motion of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb(&self, mbx: usize, mby: usize) -> &MbSubMotion {
        &self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable refined motion of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb_mut(&mut self, mbx: usize, mby: usize) -> &mut MbSubMotion {
        &mut self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable slice covering `range` MB rows.
    pub fn rows_mut(&mut self, range: RowRange) -> &mut [MbSubMotion] {
        &mut self.mbs[range.start * self.mb_cols..range.end * self.mb_cols]
    }

    /// Borrow the rows of `range`.
    pub fn rows(&self, range: RowRange) -> &[MbSubMotion] {
        &self.mbs[range.start * self.mb_cols..range.end * self.mb_cols]
    }
}

/// SAD between the `w × h` current block at `(bx, by)` and the SF sampled at
/// quarter-pel displacement `qmv`.
pub fn sad_qpel(
    cf: &Plane<u8>,
    bx: usize,
    by: usize,
    w: usize,
    h: usize,
    sf: &SubpelFrame,
    qmv: QpelMv,
) -> u32 {
    let qx0 = bx as isize * 4 + qmv.x as isize;
    let qy0 = by as isize * 4 + qmv.y as isize;
    let fx = qx0.rem_euclid(4) as u8;
    let fy = qy0.rem_euclid(4) as u8;
    let x0 = qx0.div_euclid(4);
    let y0 = qy0.div_euclid(4);
    let plane = sf.phase(fx, fy);
    let mut acc = 0u32;
    let inside = x0 >= 0
        && y0 >= 0
        && (x0 as usize) + w <= plane.width()
        && (y0 as usize) + h <= plane.height();
    if inside {
        // Dispatch once per block (not per row) through the kernel layer so
        // the SWAR fast path sees the whole strided block.
        let (px, py) = (x0 as usize, y0 as usize);
        acc = crate::kernels::sad_block(
            &cf.as_slice()[by * cf.stride() + bx..],
            cf.stride(),
            &plane.as_slice()[py * plane.stride() + px..],
            plane.stride(),
            w,
            h,
        );
    } else {
        for row in 0..h {
            for col in 0..w {
                let c = cf.get(bx + col, by + row);
                let p = plane.get_clamped(x0 + col as isize, y0 + row as isize);
                acc += (c as i16 - p as i16).unsigned_abs() as u32;
            }
        }
    }
    acc
}

/// Two-stage (half- then quarter-pel) refinement of one block.
fn refine_block(
    cf: &Plane<u8>,
    sf: &SubpelFrame,
    bx: usize,
    by: usize,
    w: usize,
    h: usize,
    start: QpelMv,
) -> (QpelMv, u32) {
    let mut best_mv = start;
    let mut best_cost = sad_qpel(cf, bx, by, w, h, sf, start);
    for step in [2i16, 1] {
        let center = best_mv;
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = QpelMv::new(center.x + dx, center.y + dy);
                let cost = sad_qpel(cf, bx, by, w, h, sf, cand);
                if cost < best_cost {
                    best_cost = cost;
                    best_mv = cand;
                }
            }
        }
    }
    (best_mv, best_cost)
}

/// Refine all 41 partition blocks of one macroblock.
pub fn sme_mb(
    cf: &Plane<u8>,
    sfs: &[&SubpelFrame],
    me_mb: &MbMotion,
    mbx: usize,
    mby: usize,
) -> MbSubMotion {
    let mut out = MbSubMotion::default();
    let cx = mbx * MB_SIZE;
    let cy = mby * MB_SIZE;
    for mode in ALL_PARTITION_MODES {
        let (w, h) = mode.dims();
        for i in 0..mode.count() {
            let (ox, oy) = mode.offset(i);
            let me_blk = me_mb.block(mode, i);
            let sf = sfs[me_blk.rf as usize];
            let (mv, cost) = refine_block(cf, sf, cx + ox, cy + oy, w, h, me_blk.mv.to_qpel());
            *out.block_mut(mode, i) = SmeBlockMv {
                rf: me_blk.rf,
                mv,
                cost,
            };
        }
    }
    out
}

/// Refine the MB rows of `rows`; `me_rows` holds the ME output for exactly
/// those rows and `out` receives one entry per MB.
pub fn sme_rows(
    cf: &Plane<u8>,
    sfs: &[&SubpelFrame],
    me_rows: &[MbMotion],
    rows: RowRange,
    out: &mut [MbSubMotion],
) {
    let mb_cols = cf.width() / MB_SIZE;
    assert_eq!(
        out.len(),
        rows.len() * mb_cols,
        "output slice size mismatch"
    );
    assert_eq!(me_rows.len(), out.len(), "ME input size mismatch");
    for (i, mby) in rows.iter().enumerate() {
        for mbx in 0..mb_cols {
            out[i * mb_cols + mbx] = sme_mb(cf, sfs, &me_rows[i * mb_cols + mbx], mbx, mby);
        }
    }
}

/// Rayon-parallel variant of [`sme_rows`].
pub fn sme_rows_parallel(
    cf: &Plane<u8>,
    sfs: &[&SubpelFrame],
    me_rows: &[MbMotion],
    rows: RowRange,
    out: &mut [MbSubMotion],
) {
    let mb_cols = cf.width() / MB_SIZE;
    assert_eq!(
        out.len(),
        rows.len() * mb_cols,
        "output slice size mismatch"
    );
    assert_eq!(me_rows.len(), out.len(), "ME input size mismatch");
    out.par_chunks_mut(mb_cols)
        .zip(me_rows.par_chunks(mb_cols))
        .zip(rows.start..rows.end)
        .for_each(|((row_out, row_me), mby)| {
            for mbx in 0..mb_cols {
                row_out[mbx] = sme_mb(cf, sfs, &row_me[mbx], mbx, mby);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpolate;
    use crate::me::motion_estimate_mb;
    use crate::types::{EncodeParams, SearchArea};

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn refinement_never_worsens_cost() {
        let rf = plane_from_fn(64, 64, |x, y| ((x * 37) ^ (y * 11)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| {
            rf.get_clamped(x as isize + 1, y as isize).wrapping_add(3)
        });
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let sf = interpolate(&rf);
        let me = motion_estimate_mb(&cf, &[&rf], &params, 1, 1);
        let sme = sme_mb(&cf, &[&sf], &me, 1, 1);
        for mode in ALL_PARTITION_MODES {
            for i in 0..mode.count() {
                assert!(
                    sme.block(mode, i).cost <= me.block(mode, i).cost,
                    "{mode:?}/{i}: SME cost {} > ME cost {}",
                    sme.block(mode, i).cost,
                    me.block(mode, i).cost
                );
            }
        }
    }

    #[test]
    fn finds_half_pel_shift() {
        // Current frame = reference shifted by exactly half a pixel
        // horizontally: on a linear ramp the 6-tap half-pel is the exact
        // midpoint, and ME deterministically anchors at the left integer
        // (scan order breaks the 0-vs-+1 tie toward 0), so the refinement
        // can reach the exact (½, 0) phase.
        let rf = plane_from_fn(96, 48, |x, _| (x * 2) as u8);
        let sf = interpolate(&rf);
        // Build CF from the SF's own half-pel phase so an exact match exists.
        let cf = plane_from_fn(96, 48, |x, y| sf.phase(2, 0).get(x, y));
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let me = motion_estimate_mb(&cf, &[&rf], &params, 2, 1);
        let sme = sme_mb(&cf, &[&sf], &me, 2, 1);
        let blk = sme.block(PartitionMode::P16x16, 0);
        assert_eq!(blk.cost, 0, "exact half-pel match must be found");
        // Content is vertically flat, so every vertical phase of the found
        // column is an equally exact match; the horizontal phase must be ½.
        assert_eq!(blk.mv.phase().0, 2);
    }

    #[test]
    fn sad_qpel_integer_positions_match_plain_sad() {
        let rf = plane_from_fn(64, 64, |x, y| ((x * 3) ^ (y * 7)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| ((x * 5) ^ (y * 2)) as u8);
        let sf = interpolate(&rf);
        let direct: u32 = (0..16)
            .map(|row| crate::sad::row_sad(&cf.row(16 + row)[16..32], &rf.row(18 + row)[20..36]))
            .sum();
        let via_sf = sad_qpel(&cf, 16, 16, 16, 16, &sf, QpelMv::new(16, 8));
        assert_eq!(direct, via_sf);
    }

    #[test]
    fn row_sliced_equals_whole() {
        let rf = plane_from_fn(64, 80, |x, y| ((x * 31 + y * 17) % 253) as u8);
        let cf = plane_from_fn(64, 80, |x, y| {
            rf.get_clamped(x as isize - 2, y as isize + 1)
        });
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let sf = interpolate(&rf);
        let mb_cols = 4;
        let mut me_all = vec![crate::me::MbMotion::default(); mb_cols * 5];
        crate::me::motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 5), &mut me_all);

        let mut whole = vec![MbSubMotion::default(); mb_cols * 5];
        sme_rows(&cf, &[&sf], &me_all, RowRange::new(0, 5), &mut whole);

        let mut a = vec![MbSubMotion::default(); mb_cols * 2];
        let mut b = vec![MbSubMotion::default(); mb_cols * 3];
        sme_rows(
            &cf,
            &[&sf],
            &me_all[..mb_cols * 2],
            RowRange::new(0, 2),
            &mut a,
        );
        sme_rows(
            &cf,
            &[&sf],
            &me_all[mb_cols * 2..],
            RowRange::new(2, 5),
            &mut b,
        );
        let stitched: Vec<MbSubMotion> = a.into_iter().chain(b).collect();
        assert_eq!(whole, stitched);
    }

    #[test]
    fn parallel_equals_sequential() {
        let rf = plane_from_fn(64, 64, |x, y| ((x * 9) ^ (y * 4)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| {
            rf.get_clamped(x as isize + 1, y as isize - 1)
        });
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let sf = interpolate(&rf);
        let mut me_all = vec![crate::me::MbMotion::default(); 16];
        crate::me::motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 4), &mut me_all);
        let mut seq = vec![MbSubMotion::default(); 16];
        let mut par = vec![MbSubMotion::default(); 16];
        sme_rows(&cf, &[&sf], &me_all, RowRange::new(0, 4), &mut seq);
        sme_rows_parallel(&cf, &[&sf], &me_all, RowRange::new(0, 4), &mut par);
        assert_eq!(seq, par);
    }
}
