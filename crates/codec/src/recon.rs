//! Frame-level TQ / TQ⁻¹ and reconstruction (R\* group).
//!
//! Applies the 4×4 transform + quantization of [`crate::quant`] to the
//! prediction residual macroblock by macroblock, then dequantizes, inverse
//! transforms and adds back the prediction to produce the reconstructed
//! reference frame the next inter-frame will search.

use crate::quant::{has_coefficients, itq_block, tq_block};
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;

/// Quantized levels of one macroblock: sixteen 4×4 luma blocks in raster
/// order, plus a bitmask of blocks containing non-zero coefficients.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MbCoeffs {
    /// Levels per 4×4 block (raster order inside the MB).
    pub blocks: [[i16; 16]; 16],
    /// Bit `i` set ⇔ `blocks[i]` has a non-zero level.
    pub coded_mask: u16,
}

impl MbCoeffs {
    /// True when any 4×4 block carries coefficients.
    pub fn is_coded(&self) -> bool {
        self.coded_mask != 0
    }
}

/// Quantized coefficients of a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoeffField {
    mbs: Vec<MbCoeffs>,
    mb_cols: usize,
    mb_rows: usize,
}

impl CoeffField {
    /// Create an all-zero field.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        CoeffField {
            mbs: vec![MbCoeffs::default(); mb_cols * mb_rows],
            mb_cols,
            mb_rows,
        }
    }

    /// Macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Coefficients of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb(&self, mbx: usize, mby: usize) -> &MbCoeffs {
        &self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable coefficients of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb_mut(&mut self, mbx: usize, mby: usize) -> &mut MbCoeffs {
        &mut self.mbs[mby * self.mb_cols + mbx]
    }

    /// Total number of non-zero levels (rate proxy / diagnostics).
    pub fn nonzero_levels(&self) -> usize {
        self.mbs
            .iter()
            .flat_map(|mb| mb.blocks.iter())
            .flat_map(|b| b.iter())
            .filter(|&&v| v != 0)
            .count()
    }
}

/// Forward TQ over the MB rows of `rows`: quantize the residual into
/// `coeffs`.
pub fn tq_rows(
    residual: &Plane<i16>,
    qp: u8,
    intra: bool,
    rows: RowRange,
    coeffs: &mut CoeffField,
) {
    let mb_cols = residual.width() / MB_SIZE;
    let mut rbuf = [0i16; 16];
    for mby in rows.iter() {
        for mbx in 0..mb_cols {
            let mb = coeffs.mb_mut(mbx, mby);
            let mut mask = 0u16;
            for blk in 0..16 {
                let bx = mbx * MB_SIZE + (blk % 4) * 4;
                let by = mby * MB_SIZE + (blk / 4) * 4;
                for row in 0..4 {
                    rbuf[row * 4..row * 4 + 4].copy_from_slice(&residual.row(by + row)[bx..bx + 4]);
                }
                let levels = tq_block(&rbuf, qp, intra);
                if has_coefficients(&levels) {
                    mask |= 1 << blk;
                }
                mb.blocks[blk] = levels;
            }
            mb.coded_mask = mask;
        }
    }
}

/// Inverse TQ + reconstruction over the MB rows of `rows`:
/// `recon = clip(pred + TQ⁻¹(coeffs))`.
pub fn itq_recon_rows(
    coeffs: &CoeffField,
    pred: &Plane<u8>,
    qp: u8,
    rows: RowRange,
    recon: &mut Plane<u8>,
) {
    let mb_cols = pred.width() / MB_SIZE;
    for mby in rows.iter() {
        for mbx in 0..mb_cols {
            let mb = coeffs.mb(mbx, mby);
            for blk in 0..16 {
                let bx = mbx * MB_SIZE + (blk % 4) * 4;
                let by = mby * MB_SIZE + (blk / 4) * 4;
                if mb.coded_mask & (1 << blk) == 0 {
                    // No coefficients: reconstruction is the prediction.
                    for row in 0..4 {
                        let p = &pred.row(by + row)[bx..bx + 4];
                        recon.row_mut(by + row)[bx..bx + 4].copy_from_slice(p);
                    }
                    continue;
                }
                let r = itq_block(&mb.blocks[blk], qp);
                for row in 0..4 {
                    let p = &pred.row(by + row)[bx..bx + 4];
                    let out = &mut recon.row_mut(by + row)[bx..bx + 4];
                    for col in 0..4 {
                        out[col] = (p[col] as i16 + r[row * 4 + col]).clamp(0, 255) as u8;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::qstep;

    fn residual_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> i16) -> Plane<i16> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn zero_residual_reconstructs_prediction() {
        let residual: Plane<i16> = Plane::new(32, 32);
        let mut pred: Plane<u8> = Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                pred.set(x, y, ((x * 7 + y) % 256) as u8);
            }
        }
        let mut coeffs = CoeffField::new(2, 2);
        tq_rows(&residual, 28, false, RowRange::new(0, 2), &mut coeffs);
        assert_eq!(coeffs.nonzero_levels(), 0);
        let mut recon: Plane<u8> = Plane::new(32, 32);
        itq_recon_rows(&coeffs, &pred, 28, RowRange::new(0, 2), &mut recon);
        assert_eq!(recon, pred);
    }

    #[test]
    fn reconstruction_error_bounded() {
        let residual = residual_from_fn(32, 32, |x, y| ((x * 13 + y * 7) % 120) as i16 - 60);
        let pred: Plane<u8> = {
            let mut p = Plane::new(32, 32);
            p.fill(128);
            p
        };
        for qp in [16u8, 28, 40] {
            let mut coeffs = CoeffField::new(2, 2);
            tq_rows(&residual, qp, false, RowRange::new(0, 2), &mut coeffs);
            let mut recon: Plane<u8> = Plane::new(32, 32);
            itq_recon_rows(&coeffs, &pred, qp, RowRange::new(0, 2), &mut recon);
            let bound = qstep(qp) * 2.0 + 2.0;
            for y in 0..32 {
                for x in 0..32 {
                    let want = (128 + residual.get(x, y)).clamp(0, 255);
                    let got = recon.get(x, y) as i16;
                    assert!(
                        ((want - got).abs() as f64) <= bound,
                        "qp {qp} at {x},{y}: want {want} got {got} bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_qp_gives_more_coefficients() {
        let residual = residual_from_fn(32, 32, |x, y| (((x * 31) ^ (y * 17)) % 60) as i16 - 30);
        let count = |qp: u8| {
            let mut coeffs = CoeffField::new(2, 2);
            tq_rows(&residual, qp, false, RowRange::new(0, 2), &mut coeffs);
            coeffs.nonzero_levels()
        };
        assert!(count(10) >= count(30));
        assert!(count(30) >= count(48));
    }

    #[test]
    fn row_partitioned_tq_matches_whole() {
        let residual = residual_from_fn(32, 48, |x, y| ((x * 3 + y * 11) % 90) as i16 - 45);
        let mut whole = CoeffField::new(2, 3);
        tq_rows(&residual, 28, false, RowRange::new(0, 3), &mut whole);
        let mut split = CoeffField::new(2, 3);
        tq_rows(&residual, 28, false, RowRange::new(0, 1), &mut split);
        tq_rows(&residual, 28, false, RowRange::new(1, 3), &mut split);
        assert_eq!(whole, split);
    }

    #[test]
    fn coded_mask_matches_levels() {
        let residual = residual_from_fn(16, 16, |x, y| if x < 4 && y < 4 { 80 } else { 0 });
        let mut coeffs = CoeffField::new(1, 1);
        tq_rows(&residual, 28, false, RowRange::new(0, 1), &mut coeffs);
        let mb = coeffs.mb(0, 0);
        assert!(mb.coded_mask & 1 != 0, "block 0 must be coded");
        for blk in 1..16 {
            assert_eq!(mb.coded_mask & (1 << blk), 0, "block {blk} must be empty");
        }
    }
}
