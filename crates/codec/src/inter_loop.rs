//! Single-device reference implementation of the complete inter-loop
//! (Fig 1): ME → (INT) → SME → MC → TQ → TQ⁻¹ → DBL → entropy.
//!
//! This is the golden path: the FEVES framework distributes exactly these
//! kernels across devices, and its output must be bit-identical to this
//! driver for any workload distribution (the partition-invariance tests in
//! the workspace root assert that). The hot inner loops (SAD, interpolation,
//! quantization) additionally dispatch through [`crate::kernels`]; because
//! scalar and fast kernels are bit-exact, `FEVES_KERNELS` never changes the
//! bitstream either.

use crate::dbl::deblock_frame;
use crate::entropy::encode_frame;
use crate::interp::{interpolate, SubpelFrame};
use crate::mc::{mc_rows, ModeField};
use crate::me::{motion_estimate_rows_parallel, MbMotion, MeField};
use crate::recon::{itq_recon_rows, tq_rows, CoeffField};
use crate::sme::{sme_rows_parallel, MbSubMotion, SmeField};
use crate::types::EncodeParams;
use bytes::Bytes;
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;
use std::collections::VecDeque;

/// A reconstructed reference frame together with its sub-pixel
/// interpolation.
#[derive(Clone, Debug)]
pub struct RefEntry {
    /// Reconstructed (deblocked) luma plane.
    pub plane: Plane<u8>,
    /// Its sub-pixel interpolated frame.
    pub sf: SubpelFrame,
    /// Reconstructed chroma planes (Cb, Cr), when chroma coding is active.
    pub chroma: Option<(Plane<u8>, Plane<u8>)>,
}

/// Sliding window of reference frames, most recent first.
///
/// Mirrors the paper's RF/SF buffers: pushing a newly reconstructed frame
/// interpolates it (the INT module's output) and evicts the oldest entry
/// beyond the configured depth.
#[derive(Clone, Debug)]
pub struct ReferenceStore {
    entries: VecDeque<RefEntry>,
    max_refs: usize,
}

impl ReferenceStore {
    /// Create a store holding at most `max_refs` references.
    pub fn new(max_refs: usize) -> Self {
        assert!(max_refs >= 1);
        ReferenceStore {
            entries: VecDeque::with_capacity(max_refs + 1),
            max_refs,
        }
    }

    /// Number of currently available references (ramps up 1, 2, … at the
    /// start of a sequence — the slopes visible in the paper's Fig 7(b)).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no reference is available yet (next frame must be intra).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Push a newly reconstructed frame; it becomes reference index 0.
    pub fn push(&mut self, recon: Plane<u8>) {
        let sf = interpolate(&recon);
        self.push_with_sf(recon, sf);
    }

    /// Push a reconstruction with an externally computed SF (the framework
    /// computes the SF collaboratively and supplies it here).
    pub fn push_with_sf(&mut self, recon: Plane<u8>, sf: SubpelFrame) {
        self.entries.push_front(RefEntry {
            plane: recon,
            sf,
            chroma: None,
        });
        while self.entries.len() > self.max_refs {
            self.entries.pop_back();
        }
    }

    /// Push a full YUV reconstruction (luma + SF + chroma planes).
    pub fn push_yuv(&mut self, recon: Plane<u8>, sf: SubpelFrame, u: Plane<u8>, v: Plane<u8>) {
        self.entries.push_front(RefEntry {
            plane: recon,
            sf,
            chroma: Some((u, v)),
        });
        while self.entries.len() > self.max_refs {
            self.entries.pop_back();
        }
    }

    /// Chroma reference planes, most recent first; `None` if any entry was
    /// pushed without chroma.
    #[allow(clippy::type_complexity)] // (Cb refs, Cr refs) pair
    pub fn chroma_planes(&self) -> Option<(Vec<&Plane<u8>>, Vec<&Plane<u8>>)> {
        let mut us = Vec::with_capacity(self.entries.len());
        let mut vs = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let (u, v) = e.chroma.as_ref()?;
            us.push(u);
            vs.push(v);
        }
        Some((us, vs))
    }

    /// Reference planes, most recent first.
    pub fn rf_planes(&self) -> Vec<&Plane<u8>> {
        self.entries.iter().map(|e| &e.plane).collect()
    }

    /// Sub-pixel frames, most recent first.
    pub fn sfs(&self) -> Vec<&SubpelFrame> {
        self.entries.iter().map(|e| &e.sf).collect()
    }

    /// Entry `idx` (0 = most recent).
    pub fn entry(&self, idx: usize) -> &RefEntry {
        &self.entries[idx]
    }

    /// Configured window depth.
    pub fn max_refs(&self) -> usize {
        self.max_refs
    }

    /// Entries most recent first (checkpoint serialization walks these).
    pub fn entries(&self) -> impl Iterator<Item = &RefEntry> {
        self.entries.iter()
    }

    /// Rebuild a store from reconstructed planes (most recent first),
    /// re-deriving each sub-pixel frame with [`interpolate`]. SFs are pure
    /// functions of their RF — and bit-exact across kernel families and
    /// work partitions (the partition-invariance tests prove it) — so a
    /// checkpoint only needs the ~5× smaller reconstructed planes.
    #[allow(clippy::type_complexity)] // (luma, optional (Cb, Cr)) per entry
    pub fn rebuild(
        max_refs: usize,
        planes: Vec<(Plane<u8>, Option<(Plane<u8>, Plane<u8>)>)>,
    ) -> Self {
        assert!(max_refs >= 1 && planes.len() <= max_refs);
        let mut entries = VecDeque::with_capacity(max_refs + 1);
        for (plane, chroma) in planes {
            let sf = interpolate(&plane);
            entries.push_back(RefEntry { plane, sf, chroma });
        }
        ReferenceStore { entries, max_refs }
    }
}

/// Everything produced by encoding one inter frame.
#[derive(Clone, Debug)]
pub struct InterFrameOutput {
    /// Full-pel motion field (ME output).
    pub me: MeField,
    /// Refined motion field (SME output).
    pub sme: SmeField,
    /// Winning modes per MB (MC output).
    pub modes: ModeField,
    /// Quantized coefficients (TQ output).
    pub coeffs: CoeffField,
    /// Deblocked reconstruction (the next reference frame).
    pub recon: Plane<u8>,
    /// Entropy-coded bitstream.
    pub bitstream: Bytes,
    /// Exact coded bits.
    pub bits: u64,
    /// Number of references actually searched (≤ `params.n_ref`).
    pub refs_used: usize,
}

/// Everything produced by encoding one inter frame with chroma.
#[derive(Clone, Debug)]
pub struct InterFrameOutputYuv {
    /// The luma-side output.
    pub luma: InterFrameOutput,
    /// Chroma coefficients + reconstructions + bits.
    pub chroma: crate::chroma::ChromaOutput,
}

/// Encode one full YUV inter frame: the luma inter-loop of
/// [`encode_inter_frame`] plus chroma prediction/coding derived from the
/// winning luma modes (the standard H.264 coupling).
///
/// The store's entries must have been pushed with [`ReferenceStore::push_yuv`].
pub fn encode_inter_frame_yuv(
    cf: &feves_video::frame::Frame,
    store: &ReferenceStore,
    params: &EncodeParams,
) -> InterFrameOutputYuv {
    let luma = encode_inter_frame(cf.y(), store, params);
    let (refs_u, refs_v) = store
        .chroma_planes()
        .expect("YUV encoding requires chroma references (push_yuv)");
    let chroma = crate::chroma::encode_chroma_inter(
        cf.u(),
        cf.v(),
        &refs_u[..luma.refs_used],
        &refs_v[..luma.refs_used],
        &luma.modes,
        params.qp,
    );
    InterFrameOutputYuv { luma, chroma }
}

/// Encode one inter frame against the reference store on a single device
/// (rayon-parallel kernels), following the module order of Fig 1.
pub fn encode_inter_frame(
    cf: &Plane<u8>,
    store: &ReferenceStore,
    params: &EncodeParams,
) -> InterFrameOutput {
    assert!(
        !store.is_empty(),
        "inter frame needs at least one reference"
    );
    let mb_cols = cf.width() / MB_SIZE;
    let mb_rows = cf.height() / MB_SIZE;
    let all_rows = RowRange::new(0, mb_rows);
    let refs_used = params.n_ref.min(store.len());
    let eff_params = EncodeParams {
        n_ref: refs_used,
        ..*params
    };
    let rfs = store.rf_planes();
    let sfs = store.sfs();

    // ME (full-pel, all references).
    let mut me = MeField::new(mb_cols, mb_rows);
    {
        let out: &mut [MbMotion] = me.rows_mut(all_rows);
        motion_estimate_rows_parallel(cf, &rfs, &eff_params, all_rows, out);
    }

    // SME (quarter-pel refinement on the SFs).
    let mut sme = SmeField::new(mb_cols, mb_rows);
    {
        let me_rows: Vec<MbMotion> = me.rows(all_rows).to_vec();
        let out: &mut [MbSubMotion] = sme.rows_mut(all_rows);
        sme_rows_parallel(cf, &sfs, &me_rows, all_rows, out);
    }

    // MC: mode decision, prediction, residual.
    let mut modes = ModeField::new(mb_cols, mb_rows);
    let mut pred: Plane<u8> = Plane::new(cf.width(), cf.height());
    let mut residual: Plane<i16> = Plane::new(cf.width(), cf.height());
    mc_rows(
        cf,
        &sfs,
        sme.rows(all_rows),
        eff_params.qp,
        all_rows,
        &mut modes,
        &mut pred,
        &mut residual,
    );

    // TQ → TQ⁻¹ → reconstruction.
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    tq_rows(&residual, eff_params.qp, false, all_rows, &mut coeffs);
    let mut recon: Plane<u8> = Plane::new(cf.width(), cf.height());
    itq_recon_rows(&coeffs, &pred, eff_params.qp, all_rows, &mut recon);

    // DBL (sequential, single device — see crate::dbl docs).
    deblock_frame(&mut recon, &modes, &coeffs, eff_params.qp);

    // Entropy coding.
    let (bitstream, bits) = encode_frame(&modes, &coeffs, eff_params.qp);

    InterFrameOutput {
        me,
        sme,
        modes,
        coeffs,
        recon,
        bitstream,
        bits,
        refs_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SearchArea;
    use feves_video::metrics::psnr;
    use feves_video::synth::{SynthConfig, SynthSequence};

    fn test_params() -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(16),
            n_ref: 2,
            ..Default::default()
        }
    }

    fn small_sequence(n: usize) -> Vec<Plane<u8>> {
        let mut seq = SynthSequence::new(SynthConfig::tiny_test());
        seq.take_frames(n)
            .into_iter()
            .map(|f| f.y().clone())
            .collect()
    }

    #[test]
    fn reference_store_window_and_ramp() {
        let mut store = ReferenceStore::new(3);
        assert!(store.is_empty());
        for i in 0..5usize {
            let mut p = Plane::new(16, 16);
            p.fill(i as u8);
            store.push(p);
            assert_eq!(store.len(), (i + 1).min(3));
        }
        // Most recent first: values 4, 3, 2.
        assert_eq!(store.entry(0).plane.get(0, 0), 4);
        assert_eq!(store.entry(2).plane.get(0, 0), 2);
    }

    #[test]
    fn encode_decode_consistency_and_quality() {
        let frames = small_sequence(3);
        let params = test_params();
        let intra = crate::intra::encode_intra_frame(&frames[0], params.qp_intra);
        let mut store = ReferenceStore::new(params.n_ref);
        store.push(intra.recon);

        let out1 = encode_inter_frame(&frames[1], &store, &params);
        assert_eq!(out1.refs_used, 1, "only one reference available yet");
        let q = psnr(&out1.recon, &frames[1]);
        assert!(q > 28.0, "inter reconstruction too poor: {q:.1} dB");
        assert!(out1.bits > 0);

        store.push(out1.recon.clone());
        let out2 = encode_inter_frame(&frames[2], &store, &params);
        assert_eq!(out2.refs_used, 2);

        // The bitstream round-trips to the same modes/coefficients.
        let (dm, dc, qp) = crate::entropy::decode_frame(&out2.bitstream).unwrap();
        assert_eq!(qp, params.qp);
        assert_eq!(dc.mb(1, 1), out2.coeffs.mb(1, 1));
        assert_eq!(dm.mb(1, 1).mode, out2.modes.mb(1, 1).mode);
    }

    #[test]
    fn still_content_codes_cheaply() {
        // Two identical frames: inter coding must produce (nearly) no
        // coefficients and a tiny bitstream.
        let frames = small_sequence(1);
        let params = test_params();
        let intra = crate::intra::encode_intra_frame(&frames[0], 20);
        let mut store = ReferenceStore::new(1);
        store.push(intra.recon.clone());
        let out = encode_inter_frame(&intra.recon, &store, &params);
        assert_eq!(
            out.coeffs.nonzero_levels(),
            0,
            "identical frame must need no residual coding"
        );
        // Reconstruction before DBL is exact; the deblocking filter may
        // nudge a handful of samples at bS=1 edges (motion discontinuities
        // between equally-good zero-cost matches), so require near-lossless.
        let q = psnr(&out.recon, &intra.recon);
        assert!(q > 55.0, "reconstruction must be near-exact, got {q:.1}");
    }

    #[test]
    fn deterministic_encoding() {
        let frames = small_sequence(2);
        let params = test_params();
        let intra = crate::intra::encode_intra_frame(&frames[0], params.qp_intra);
        let mut store = ReferenceStore::new(params.n_ref);
        store.push(intra.recon);
        let a = encode_inter_frame(&frames[1], &store, &params);
        let b = encode_inter_frame(&frames[1], &store, &params);
        assert_eq!(a.bitstream, b.bitstream);
        assert_eq!(a.recon, b.recon);
    }
}
