//! Computational work model of the inter-loop modules.
//!
//! Expresses, in abstract *work units per MB row*, how each module's cost
//! scales with the encoding parameters — ME with the search-area size and
//! the number of reference frames ("quadruplication of the ME computational
//! load" between successive SA sizes, §IV), INT with one newly reconstructed
//! reference per frame, SME with the fixed two-stage refinement. The
//! platform simulator multiplies these units by per-device speeds to obtain
//! the execution times the framework measures; the paper's performance
//! characterization then works purely on measured times, exactly as on real
//! hardware.

use crate::types::{EncodeParams, Module};

/// One ME unit = one full 16×16 candidate evaluation (256-pixel SAD plus
/// partition aggregation). One unit of any other module = processing one
/// macroblock.
pub fn units_per_mb(module: Module, params: &EncodeParams) -> f64 {
    match module {
        // Exhaustive search: SA² candidates per reference frame.
        Module::Me => params.search_area.candidates() as f64 * params.n_ref as f64,
        // One new reference frame is interpolated per encoded frame,
        // regardless of how many old SFs are cached.
        Module::Interp => 1.0,
        // Two-stage refinement of 41 partitions at their best reference:
        // constant per MB.
        Module::Sme => 1.0,
        Module::Mc | Module::Tq | Module::Itq | Module::Dbl => 1.0,
    }
}

/// Work units per MB row (`mb_cols` macroblocks).
pub fn units_per_mb_row(module: Module, params: &EncodeParams, mb_cols: usize) -> f64 {
    units_per_mb(module, params) * mb_cols as f64
}

/// Total units for a module over a whole frame.
pub fn units_per_frame(
    module: Module,
    params: &EncodeParams,
    mb_cols: usize,
    mb_rows: usize,
) -> f64 {
    units_per_mb_row(module, params, mb_cols) * mb_rows as f64
}

/// Bytes per MB row of each transferable buffer, for a frame `width` pixels
/// wide (the Data Access Management sizing of Fig 5).
pub mod bytes_per_row {
    use crate::types::TOTAL_PARTITION_BLOCKS;
    use feves_video::geometry::MB_SIZE;

    /// Current-frame luma stripe: `16 · width` bytes.
    pub fn cf(width: usize) -> usize {
        MB_SIZE * width
    }

    /// Reconstructed reference-frame stripe (same layout as CF).
    pub fn rf(width: usize) -> usize {
        MB_SIZE * width
    }

    /// Sub-pixel frame stripe: 16 phase planes ⇒ 16× an RF stripe
    /// ("which size is as large as 16 RFs", §II).
    pub fn sf(width: usize) -> usize {
        16 * MB_SIZE * width
    }

    /// Motion-vector stripe: 41 blocks × (rf, mv, cost) ≈ 8 bytes each per MB.
    pub fn mv(width: usize) -> usize {
        (width / MB_SIZE) * TOTAL_PARTITION_BLOCKS * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SearchArea;

    fn params(sa: u16, n_ref: usize) -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(sa),
            n_ref,
            ..Default::default()
        }
    }

    #[test]
    fn me_quadruples_between_sa_sizes() {
        // The paper's observation: doubling the SA edge quadruples ME work.
        let w32 = units_per_mb(Module::Me, &params(32, 1));
        let w64 = units_per_mb(Module::Me, &params(64, 1));
        let w128 = units_per_mb(Module::Me, &params(128, 1));
        assert_eq!(w64 / w32, 4.0);
        assert_eq!(w128 / w64, 4.0);
    }

    #[test]
    fn me_scales_linearly_with_refs() {
        let w1 = units_per_mb(Module::Me, &params(32, 1));
        let w4 = units_per_mb(Module::Me, &params(32, 4));
        assert_eq!(w4 / w1, 4.0);
    }

    #[test]
    fn non_me_modules_are_parameter_independent() {
        for module in [Module::Interp, Module::Sme, Module::Mc, Module::Dbl] {
            assert_eq!(
                units_per_mb(module, &params(32, 1)),
                units_per_mb(module, &params(256, 8)),
                "{module:?}"
            );
        }
    }

    #[test]
    fn frame_units_compose() {
        let p = params(32, 2);
        assert_eq!(
            units_per_frame(Module::Me, &p, 120, 68),
            120.0 * 68.0 * 1024.0 * 2.0
        );
    }

    #[test]
    fn sf_stripe_is_16_rf_stripes() {
        assert_eq!(bytes_per_row::sf(1920), 16 * bytes_per_row::rf(1920));
        assert_eq!(bytes_per_row::cf(1920), 30720);
    }
}
