//! Common codec types: motion vectors, partitions, encode parameters.

use feves_video::geometry::MB_SIZE;

/// A full-pel motion vector (displacement into a reference frame).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Mv {
    /// Horizontal displacement in full pixels.
    pub x: i16,
    /// Vertical displacement in full pixels.
    pub y: i16,
}

impl Mv {
    /// Construct a motion vector.
    pub const fn new(x: i16, y: i16) -> Self {
        Mv { x, y }
    }

    /// Zero displacement.
    pub const ZERO: Mv = Mv { x: 0, y: 0 };

    /// Convert to quarter-pel units.
    pub fn to_qpel(self) -> QpelMv {
        QpelMv {
            x: self.x * 4,
            y: self.y * 4,
        }
    }
}

/// A quarter-pel motion vector (units of 1/4 pixel), the output of SME.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct QpelMv {
    /// Horizontal displacement in quarter pixels.
    pub x: i16,
    /// Vertical displacement in quarter pixels.
    pub y: i16,
}

impl QpelMv {
    /// Construct a quarter-pel motion vector.
    pub const fn new(x: i16, y: i16) -> Self {
        QpelMv { x, y }
    }

    /// Zero displacement.
    pub const ZERO: QpelMv = QpelMv { x: 0, y: 0 };

    /// Full-pel part (floor division by 4).
    pub fn full_pel(self) -> Mv {
        Mv {
            x: self.x.div_euclid(4),
            y: self.y.div_euclid(4),
        }
    }

    /// Sub-pel phase in quarter units, each in `0..4`.
    pub fn phase(self) -> (u8, u8) {
        (self.x.rem_euclid(4) as u8, self.y.rem_euclid(4) as u8)
    }
}

/// The seven H.264/AVC inter-prediction macroblock partition modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionMode {
    /// One 16×16 partition.
    P16x16,
    /// Two 16×8 partitions.
    P16x8,
    /// Two 8×16 partitions.
    P8x16,
    /// Four 8×8 partitions.
    P8x8,
    /// Eight 8×4 partitions.
    P8x4,
    /// Eight 4×8 partitions.
    P4x8,
    /// Sixteen 4×4 partitions.
    P4x4,
}

/// All partition modes in coding order.
pub const ALL_PARTITION_MODES: [PartitionMode; 7] = [
    PartitionMode::P16x16,
    PartitionMode::P16x8,
    PartitionMode::P8x16,
    PartitionMode::P8x8,
    PartitionMode::P8x4,
    PartitionMode::P4x8,
    PartitionMode::P4x4,
];

impl PartitionMode {
    /// Partition width and height in pixels.
    pub const fn dims(self) -> (usize, usize) {
        match self {
            PartitionMode::P16x16 => (16, 16),
            PartitionMode::P16x8 => (16, 8),
            PartitionMode::P8x16 => (8, 16),
            PartitionMode::P8x8 => (8, 8),
            PartitionMode::P8x4 => (8, 4),
            PartitionMode::P4x8 => (4, 8),
            PartitionMode::P4x4 => (4, 4),
        }
    }

    /// Number of partitions of this shape in one macroblock.
    pub const fn count(self) -> usize {
        let (w, h) = self.dims();
        (MB_SIZE / w) * (MB_SIZE / h)
    }

    /// Pixel offset of partition `idx` within the macroblock (raster order).
    pub fn offset(self, idx: usize) -> (usize, usize) {
        let (w, h) = self.dims();
        let per_row = MB_SIZE / w;
        debug_assert!(idx < self.count());
        ((idx % per_row) * w, (idx / per_row) * h)
    }

    /// Index of this mode in [`ALL_PARTITION_MODES`].
    pub fn index(self) -> usize {
        match self {
            PartitionMode::P16x16 => 0,
            PartitionMode::P16x8 => 1,
            PartitionMode::P8x16 => 2,
            PartitionMode::P8x8 => 3,
            PartitionMode::P8x4 => 4,
            PartitionMode::P4x8 => 5,
            PartitionMode::P4x4 => 6,
        }
    }
}

/// Total partition blocks across all 7 modes (1+2+2+4+8+8+16).
pub const TOTAL_PARTITION_BLOCKS: usize = 41;

/// Search-area configuration: an `n × n` pixel window centred on the
/// collocated macroblock, exactly the paper's "SA size" axis in Fig 6(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SearchArea(pub u16);

impl SearchArea {
    /// The paper's evaluated sizes.
    pub const SA32: SearchArea = SearchArea(32);
    /// 64×64 window.
    pub const SA64: SearchArea = SearchArea(64);
    /// 128×128 window.
    pub const SA128: SearchArea = SearchArea(128);
    /// 256×256 window.
    pub const SA256: SearchArea = SearchArea(256);

    /// Displacement range: candidates span `[-range, range)` per axis.
    pub fn range(self) -> i16 {
        (self.0 / 2) as i16
    }

    /// Number of candidate displacements (`n²`).
    pub fn candidates(self) -> usize {
        (self.0 as usize) * (self.0 as usize)
    }
}

/// Encoding parameters relevant to the inter-loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodeParams {
    /// Full-search window (paper: 32×32 … 256×256).
    pub search_area: SearchArea,
    /// Number of reference frames (paper: 1 … 8).
    pub n_ref: usize,
    /// Quantization parameter for P slices (paper: 28).
    pub qp: u8,
    /// Quantization parameter for the leading I slice (paper: 27).
    pub qp_intra: u8,
}

impl Default for EncodeParams {
    fn default() -> Self {
        // VCEG common conditions used by the paper: QP {27, 28} for {I, P}.
        EncodeParams {
            search_area: SearchArea::SA32,
            n_ref: 1,
            qp: 28,
            qp_intra: 27,
        }
    }
}

impl EncodeParams {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.search_area.0 < 8 || self.search_area.0 > 512 {
            return Err(format!("search area {} out of [8,512]", self.search_area.0));
        }
        if !self.search_area.0.is_power_of_two() {
            return Err("search area must be a power of two".into());
        }
        if self.n_ref == 0 || self.n_ref > 16 {
            return Err(format!("n_ref {} out of [1,16]", self.n_ref));
        }
        if self.qp > 51 || self.qp_intra > 51 {
            return Err("QP must be <= 51".into());
        }
        Ok(())
    }
}

/// The inter-loop modules of Fig 1, in the grouping the paper uses: the
/// compute-heavy trio (ME, INT, SME) is load-balanced across devices, the
/// light `R*` group (MC, TQ, TQ⁻¹, DBL) runs on one best device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Module {
    /// Motion estimation (full-search block matching).
    Me,
    /// Sub-pixel interpolation building the SF.
    Interp,
    /// Sub-pixel motion estimation.
    Sme,
    /// Motion compensation + mode decision (R*).
    Mc,
    /// Forward transform + quantization (R*).
    Tq,
    /// Dequantization + inverse transform (R*).
    Itq,
    /// Deblocking filter (R*).
    Dbl,
}

impl Module {
    /// All modules in pipeline order.
    pub const ALL: [Module; 7] = [
        Module::Me,
        Module::Interp,
        Module::Sme,
        Module::Mc,
        Module::Tq,
        Module::Itq,
        Module::Dbl,
    ];

    /// The load-balanced compute-intensive modules (≈90 % of encoding time).
    pub const BALANCED: [Module; 3] = [Module::Me, Module::Interp, Module::Sme];

    /// The single-device `R*` group.
    pub const RSTAR: [Module; 4] = [Module::Mc, Module::Tq, Module::Itq, Module::Dbl];

    /// True for ME/INT/SME.
    pub fn is_balanced(self) -> bool {
        matches!(self, Module::Me | Module::Interp | Module::Sme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpel_roundtrip() {
        let q = QpelMv::new(-7, 9);
        assert_eq!(q.full_pel(), Mv::new(-2, 2));
        assert_eq!(q.phase(), (1, 1));
        let q2 = QpelMv::new(8, -8);
        assert_eq!(q2.full_pel(), Mv::new(2, -2));
        assert_eq!(q2.phase(), (0, 0));
        assert_eq!(Mv::new(3, -1).to_qpel(), QpelMv::new(12, -4));
    }

    #[test]
    fn partition_counts_sum_to_41() {
        let total: usize = ALL_PARTITION_MODES.iter().map(|m| m.count()).sum();
        assert_eq!(total, TOTAL_PARTITION_BLOCKS);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2-D coverage grid
    fn partition_offsets_tile_the_mb() {
        for mode in ALL_PARTITION_MODES {
            let (w, h) = mode.dims();
            let mut covered = [[false; MB_SIZE]; MB_SIZE];
            for i in 0..mode.count() {
                let (ox, oy) = mode.offset(i);
                for y in oy..oy + h {
                    for x in ox..ox + w {
                        assert!(!covered[y][x], "{mode:?} overlaps at {x},{y}");
                        covered[y][x] = true;
                    }
                }
            }
            assert!(covered.iter().flatten().all(|&c| c), "{mode:?} leaves gaps");
        }
    }

    #[test]
    fn search_area_geometry() {
        assert_eq!(SearchArea::SA32.range(), 16);
        assert_eq!(SearchArea::SA32.candidates(), 1024);
        assert_eq!(SearchArea::SA64.candidates(), 4 * 1024);
    }

    #[test]
    fn params_validation() {
        assert!(EncodeParams::default().validate().is_ok());
        let bad = EncodeParams {
            n_ref: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad_sa = EncodeParams {
            search_area: SearchArea(48),
            ..Default::default()
        };
        assert!(bad_sa.validate().is_err());
    }

    #[test]
    fn module_grouping() {
        assert!(Module::Me.is_balanced());
        assert!(!Module::Dbl.is_balanced());
        assert_eq!(
            Module::BALANCED.len() + Module::RSTAR.len(),
            Module::ALL.len()
        );
    }
}
