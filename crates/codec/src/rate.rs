//! Rate control: a leaky-bucket controller that steers the quantization
//! parameter toward a target bitrate.
//!
//! The paper encodes at fixed QP {27, 28} per the VCEG common conditions;
//! real deployments (the "video content dominance" motivation of §I) run
//! closed-loop rate control. This is the classic buffer-feedback scheme:
//! a virtual decoder buffer drains at `target_bits_per_frame` and fills
//! with each coded frame; QP follows the buffer fullness with bounded
//! per-frame steps (H.264 recommends ±2 to avoid visible pumping).

/// Closed-loop QP controller.
///
/// ```
/// use feves_codec::rate::RateController;
/// let mut rc = RateController::new(3000.0, 25.0, 28); // 3 Mbit/s @ 25 fps
/// assert_eq!(rc.qp(), 28);
/// rc.update(1_000_000); // a frame 8x over budget
/// assert!(rc.qp() > 28, "overshoot must raise QP");
/// ```
#[derive(Clone, Debug)]
pub struct RateController {
    target_bits_per_frame: f64,
    /// Virtual buffer occupancy in bits (signed: negative = under-spending).
    buffer: f64,
    qp: u8,
    min_qp: u8,
    max_qp: u8,
}

impl RateController {
    /// Create a controller for `target_kbps` at `fps`, starting from
    /// `initial_qp`.
    pub fn new(target_kbps: f64, fps: f64, initial_qp: u8) -> Self {
        assert!(target_kbps > 0.0 && fps > 0.0);
        RateController {
            target_bits_per_frame: target_kbps * 1000.0 / fps,
            buffer: 0.0,
            qp: initial_qp.min(51),
            min_qp: 10,
            max_qp: 48,
        }
    }

    /// Restrict the QP excursion range.
    pub fn with_qp_range(mut self, min_qp: u8, max_qp: u8) -> Self {
        assert!(min_qp <= max_qp && max_qp <= 51);
        self.min_qp = min_qp;
        self.max_qp = max_qp;
        self.qp = self.qp.clamp(min_qp, max_qp);
        self
    }

    /// QP to use for the next frame.
    pub fn qp(&self) -> u8 {
        self.qp
    }

    /// Target bits for one frame.
    pub fn target_bits_per_frame(&self) -> f64 {
        self.target_bits_per_frame
    }

    /// Current virtual-buffer occupancy in frame-budgets
    /// (+1.0 = one frame's budget over-spent).
    pub fn buffer_fullness(&self) -> f64 {
        self.buffer / self.target_bits_per_frame
    }

    /// Full controller state for checkpointing.
    pub fn snapshot(&self) -> RateSnapshot {
        RateSnapshot {
            target_bits_per_frame: self.target_bits_per_frame,
            buffer: self.buffer,
            qp: self.qp,
            min_qp: self.min_qp,
            max_qp: self.max_qp,
        }
    }

    /// Rebuild a controller from a [`RateSnapshot`].
    pub fn from_snapshot(s: &RateSnapshot) -> Self {
        RateController {
            target_bits_per_frame: s.target_bits_per_frame,
            buffer: s.buffer,
            qp: s.qp.min(51),
            min_qp: s.min_qp,
            max_qp: s.max_qp.min(51),
        }
    }

    /// Report the bits the last frame actually produced; updates the buffer
    /// and steps QP for the next frame.
    pub fn update(&mut self, coded_bits: u64) {
        self.buffer += coded_bits as f64 - self.target_bits_per_frame;
        // Deadband of ±20% of a frame budget; outside it, step QP by 1 per
        // 60% over/undershoot, clamped to ±2 per frame.
        let fullness = self.buffer_fullness();
        let step = if fullness > 0.2 {
            ((fullness / 0.6).ceil() as i32).min(2)
        } else if fullness < -0.2 {
            ((fullness / 0.6).floor() as i32).max(-2)
        } else {
            0
        };
        let new_qp = (self.qp as i32 + step).clamp(self.min_qp as i32, self.max_qp as i32);
        self.qp = new_qp as u8;
        // Leak: forget old error slowly so a startup transient does not
        // bias the steady state forever.
        self.buffer *= 0.85;
    }
}

/// Serializable state of a [`RateController`] (checkpoint payload).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateSnapshot {
    /// Bit budget per frame.
    pub target_bits_per_frame: f64,
    /// Virtual-buffer occupancy in bits.
    pub buffer: f64,
    /// QP for the next frame.
    pub qp: u8,
    /// Lower QP rail.
    pub min_qp: u8,
    /// Upper QP rail.
    pub max_qp: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "encoder": bits halve roughly every 6 QP (the QStep doubling),
    /// with content noise.
    fn synthetic_bits(qp: u8, frame: usize) -> u64 {
        let base = 4_000_000.0 * f64::powf(2.0, -(qp as f64) / 6.0);
        let noise = 1.0 + 0.15 * ((frame as f64 * 0.7).sin());
        (base * noise) as u64
    }

    #[test]
    fn converges_to_target_rate() {
        let target_kbps = 3000.0;
        let fps = 25.0;
        let mut rc = RateController::new(target_kbps, fps, 28);
        let mut recent = Vec::new();
        for frame in 0..200 {
            let bits = synthetic_bits(rc.qp(), frame);
            rc.update(bits);
            if frame >= 150 {
                recent.push(bits as f64);
            }
        }
        let avg_kbps = recent.iter().sum::<f64>() / recent.len() as f64 * fps / 1000.0;
        assert!(
            (avg_kbps - target_kbps).abs() / target_kbps < 0.25,
            "steady rate {avg_kbps:.0} kbps vs target {target_kbps:.0}"
        );
    }

    #[test]
    fn harder_target_means_higher_qp() {
        let run = |kbps: f64| {
            let mut rc = RateController::new(kbps, 25.0, 28);
            for frame in 0..100 {
                let bits = synthetic_bits(rc.qp(), frame);
                rc.update(bits);
            }
            rc.qp()
        };
        let qp_low_rate = run(800.0);
        let qp_high_rate = run(8000.0);
        assert!(
            qp_low_rate > qp_high_rate + 4,
            "800 kbps → QP {qp_low_rate} must exceed 8 Mbps → QP {qp_high_rate}"
        );
    }

    #[test]
    fn qp_steps_are_bounded() {
        let mut rc = RateController::new(1000.0, 25.0, 28);
        let mut prev = rc.qp();
        for _ in 0..50 {
            rc.update(10_000_000); // massive overshoot every frame
            let q = rc.qp();
            assert!(q as i32 - prev as i32 <= 2, "step too large");
            prev = q;
        }
        assert_eq!(rc.qp(), 48, "must rail at max_qp under overshoot");
        for _ in 0..100 {
            rc.update(0);
        }
        assert_eq!(rc.qp(), 10, "must rail at min_qp under undershoot");
    }

    #[test]
    fn qp_range_respected() {
        let rc = RateController::new(1000.0, 25.0, 5).with_qp_range(20, 40);
        assert_eq!(rc.qp(), 20);
        let mut rc = rc;
        for _ in 0..50 {
            rc.update(50_000_000);
        }
        assert_eq!(rc.qp(), 40);
    }

    #[test]
    fn snapshot_restore_continues_the_control_loop() {
        let mut a = RateController::new(1500.0, 25.0, 28).with_qp_range(15, 45);
        for frame in 0..37 {
            a.update(synthetic_bits(a.qp(), frame));
        }
        let mut b = RateController::from_snapshot(&a.snapshot());
        assert_eq!(b.qp(), a.qp());
        for frame in 37..120 {
            let bits = synthetic_bits(a.qp(), frame);
            a.update(bits);
            b.update(bits);
            assert_eq!(a.qp(), b.qp(), "diverged at frame {frame}");
        }
    }

    #[test]
    fn deadband_keeps_qp_stable_on_target() {
        let mut rc = RateController::new(1000.0, 25.0, 30);
        let on_target = rc.target_bits_per_frame() as u64;
        for _ in 0..50 {
            rc.update(on_target);
        }
        assert_eq!(rc.qp(), 30, "exact-rate input must not move QP");
    }
}
