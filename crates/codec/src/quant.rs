//! Quantization and dequantization (the paper's TQ / TQ⁻¹ modules).
//!
//! Implements the H.264/AVC scalar quantizer with the standard MF/V scaling
//! tables (QP mod 6 periodicity, per-position frequency classes), combined
//! with the 4×4 core transform of [`crate::transform`] into the `TQ` and
//! `TQ⁻¹` block operations the inter-loop applies to prediction residuals.

use crate::transform::{forward_4x4, inverse_4x4};

/// Multiplication factors for the forward quantizer, indexed `[qp % 6]` ×
/// frequency class `{0: corner, 1: mixed, 2: center}` (Richardson Table 7.x).
const MF: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Dequantizer scaling factors `V`, same indexing as [`MF`].
const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Frequency class of position `(i, j)` in a 4×4 block, matching the table
/// column order: even-even {(0,0),(0,2),(2,0),(2,2)} → 0, odd-odd
/// {(1,1),(1,3),(3,1),(3,3)} → 1, mixed → 2.
#[inline]
fn freq_class(i: usize, j: usize) -> usize {
    match (i % 2, j % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// Quantization step size for `qp` (doubles every 6 QP, QStep(4) = 1.0).
pub fn qstep(qp: u8) -> f64 {
    const BASE: [f64; 6] = [0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125];
    BASE[(qp % 6) as usize] * f64::powi(2.0, (qp / 6) as i32)
}

/// Quantize transformed coefficients in place.
///
/// `intra` selects the larger dead-zone offset (`2^qbits/3` vs `/6`).
pub fn quantize_4x4(w: &mut [i32; 16], qp: u8, intra: bool) {
    let qbits = 15 + (qp / 6) as i32;
    let f = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let mf = &MF[(qp % 6) as usize];
    for i in 0..4 {
        for j in 0..4 {
            let idx = i * 4 + j;
            let m = mf[freq_class(i, j)] as i64;
            let v = w[idx] as i64;
            let q = ((v.abs() * m + f) >> qbits) as i32;
            w[idx] = if v < 0 { -q } else { q };
        }
    }
}

/// Dequantize levels in place (result is in the inverse-transform domain).
pub fn dequantize_4x4(z: &mut [i32; 16], qp: u8) {
    let shift = (qp / 6) as i32;
    let v = &V[(qp % 6) as usize];
    for i in 0..4 {
        for j in 0..4 {
            let idx = i * 4 + j;
            z[idx] = (z[idx] * v[freq_class(i, j)]) << shift;
        }
    }
}

/// Forward transform + quantize a 4×4 residual block.
pub fn tq_block(residual: &[i16; 16], qp: u8, intra: bool) -> [i16; 16] {
    let mut w: [i32; 16] = core::array::from_fn(|i| residual[i] as i32);
    forward_4x4(&mut w);
    quantize_4x4(&mut w, qp, intra);
    core::array::from_fn(|i| w[i] as i16)
}

/// Dequantize + inverse transform quantized levels back to a residual block.
pub fn itq_block(levels: &[i16; 16], qp: u8) -> [i16; 16] {
    let mut w: [i32; 16] = core::array::from_fn(|i| levels[i] as i32);
    dequantize_4x4(&mut w, qp);
    inverse_4x4(&mut w);
    core::array::from_fn(|i| w[i].clamp(i16::MIN as i32, i16::MAX as i32) as i16)
}

/// True when any level is non-zero (drives deblocking strength and entropy
/// coded-block flags).
pub fn has_coefficients(levels: &[i16; 16]) -> bool {
    levels.iter().any(|&v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_doubles_every_six() {
        assert!((qstep(4) - 1.0).abs() < 1e-12);
        for qp in 0..46u8 {
            let ratio = qstep(qp + 6) / qstep(qp);
            assert!((ratio - 2.0).abs() < 1e-12, "QP {qp}: ratio {ratio}");
        }
    }

    #[test]
    fn zero_block_roundtrips_to_zero() {
        let z = tq_block(&[0i16; 16], 28, false);
        assert_eq!(z, [0i16; 16]);
        assert!(!has_coefficients(&z));
        assert_eq!(itq_block(&z, 28), [0i16; 16]);
    }

    #[test]
    fn roundtrip_error_bounded_by_quant_step() {
        // Reconstruction error per sample must be bounded by ~QStep — the
        // defining property of the quantizer.
        for qp in [10u8, 22, 28, 36, 44] {
            let step = qstep(qp);
            for seed in 0..20i32 {
                let residual: [i16; 16] =
                    core::array::from_fn(|i| (((seed * 31 + i as i32 * 17) % 255) - 127) as i16);
                let z = tq_block(&residual, qp, false);
                let back = itq_block(&z, qp);
                for i in 0..16 {
                    let err = (residual[i] - back[i]).abs() as f64;
                    assert!(
                        err <= step * 1.5 + 1.0,
                        "qp {qp} seed {seed} i {i}: err {err} > step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_qp_means_lower_error() {
        let residual: [i16; 16] = core::array::from_fn(|i| ((i as i16) * 9 - 70) % 100);
        let err = |qp: u8| -> i64 {
            let z = tq_block(&residual, qp, false);
            let back = itq_block(&z, qp);
            (0..16)
                .map(|i| ((residual[i] - back[i]) as i64).pow(2))
                .sum()
        };
        assert!(err(10) <= err(40), "finer quantization must not be worse");
    }

    #[test]
    fn high_qp_kills_small_residuals() {
        let residual = [1i16; 16];
        let z = tq_block(&residual, 40, false);
        assert!(!has_coefficients(&z), "QP 40 must zero a ±1 residual");
    }

    #[test]
    fn intra_deadzone_is_wider() {
        // With the same coefficient magnitude near the decision boundary the
        // intra offset (1/3) rounds up where inter (1/6) rounds down.
        // Construct a DC-only residual to probe the boundary.
        let mut found = false;
        for v in 1..40i16 {
            let r = [v; 16];
            let zi = tq_block(&r, 30, true);
            let zp = tq_block(&r, 30, false);
            if zi[0] > zp[0] {
                found = true;
                break;
            }
        }
        assert!(found, "intra rounding must be more generous somewhere");
    }

    #[test]
    fn quant_symmetry_in_sign() {
        let r: [i16; 16] = core::array::from_fn(|i| (i as i16 * 13 - 100) % 90);
        let neg: [i16; 16] = core::array::from_fn(|i| -r[i]);
        let z = tq_block(&r, 26, false);
        let zn = tq_block(&neg, 26, false);
        for i in 0..16 {
            assert_eq!(z[i], -zn[i], "quantizer must be odd-symmetric");
        }
    }
}
