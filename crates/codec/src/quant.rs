//! Quantization and dequantization (the paper's TQ / TQ⁻¹ modules).
//!
//! Implements the H.264/AVC scalar quantizer with the standard MF/V scaling
//! tables (QP mod 6 periodicity, per-position frequency classes), combined
//! with the 4×4 core transform of [`crate::transform`] into the `TQ` and
//! `TQ⁻¹` block operations the inter-loop applies to prediction residuals.
//! The per-coefficient loops dispatch through [`crate::kernels`]
//! (`FEVES_KERNELS=scalar|fast`); the fast path uses flattened tables and
//! branchless sign handling, bit-exact against the reference.

use crate::transform::{forward_4x4, inverse_4x4};

/// Quantization step size for `qp` (doubles every 6 QP, QStep(4) = 1.0).
pub fn qstep(qp: u8) -> f64 {
    const BASE: [f64; 6] = [0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125];
    BASE[(qp % 6) as usize] * f64::powi(2.0, (qp / 6) as i32)
}

/// Quantize transformed coefficients in place.
///
/// `intra` selects the larger dead-zone offset (`2^qbits/3` vs `/6`).
#[inline]
pub fn quantize_4x4(w: &mut [i32; 16], qp: u8, intra: bool) {
    crate::kernels::quantize_4x4(w, qp, intra)
}

/// Dequantize levels in place (result is in the inverse-transform domain).
#[inline]
pub fn dequantize_4x4(z: &mut [i32; 16], qp: u8) {
    crate::kernels::dequantize_4x4(z, qp)
}

/// Forward transform + quantize a 4×4 residual block.
pub fn tq_block(residual: &[i16; 16], qp: u8, intra: bool) -> [i16; 16] {
    let mut w: [i32; 16] = core::array::from_fn(|i| residual[i] as i32);
    forward_4x4(&mut w);
    quantize_4x4(&mut w, qp, intra);
    core::array::from_fn(|i| w[i] as i16)
}

/// Dequantize + inverse transform quantized levels back to a residual block.
pub fn itq_block(levels: &[i16; 16], qp: u8) -> [i16; 16] {
    let mut w: [i32; 16] = core::array::from_fn(|i| levels[i] as i32);
    dequantize_4x4(&mut w, qp);
    inverse_4x4(&mut w);
    core::array::from_fn(|i| w[i].clamp(i16::MIN as i32, i16::MAX as i32) as i16)
}

/// True when any level is non-zero (drives deblocking strength and entropy
/// coded-block flags).
pub fn has_coefficients(levels: &[i16; 16]) -> bool {
    levels.iter().any(|&v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn qstep_doubles_every_six() {
        assert!((qstep(4) - 1.0).abs() < 1e-12);
        for qp in 0..46u8 {
            let ratio = qstep(qp + 6) / qstep(qp);
            assert!((ratio - 2.0).abs() < 1e-12, "QP {qp}: ratio {ratio}");
        }
    }

    #[test]
    fn zero_block_roundtrips_to_zero() {
        let z = tq_block(&[0i16; 16], 28, false);
        assert_eq!(z, [0i16; 16]);
        assert!(!has_coefficients(&z));
        assert_eq!(itq_block(&z, 28), [0i16; 16]);
    }

    #[test]
    fn roundtrip_error_bounded_by_quant_step() {
        // Reconstruction error per sample must be bounded by ~QStep — the
        // defining property of the quantizer.
        for qp in [10u8, 22, 28, 36, 44] {
            let step = qstep(qp);
            for seed in 0..20i32 {
                let residual: [i16; 16] =
                    core::array::from_fn(|i| (((seed * 31 + i as i32 * 17) % 255) - 127) as i16);
                let z = tq_block(&residual, qp, false);
                let back = itq_block(&z, qp);
                for i in 0..16 {
                    let err = (residual[i] - back[i]).abs() as f64;
                    assert!(
                        err <= step * 1.5 + 1.0,
                        "qp {qp} seed {seed} i {i}: err {err} > step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_qp_means_lower_error() {
        let residual: [i16; 16] = core::array::from_fn(|i| ((i as i16) * 9 - 70) % 100);
        let err = |qp: u8| -> i64 {
            let z = tq_block(&residual, qp, false);
            let back = itq_block(&z, qp);
            (0..16)
                .map(|i| ((residual[i] - back[i]) as i64).pow(2))
                .sum()
        };
        assert!(err(10) <= err(40), "finer quantization must not be worse");
    }

    #[test]
    fn high_qp_kills_small_residuals() {
        let residual = [1i16; 16];
        let z = tq_block(&residual, 40, false);
        assert!(!has_coefficients(&z), "QP 40 must zero a ±1 residual");
    }

    #[test]
    fn intra_deadzone_is_wider() {
        // With the same coefficient magnitude near the decision boundary the
        // intra offset (1/3) rounds up where inter (1/6) rounds down.
        // Construct a DC-only residual to probe the boundary.
        let mut found = false;
        for v in 1..40i16 {
            let r = [v; 16];
            let zi = tq_block(&r, 30, true);
            let zp = tq_block(&r, 30, false);
            if zi[0] > zp[0] {
                found = true;
                break;
            }
        }
        assert!(found, "intra rounding must be more generous somewhere");
    }

    #[test]
    fn quant_symmetry_in_sign() {
        let r: [i16; 16] = core::array::from_fn(|i| (i as i16 * 13 - 100) % 90);
        let neg: [i16; 16] = core::array::from_fn(|i| -r[i]);
        let z = tq_block(&r, 26, false);
        let zn = tq_block(&neg, 26, false);
        for i in 0..16 {
            assert_eq!(z[i], -zn[i], "quantizer must be odd-symmetric");
        }
    }

    // ---- scalar vs fast differentials (direct calls, no global flip) ----

    #[test]
    fn differential_quantize_sweep() {
        for qp in 0..=51u8 {
            for intra in [false, true] {
                for seed in 0..16i32 {
                    let base: [i32; 16] = core::array::from_fn(|i| {
                        let v = (seed * 977 + i as i32 * 613) % 4001 - 2000;
                        v * (1 + seed % 3)
                    });
                    let mut a = base;
                    let mut b = base;
                    kernels::scalar::quantize_4x4(&mut a, qp, intra);
                    kernels::fast::quantize_4x4(&mut b, qp, intra);
                    assert_eq!(a, b, "qp {qp} intra {intra} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn differential_quantize_extremes() {
        // i16 transform-range extremes and sign boundaries.
        for qp in [0u8, 5, 23, 51] {
            for v in [i32::from(i16::MIN) * 4, -1, 0, 1, i32::from(i16::MAX) * 4] {
                let mut a = [v; 16];
                let mut b = [v; 16];
                kernels::scalar::quantize_4x4(&mut a, qp, true);
                kernels::fast::quantize_4x4(&mut b, qp, true);
                assert_eq!(a, b, "qp {qp} v {v}");
            }
        }
    }

    #[test]
    fn differential_dequantize_sweep() {
        for qp in 0..=51u8 {
            for seed in 0..8i32 {
                let base: [i32; 16] =
                    core::array::from_fn(|i| (seed * 389 + i as i32 * 71) % 513 - 256);
                let mut a = base;
                let mut b = base;
                kernels::scalar::dequantize_4x4(&mut a, qp);
                kernels::fast::dequantize_4x4(&mut b, qp);
                assert_eq!(a, b, "qp {qp} seed {seed}");
            }
        }
    }
}
