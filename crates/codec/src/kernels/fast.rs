//! Vector-friendly fast kernels.
//!
//! The build environment has no intrinsics crates, so these fast paths are
//! written so the compiler's auto-vectorizer reliably lowers them to packed
//! SIMD, plus **SWAR** (SIMD-within-a-register) where a closed-form packed
//! identity exists. Every function here is bit-exact against its
//! [`super::scalar`] twin — proven by the differential tests — the only
//! difference is throughput:
//!
//! * SAD: absolute differences over fixed 16-sample lanes accumulated into
//!   `u16` columns (half the lane width of the scalar path's `u32`
//!   reduction, so twice the samples per vector op; the compiler emits
//!   `psubusb`/`paddw`-class code). Horizontal reductions happen once per
//!   block, not once per row.
//! * Interpolation: the border-clamped source reads are hoisted into padded
//!   rows once per band (the scalar path calls `get_clamped` per pixel), the
//!   6-tap filters run over contiguous slices, and the twelve quarter-pel
//!   bilinear averages use the packed ceil-average identity
//!   `avg(a,b) = (a|b) - (((a^b)>>1) & 0x7f..7f)` — eight pixels per step.
//! * Quantization: the per-position frequency-class lookup is flattened into
//!   16-entry tables at compile time so the hot loop is a straight
//!   multiply-add sweep.

use super::{avg, clip8, freq_class, tap6, MF, V};
use crate::sad::SadGrid;
use feves_video::plane::{Plane, PlaneBandMut};

// ---------------------------------------------------------------------------
// Packed building blocks
// ---------------------------------------------------------------------------

const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F; // low 7 bits of each byte

#[inline]
fn load8(s: &[u8]) -> u64 {
    u64::from_le_bytes(s[..8].try_into().unwrap())
}

/// Packed rounding-up byte average: `(a + b + 1) >> 1` per byte, via
/// `(a | b) - (((a ^ b) >> 1) & 0x7f..7f)` (never borrows across bytes
/// because `a | b >= (a ^ b) >> 1` holds per byte).
#[inline]
fn avg8(a: u64, b: u64) -> u64 {
    (a | b) - (((a ^ b) >> 1) & LO7)
}

// ---------------------------------------------------------------------------
// SAD
// ---------------------------------------------------------------------------

/// Max 16-byte chunks accumulated per `u16` column before a flush
/// (255 · 256 = 65280 < 65535 keeps every column overflow-free).
const SAD_FLUSH: u32 = 256;

/// Accumulate `|a[i] - b[i]|` into 16 `u16` columns — the vector core of
/// every SAD below. Fixed-size arrays keep the trip count static so the
/// whole body lowers to a handful of packed ops.
#[inline]
fn absdiff16_accum(acc: &mut [u16; 16], a: &[u8; 16], b: &[u8; 16]) {
    for i in 0..16 {
        acc[i] += a[i].abs_diff(b[i]) as u16;
    }
}

/// SAD of two equal-length rows, 16 bytes per step.
#[inline]
pub fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut total = 0u32;
    let mut acc = [0u16; 16];
    let mut pending = 0u32;
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        absdiff16_accum(&mut acc, xa.try_into().unwrap(), xb.try_into().unwrap());
        pending += 1;
        if pending == SAD_FLUSH {
            total += acc.iter().map(|&v| v as u32).sum::<u32>();
            acc = [0u16; 16];
            pending = 0;
        }
    }
    total += acc.iter().map(|&v| v as u32).sum::<u32>();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        total += x.abs_diff(y) as u32;
    }
    total
}

/// SAD between two `w × h` blocks given as (slice, stride) raster views.
///
/// Codec blocks are at most 16×16 (so ≤ 16 chunks per block — no flush
/// needed), but arbitrary `w × h` stays correct via [`row_sad`]'s own
/// flushing.
#[inline]
pub fn sad_block(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    if w == 16 {
        // The dominant shape (full-MB SAD): one fixed-width accumulator
        // sweep over all rows, a single horizontal reduction at the end.
        let mut total = 0u32;
        let mut acc = [0u16; 16];
        let mut pending = 0u32;
        for y in 0..h {
            let ra = &a[y * a_stride..y * a_stride + 16];
            let rb = &b[y * b_stride..y * b_stride + 16];
            absdiff16_accum(&mut acc, ra.try_into().unwrap(), rb.try_into().unwrap());
            pending += 1;
            if pending == SAD_FLUSH {
                total += acc.iter().map(|&v| v as u32).sum::<u32>();
                acc = [0u16; 16];
                pending = 0;
            }
        }
        return total + acc.iter().map(|&v| v as u32).sum::<u32>();
    }
    let mut acc = 0u32;
    for y in 0..h {
        let ra = &a[y * a_stride..y * a_stride + w];
        let rb = &b[y * b_stride..y * b_stride + w];
        acc += row_sad(ra, rb);
    }
    acc
}

/// Fold 4 rows' worth of per-column sums into one [`SadGrid`] row: grid
/// cell `gx` is the sum of columns `4gx .. 4gx+4`.
#[inline]
fn fold_columns(grid: &mut SadGrid, gy: usize, acc: &[u32; 16]) {
    for gx in 0..4 {
        grid[gy * 4 + gx] = acc[gx * 4..gx * 4 + 4].iter().sum();
    }
}

/// Vector [`SadGrid`]: per 4-row group, accumulate all 16 per-column
/// absolute differences in a widening lane pass and fold into the four
/// 4-wide cells once — instead of sixteen 4-sample scalar reductions per
/// group. Row addressing is hoisted to one base offset per plane stepped
/// by the stride, so the inner loop is a pure load/abs-diff/accumulate
/// sweep the compiler keeps entirely in vector registers. The border
/// fallback materialises each clamped reference row into a stack buffer
/// and reuses the same packed pass, so both paths share one arithmetic
/// implementation.
pub fn sad_grid_16x16(
    cur: &Plane<u8>,
    cur_x: usize,
    cur_y: usize,
    reference: &Plane<u8>,
    ref_x: isize,
    ref_y: isize,
) -> SadGrid {
    let mut grid = [0u32; 16];
    let cs = cur.as_slice();
    let cw = cur.stride();
    let mut co = cur_y * cw + cur_x;
    let inside = ref_x >= 0
        && ref_y >= 0
        && (ref_x as usize) + 16 <= reference.width()
        && (ref_y as usize) + 16 <= reference.height();
    if inside {
        let rs = reference.as_slice();
        let rw = reference.stride();
        let mut ro = ref_y as usize * rw + ref_x as usize;
        for gy in 0..4 {
            let mut acc = [0u32; 16];
            for _ in 0..4 {
                let ca = &cs[co..co + 16];
                let rb = &rs[ro..ro + 16];
                for i in 0..16 {
                    acc[i] += ca[i].abs_diff(rb[i]) as u32;
                }
                co += cw;
                ro += rw;
            }
            fold_columns(&mut grid, gy, &acc);
        }
    } else {
        let mut rb = [0u8; 16];
        for gy in 0..4 {
            let mut acc = [0u32; 16];
            for r in 0..4 {
                let row = gy * 4 + r;
                let ca = &cs[co..co + 16];
                for (col, out) in rb.iter_mut().enumerate() {
                    *out = reference.get_clamped(ref_x + col as isize, ref_y + row as isize);
                }
                for i in 0..16 {
                    acc[i] += ca[i].abs_diff(rb[i]) as u32;
                }
                co += cw;
            }
            fold_columns(&mut grid, gy, &acc);
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

/// Flatten a `[qp%6][freq_class]` table into `[qp%6][position]` so the hot
/// loop indexes linearly instead of recomputing the class per coefficient.
const fn flatten(t: &[[i32; 3]; 6]) -> [[i32; 16]; 6] {
    let mut out = [[0i32; 16]; 6];
    let mut r = 0;
    while r < 6 {
        let mut i = 0;
        while i < 4 {
            let mut j = 0;
            while j < 4 {
                out[r][i * 4 + j] = t[r][freq_class(i, j)];
                j += 1;
            }
            i += 1;
        }
        r += 1;
    }
    out
}

const MF_FLAT: [[i32; 16]; 6] = flatten(&MF);
const V_FLAT: [[i32; 16]; 6] = flatten(&V);

/// Flat-table forward quantizer: one linear multiply-add sweep, no
/// per-coefficient frequency-class recomputation.
pub fn quantize_4x4(w: &mut [i32; 16], qp: u8, intra: bool) {
    let qbits = 15 + (qp / 6) as i32;
    let f = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let mf = &MF_FLAT[(qp % 6) as usize];
    for (v, &m) in w.iter_mut().zip(mf.iter()) {
        let x = *v as i64;
        let q = ((x.abs() * m as i64 + f) >> qbits) as i32;
        *v = if x < 0 { -q } else { q };
    }
}

/// Flat-table dequantizer.
pub fn dequantize_4x4(z: &mut [i32; 16], qp: u8) {
    let shift = (qp / 6) as i32;
    let v = &V_FLAT[(qp % 6) as usize];
    for (x, &vv) in z.iter_mut().zip(v.iter()) {
        *x = (*x * vv) << shift;
    }
}

// ---------------------------------------------------------------------------
// Sub-pixel interpolation
// ---------------------------------------------------------------------------

/// `dst[x] = avg(a[x], b[x])`, eight pixels per step.
fn avg_rows(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let n = dst.len();
    debug_assert!(a.len() >= n && b.len() >= n);
    let mut x = 0;
    while x + 8 <= n {
        let v = avg8(load8(&a[x..]), load8(&b[x..]));
        dst[x..x + 8].copy_from_slice(&v.to_le_bytes());
        x += 8;
    }
    while x < n {
        dst[x] = avg(a[x], b[x]);
        x += 1;
    }
}

/// `dst[x] = avg(a[x], b[min(x+1, n-1)])` — the "right neighbour" quarter-pel
/// combine with border clamp on the shifted operand.
fn avg_rows_shift(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let n = dst.len();
    debug_assert!(a.len() >= n && b.len() >= n);
    let mut x = 0;
    // The packed loop reads b[x+1 .. x+9]; stop while that stays in bounds.
    while x + 9 <= n {
        let v = avg8(load8(&a[x..]), load8(&b[x + 1..]));
        dst[x..x + 8].copy_from_slice(&v.to_le_bytes());
        x += 8;
    }
    while x < n {
        dst[x] = avg(a[x], b[(x + 1).min(n - 1)]);
        x += 1;
    }
}

/// Fast [`super::interp_band`]: identical filter maths to the scalar band,
/// restructured around contiguous rows.
///
/// * Source rows are copied once into a `width + 5` padded buffer whose 2
///   left / 3 right columns replicate the border, so every later 6-tap is a
///   branch-free sliding window (the scalar path re-clamps per sample).
/// * Half-pel `b`/`h`/`j` rows are produced by slice loops over those
///   buffers.
/// * The twelve quarter-pel phases are packed byte averages of whole rows
///   ([`avg_rows`] / [`avg_rows_shift`]); averaging is commutative, so the
///   three phases that combine with a right-shifted operand
///   (`c = avg(b, g→)`, `k = avg(j, h→)`, `g = avg(b, h→)`, `r = avg(h→,
///   b↓)`) all route the shifted row through the second argument.
pub fn interp_band(
    rf: &Plane<u8>,
    width: usize,
    y0: usize,
    y1: usize,
    bands: &mut [PlaneBandMut<'_, u8>],
) {
    debug_assert_eq!(bands.len(), 16);
    let h = y1 - y0;
    let height = rf.height();
    let pw = width + 5; // 2 left + 3 right replicated border columns
    let ext_rows = h + 6; // source rows y0-2 .. y1+3 inclusive

    // Padded clamped source rows.
    let mut g = vec![0u8; ext_rows * pw];
    for ri in 0..ext_rows {
        let sy = (y0 as isize + ri as isize - 2).clamp(0, height as isize - 1) as usize;
        let src = rf.row(sy);
        let dst = &mut g[ri * pw..(ri + 1) * pw];
        dst[0] = src[0];
        dst[1] = src[0];
        dst[2..2 + width].copy_from_slice(src);
        let last = src[width - 1];
        dst[2 + width] = last;
        dst[3 + width] = last;
        dst[4 + width] = last;
    }

    // Horizontal 6-tap intermediates B1 for every extended row.
    let mut b1 = vec![0i32; ext_rows * width];
    for ri in 0..ext_rows {
        let gp = &g[ri * pw..(ri + 1) * pw];
        let br = &mut b1[ri * width..(ri + 1) * width];
        for (x, o) in br.iter_mut().enumerate() {
            *o = tap6(
                gp[x] as i32,
                gp[x + 1] as i32,
                gp[x + 2] as i32,
                gp[x + 3] as i32,
                gp[x + 4] as i32,
                gp[x + 5] as i32,
            );
        }
    }

    // Half-pel rows 0..h+1 (local coordinates; +1 because quarter-pel rows
    // average the next row down).
    let mut bp = vec![0u8; (h + 1) * width];
    let mut hp = vec![0u8; (h + 1) * width];
    let mut jp = vec![0u8; (h + 1) * width];
    for ly in 0..h + 1 {
        let ri = ly + 2; // extended-row index of local row ly
        {
            let b1c = &b1[ri * width..(ri + 1) * width];
            let dst = &mut bp[ly * width..(ly + 1) * width];
            for (o, &v) in dst.iter_mut().zip(b1c.iter()) {
                *o = clip8((v + 16) >> 5);
            }
        }
        {
            // Vertical 6-tap over source rows (use the unpadded columns).
            let gr = |r: usize| &g[r * pw + 2..r * pw + 2 + width];
            let (r0, r1, r2, r3, r4, r5) = (
                gr(ri - 2),
                gr(ri - 1),
                gr(ri),
                gr(ri + 1),
                gr(ri + 2),
                gr(ri + 3),
            );
            let dst = &mut hp[ly * width..(ly + 1) * width];
            for x in 0..width {
                let h1 = tap6(
                    r0[x] as i32,
                    r1[x] as i32,
                    r2[x] as i32,
                    r3[x] as i32,
                    r4[x] as i32,
                    r5[x] as i32,
                );
                dst[x] = clip8((h1 + 16) >> 5);
            }
        }
        {
            // Vertical 6-tap over the horizontal intermediates (20-bit path).
            let br = |r: usize| &b1[r * width..(r + 1) * width];
            let (r0, r1, r2, r3, r4, r5) = (
                br(ri - 2),
                br(ri - 1),
                br(ri),
                br(ri + 1),
                br(ri + 2),
                br(ri + 3),
            );
            let dst = &mut jp[ly * width..(ly + 1) * width];
            for x in 0..width {
                let j1 = tap6(r0[x], r1[x], r2[x], r3[x], r4[x], r5[x]);
                dst[x] = clip8((j1 + 512) >> 10);
            }
        }
    }

    // Assemble all 16 phase rows from whole-row copies and packed averages.
    for ly in 0..h {
        let y = y0 + ly;
        let g0 = &g[(ly + 2) * pw + 2..(ly + 2) * pw + 2 + width];
        let g1 = &g[(ly + 3) * pw + 2..(ly + 3) * pw + 2 + width];
        let b0 = &bp[ly * width..(ly + 1) * width];
        let bd = &bp[(ly + 1) * width..(ly + 2) * width];
        let h0 = &hp[ly * width..(ly + 1) * width];
        let j0 = &jp[ly * width..(ly + 1) * width];

        // Integer and half-pel phases: straight copies.
        bands[0].row_mut(y).copy_from_slice(g0); // G (0,0)
        bands[2].row_mut(y).copy_from_slice(b0); // b (2,0)
        bands[8].row_mut(y).copy_from_slice(h0); // h (0,2)
        bands[10].row_mut(y).copy_from_slice(j0); // j (2,2)

        // Quarter-pel phases (H.264 §8.4.2.2.2 averaging pattern).
        avg_rows(bands[1].row_mut(y), g0, b0); // a (1,0) = avg(G, b)
        avg_rows_shift(bands[3].row_mut(y), b0, g0); // c (3,0) = avg(b, G→)
        avg_rows(bands[4].row_mut(y), g0, h0); // d (0,1) = avg(G, h)
        avg_rows(bands[12].row_mut(y), h0, g1); // n (0,3) = avg(h, G↓)
        avg_rows(bands[6].row_mut(y), b0, j0); // f (2,1) = avg(b, j)
        avg_rows(bands[14].row_mut(y), j0, bd); // q (2,3) = avg(j, b↓)
        avg_rows(bands[9].row_mut(y), h0, j0); // i (1,2) = avg(h, j)
        avg_rows_shift(bands[11].row_mut(y), j0, h0); // k (3,2) = avg(j, h→)
        avg_rows(bands[5].row_mut(y), b0, h0); // e (1,1) = avg(b, h)
        avg_rows_shift(bands[7].row_mut(y), b0, h0); // g (3,1) = avg(b, h→)
        avg_rows(bands[13].row_mut(y), h0, bd); // p (1,3) = avg(h, b↓)
        avg_rows_shift(bands[15].row_mut(y), bd, h0); // r (3,3) = avg(h→, b↓)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absdiff16_accum_covers_all_byte_pairs() {
        // Exhaustive over one column (columns are independent); spot-check
        // cross-column independence with a mixed vector after.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let mut acc = [0u16; 16];
                let mut av = [0u8; 16];
                let mut bv = [0u8; 16];
                av[0] = a;
                bv[0] = b;
                absdiff16_accum(&mut acc, &av, &bv);
                assert_eq!(acc[0], a.abs_diff(b) as u16, "a={a} b={b}");
            }
        }
        let a: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let b: [u8; 16] = core::array::from_fn(|i| (255 - i * 13) as u8);
        let mut acc = [0u16; 16];
        absdiff16_accum(&mut acc, &a, &b);
        for i in 0..16 {
            assert_eq!(acc[i], a[i].abs_diff(b[i]) as u16, "col {i}");
        }
    }

    #[test]
    fn avg8_matches_scalar_avg_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let packed = avg8(
                    u64::from_le_bytes([a; 8]),
                    u64::from_le_bytes([b, a, b, a, b, a, b, a]),
                );
                let bytes = packed.to_le_bytes();
                assert_eq!(bytes[0], avg(a, b), "a={a} b={b}");
                assert_eq!(bytes[1], avg(a, a));
            }
        }
    }

    #[test]
    fn row_sad_flush_boundary() {
        // > SAD_FLUSH chunks of worst-case 255-diffs exercises the
        // accumulator flush: 258 * 16 bytes + a scalar tail, all |a-b| = 255.
        let n = (SAD_FLUSH as usize + 2) * 16 + 5;
        let a = vec![255u8; n];
        let b = vec![0u8; n];
        assert_eq!(row_sad(&a, &b), 255 * n as u32);
    }
}
