//! Reference scalar kernels.
//!
//! These are the plain loops the codec shipped with before the dispatch
//! layer existed, moved here verbatim. They are the semantic ground truth:
//! every [`super::fast`] kernel is differential-tested against these, and
//! they remain selectable at runtime via `FEVES_KERNELS=scalar`.

use super::{avg, clip8, freq_class, tap6, MF, V};
use crate::sad::SadGrid;
use feves_video::plane::{Plane, PlaneBandMut};

/// SAD of two equal-length rows (auto-vectorizable).
#[inline]
pub fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as i16 - y as i16).unsigned_abs() as u32)
        .sum()
}

/// SAD between two `w × h` blocks given as (slice, stride) raster views.
///
/// `a` and `b` must each contain at least `(h-1)*stride + w` samples.
#[inline]
pub fn sad_block(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    let mut acc = 0u32;
    for y in 0..h {
        let ra = &a[y * a_stride..y * a_stride + w];
        let rb = &b[y * b_stride..y * b_stride + w];
        acc += row_sad(ra, rb);
    }
    acc
}

/// Compute the [`SadGrid`] for the 16×16 block at `(cur_x, cur_y)` in `cur`
/// against the block at `(ref_x, ref_y)` in `reference`.
pub fn sad_grid_16x16(
    cur: &Plane<u8>,
    cur_x: usize,
    cur_y: usize,
    reference: &Plane<u8>,
    ref_x: isize,
    ref_y: isize,
) -> SadGrid {
    let mut grid = [0u32; 16];
    let inside = ref_x >= 0
        && ref_y >= 0
        && (ref_x as usize) + 16 <= reference.width()
        && (ref_y as usize) + 16 <= reference.height();
    if inside {
        let (rx, ry) = (ref_x as usize, ref_y as usize);
        for row in 0..16 {
            let ca = &cur.row(cur_y + row)[cur_x..cur_x + 16];
            let rb = &reference.row(ry + row)[rx..rx + 16];
            let gy = row / 4;
            for gx in 0..4 {
                grid[gy * 4 + gx] += row_sad(&ca[gx * 4..gx * 4 + 4], &rb[gx * 4..gx * 4 + 4]);
            }
        }
    } else {
        for row in 0..16 {
            let ca = &cur.row(cur_y + row)[cur_x..cur_x + 16];
            let gy = row / 4;
            for (col, &c) in ca.iter().enumerate() {
                let r = reference.get_clamped(ref_x + col as isize, ref_y + row as isize);
                let gx = col / 4;
                grid[gy * 4 + gx] += (c as i16 - r as i16).unsigned_abs() as u32;
            }
        }
    }
    grid
}

/// Quantize transformed coefficients in place.
///
/// `intra` selects the larger dead-zone offset (`2^qbits/3` vs `/6`).
pub fn quantize_4x4(w: &mut [i32; 16], qp: u8, intra: bool) {
    let qbits = 15 + (qp / 6) as i32;
    let f = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let mf = &MF[(qp % 6) as usize];
    for i in 0..4 {
        for j in 0..4 {
            let idx = i * 4 + j;
            let m = mf[freq_class(i, j)] as i64;
            let v = w[idx] as i64;
            let q = ((v.abs() * m + f) >> qbits) as i32;
            w[idx] = if v < 0 { -q } else { q };
        }
    }
}

/// Dequantize levels in place (result is in the inverse-transform domain).
pub fn dequantize_4x4(z: &mut [i32; 16], qp: u8) {
    let shift = (qp / 6) as i32;
    let v = &V[(qp % 6) as usize];
    for i in 0..4 {
        for j in 0..4 {
            let idx = i * 4 + j;
            z[idx] = (z[idx] * v[freq_class(i, j)]) << shift;
        }
    }
}

/// Interpolate pixel rows `[y0, y1)` of all 16 phases into `bands`
/// (index = fy*4+fx), reading `rf` with clamped halos.
pub fn interp_band(
    rf: &Plane<u8>,
    width: usize,
    y0: usize,
    y1: usize,
    bands: &mut [PlaneBandMut<'_, u8>],
) {
    debug_assert_eq!(bands.len(), 16);
    let h = y1 - y0;
    // We need half-pel rows y0..y1 *plus one* (quarter-pel rows average the
    // next row's half-pels), and the vertical 6-tap needs a ±2/+3 source
    // halo. Precompute, for rows y0-2 .. y1+3, the horizontal unnormalized
    // 6-tap intermediates B1 (for b and j) and the source row G.
    let halo_top = 2isize;
    let halo_bot = 3isize;
    let ext_rows = (h + 1) + (halo_top + halo_bot) as usize; // rows y0-2 .. y1+3
    let mut b1 = vec![0i32; ext_rows * width]; // horizontal 6-tap intermediates
    let mut g = vec![0u8; ext_rows * width]; // clamped source samples
    for (ri, yy) in (-halo_top..(h + 1) as isize + halo_bot).enumerate() {
        let sy = y0 as isize + yy;
        for x in 0..width {
            let xi = x as isize;
            g[ri * width + x] = rf.get_clamped(xi, sy);
            b1[ri * width + x] = tap6(
                rf.get_clamped(xi - 2, sy) as i32,
                rf.get_clamped(xi - 1, sy) as i32,
                rf.get_clamped(xi, sy) as i32,
                rf.get_clamped(xi + 1, sy) as i32,
                rf.get_clamped(xi + 2, sy) as i32,
                rf.get_clamped(xi + 3, sy) as i32,
            );
        }
    }
    let row = |r: isize| -> &[u8] {
        let ri = (r + halo_top) as usize;
        &g[ri * width..(ri + 1) * width]
    };
    let b1row = |r: isize| -> &[i32] {
        let ri = (r + halo_top) as usize;
        &b1[ri * width..(ri + 1) * width]
    };

    // Half-pel planes for rows 0..h+1 (local coordinates).
    let hw = width;
    let mut bp = vec![0u8; (h + 1) * hw]; // b: (2,0)
    let mut hp = vec![0u8; (h + 1) * hw]; // h: (0,2)
    let mut jp = vec![0u8; (h + 1) * hw]; // j: (2,2)
    for ly in 0..(h + 1) as isize {
        for x in 0..width {
            // b: horizontal half-pel.
            bp[ly as usize * hw + x] = clip8((b1row(ly)[x] + 16) >> 5);
            // h: vertical half-pel on source samples.
            let h1 = tap6(
                row(ly - 2)[x] as i32,
                row(ly - 1)[x] as i32,
                row(ly)[x] as i32,
                row(ly + 1)[x] as i32,
                row(ly + 2)[x] as i32,
                row(ly + 3)[x] as i32,
            );
            hp[ly as usize * hw + x] = clip8((h1 + 16) >> 5);
            // j: vertical 6-tap over horizontal intermediates (20-bit path).
            let j1 = tap6(
                b1row(ly - 2)[x],
                b1row(ly - 1)[x],
                b1row(ly)[x],
                b1row(ly + 1)[x],
                b1row(ly + 2)[x],
                b1row(ly + 3)[x],
            );
            jp[ly as usize * hw + x] = clip8((j1 + 512) >> 10);
        }
    }

    // Helper closures over local row coordinates (0..h+1 valid).
    let gv = |x: usize, ly: usize| row(ly as isize)[x.min(width - 1)];
    let bv = |x: usize, ly: usize| bp[ly * hw + x.min(width - 1)];
    let hv = |x: usize, ly: usize| hp[ly * hw + x.min(width - 1)];
    let jv = |x: usize, ly: usize| jp[ly * hw + x.min(width - 1)];

    for ly in 0..h {
        let y = y0 + ly;
        for x in 0..width {
            let xr = (x + 1).min(width - 1); // clamped right neighbor
            let g00 = gv(x, ly);
            let b00 = bv(x, ly);
            let h00 = hv(x, ly);
            let j00 = jv(x, ly);
            let g_d = gv(x, ly + 1); // G one row down
            let b_d = bv(x, ly + 1); // b one row down
            let h_r = hv(xr, ly); // h one column right
            let g_r = gv(xr, ly); // G one column right

            // Integer and half-pel phases.
            bands[0].row_mut(y)[x] = g00; // (0,0)
            bands[2].row_mut(y)[x] = b00; // (2,0)
            bands[8].row_mut(y)[x] = h00; // (0,2)
            bands[10].row_mut(y)[x] = j00; // (2,2)

            // Quarter-pel phases (H.264 §8.4.2.2.2 averaging pattern).
            bands[1].row_mut(y)[x] = avg(g00, b00); // a (1,0)
            bands[3].row_mut(y)[x] = avg(b00, g_r); // c (3,0)
            bands[4].row_mut(y)[x] = avg(g00, h00); // d (0,1)
            bands[12].row_mut(y)[x] = avg(h00, g_d); // n (0,3)
            bands[6].row_mut(y)[x] = avg(b00, j00); // f (2,1)
            bands[14].row_mut(y)[x] = avg(j00, b_d); // q (2,3)
            bands[9].row_mut(y)[x] = avg(h00, j00); // i (1,2)
            bands[11].row_mut(y)[x] = avg(j00, h_r); // k (3,2)
            bands[5].row_mut(y)[x] = avg(b00, h00); // e (1,1)
            bands[7].row_mut(y)[x] = avg(b00, h_r); // g (3,1)
            bands[13].row_mut(y)[x] = avg(h00, b_d); // p (1,3)
            bands[15].row_mut(y)[x] = avg(h_r, b_d); // r (3,3)
        }
    }
}
