//! Runtime-dispatched hot-kernel implementations.
//!
//! The paper implements its CPU kernels with SSE/AVX intrinsics (Sec. III-A)
//! because ME + INT + SME account for ~90 % of inter-loop encoding time.
//! This module is the equivalent for a portable-Rust build: every hot kernel
//! family exists twice —
//!
//! * [`scalar`] — the plain reference loops (what the rest of the codec used
//!   to call directly), relied upon only for LLVM auto-vectorization;
//! * [`fast`] — explicit u64 **SWAR** (SIMD-within-a-register) and unrolled
//!   widening passes: byte-parallel absolute differences for SAD, packed
//!   bilinear averaging for the quarter-pel interpolation phases, and
//!   flattened branch-free quantizer loops.
//!
//! The active implementation is selected once at startup (first use) from
//! the `FEVES_KERNELS` environment variable (`scalar` | `fast`, default
//! `fast`) and can be overridden programmatically with [`force_kind`] for
//! A/B benchmarking. Both implementations are **bit-exact**: the
//! differential tests (`tests/kernel_differential.rs`, plus the unit tests
//! of [`crate::sad`], [`crate::quant`] and [`crate::interp`]) prove
//! `fast(x) == scalar(x)` over exhaustive small inputs and
//! proptest-generated planes, so flipping the switch can never change an
//! encoded bitstream — only how quickly it is produced.

pub mod fast;
pub mod scalar;

use crate::sad::SadGrid;
use feves_video::plane::{Plane, PlaneBandMut};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation family is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Plain reference loops (auto-vectorization only).
    Scalar,
    /// u64 SWAR + unrolled widening fast paths.
    Fast,
}

impl KernelKind {
    /// Stable lowercase name (matches the `FEVES_KERNELS` values).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Fast => "fast",
        }
    }

    /// Numeric id for metrics (`0` scalar, `1` fast).
    pub fn index(self) -> u8 {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Fast => 1,
        }
    }
}

/// 0 = uninitialised, 1 = scalar, 2 = fast.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_from_env() -> KernelKind {
    let kind = match std::env::var("FEVES_KERNELS").as_deref() {
        Ok("scalar") => KernelKind::Scalar,
        Ok("fast") | Err(_) => KernelKind::Fast,
        Ok(other) => {
            eprintln!("FEVES_KERNELS: unknown value '{other}' (want scalar|fast), using fast");
            KernelKind::Fast
        }
    };
    ACTIVE.store(kind.index() + 1, Ordering::Relaxed);
    kind
}

/// The active kernel family (initialised from `FEVES_KERNELS` on first use).
#[inline]
pub fn active_kind() -> KernelKind {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => KernelKind::Scalar,
        2 => KernelKind::Fast,
        _ => init_from_env(),
    }
}

/// Override the active kernel family (A/B benchmarking, differential tests).
///
/// Because both families are bit-exact, flipping this mid-encode is safe —
/// it can change throughput, never output.
pub fn force_kind(kind: KernelKind) {
    ACTIVE.store(kind.index() + 1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Dispatched entry points. Each does one relaxed atomic load and branches;
// callers at macroblock granularity (ME grids, interpolation bands, TQ
// blocks) amortise it over hundreds of sample operations.
// ---------------------------------------------------------------------------

/// SAD of two equal-length rows.
///
/// Mismatched lengths are a **hard error** in every build profile (not just
/// under `debug_assertions`): a silent zip-truncation here would corrupt
/// motion search results without any visible failure.
#[inline]
pub fn row_sad(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(
        a.len(),
        b.len(),
        "row_sad length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    match active_kind() {
        KernelKind::Scalar => scalar::row_sad(a, b),
        KernelKind::Fast => fast::row_sad(a, b),
    }
}

/// SAD between two `w × h` blocks given as (slice, stride) raster views.
#[inline]
pub fn sad_block(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    match active_kind() {
        KernelKind::Scalar => scalar::sad_block(a, a_stride, b, b_stride, w, h),
        KernelKind::Fast => fast::sad_block(a, a_stride, b, b_stride, w, h),
    }
}

/// The sixteen 4×4 SADs of one macroblock against one reference position
/// (border-clamped when the reference block leaves the plane).
#[inline]
pub fn sad_grid_16x16(
    cur: &Plane<u8>,
    cur_x: usize,
    cur_y: usize,
    reference: &Plane<u8>,
    ref_x: isize,
    ref_y: isize,
) -> SadGrid {
    match active_kind() {
        KernelKind::Scalar => scalar::sad_grid_16x16(cur, cur_x, cur_y, reference, ref_x, ref_y),
        KernelKind::Fast => fast::sad_grid_16x16(cur, cur_x, cur_y, reference, ref_x, ref_y),
    }
}

/// Quantize transformed coefficients in place (H.264 MF tables + dead-zone).
#[inline]
pub fn quantize_4x4(w: &mut [i32; 16], qp: u8, intra: bool) {
    match active_kind() {
        KernelKind::Scalar => scalar::quantize_4x4(w, qp, intra),
        KernelKind::Fast => fast::quantize_4x4(w, qp, intra),
    }
}

/// Dequantize levels in place (result is in the inverse-transform domain).
#[inline]
pub fn dequantize_4x4(z: &mut [i32; 16], qp: u8) {
    match active_kind() {
        KernelKind::Scalar => scalar::dequantize_4x4(z, qp),
        KernelKind::Fast => fast::dequantize_4x4(z, qp),
    }
}

/// Interpolate pixel rows `[y0, y1)` of all 16 quarter-pel phases into
/// `bands` (index = `fy*4+fx`), reading `rf` with clamped halos.
#[inline]
pub fn interp_band(
    rf: &Plane<u8>,
    width: usize,
    y0: usize,
    y1: usize,
    bands: &mut [PlaneBandMut<'_, u8>],
) {
    match active_kind() {
        KernelKind::Scalar => scalar::interp_band(rf, width, y0, y1, bands),
        KernelKind::Fast => fast::interp_band(rf, width, y0, y1, bands),
    }
}

// ---------------------------------------------------------------------------
// Shared constants and helpers used by both implementations.
// ---------------------------------------------------------------------------

/// Multiplication factors for the forward quantizer, indexed `[qp % 6]` ×
/// frequency class `{0: corner, 1: mixed, 2: center}` (Richardson Table 7.x).
pub(crate) const MF: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Dequantizer scaling factors `V`, same indexing as [`MF`].
pub(crate) const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Frequency class of position `(i, j)` in a 4×4 block, matching the table
/// column order: even-even {(0,0),(0,2),(2,0),(2,2)} → 0, odd-odd
/// {(1,1),(1,3),(3,1),(3,3)} → 1, mixed → 2.
#[inline]
pub(crate) const fn freq_class(i: usize, j: usize) -> usize {
    match (i % 2, j % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// 6-tap Wiener filter on six consecutive samples (unnormalized).
#[inline]
pub(crate) fn tap6(a: i32, b: i32, c: i32, d: i32, e: i32, f: i32) -> i32 {
    a - 5 * b + 20 * c + 20 * d - 5 * e + f
}

#[inline]
pub(crate) fn clip8(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

/// Rounding-up bilinear average, the H.264 quarter-pel combiner.
#[inline]
pub(crate) fn avg(a: u8, b: u8) -> u8 {
    ((a as u16 + b as u16 + 1) >> 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_indices_are_stable() {
        assert_eq!(KernelKind::Scalar.name(), "scalar");
        assert_eq!(KernelKind::Fast.name(), "fast");
        assert_eq!(KernelKind::Scalar.index(), 0);
        assert_eq!(KernelKind::Fast.index(), 1);
    }

    #[test]
    fn force_kind_round_trips() {
        let before = active_kind();
        force_kind(KernelKind::Scalar);
        assert_eq!(active_kind(), KernelKind::Scalar);
        force_kind(KernelKind::Fast);
        assert_eq!(active_kind(), KernelKind::Fast);
        force_kind(before);
    }

    #[test]
    #[should_panic(expected = "row_sad length mismatch")]
    fn row_sad_length_mismatch_is_a_hard_error() {
        // A hard assert (not debug_assert): this must panic identically in
        // dev and release builds. The release-mode CI job re-runs this test
        // with optimizations on.
        let _ = row_sad(&[1, 2, 3], &[1, 2]);
    }
}
