//! Sub-pixel interpolation (the paper's INT module).
//!
//! Builds the Sub-pixel interpolated Frame (SF) from a reconstructed
//! reference frame: half-pel samples via the H.264/AVC 6-tap Wiener filter
//! `(1, -5, 20, 20, -5, 1)/32` and quarter-pel samples via bilinear
//! averaging, exactly the standard's §8.4.2.2 scheme. The SF is stored as 16
//! phase planes — one per quarter-pel phase `(fx, fy) ∈ {0..3}²` — so it "is
//! as large as 16 RFs" just as the paper states, and so a contiguous stripe
//! of MB rows of the SF is a well-defined transfer unit for the scheduler.
//!
//! Interpolation of an output row depends only on a ±3-row halo of the
//! *source* reference frame, never on other SF rows, so any row-partitioned
//! execution produces bit-identical SFs (the partition-invariance the
//! framework relies on).

use crate::types::QpelMv;
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;
use rayon::prelude::*;

/// The sub-pixel interpolated frame: 16 quarter-pel phase planes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubpelFrame {
    phases: Vec<Plane<u8>>,
    width: usize,
    height: usize,
}

impl SubpelFrame {
    /// Allocate an SF for a `width × height` (padded) reference frame.
    pub fn new(width: usize, height: usize) -> Self {
        SubpelFrame {
            phases: (0..16).map(|_| Plane::new(width, height)).collect(),
            width,
            height,
        }
    }

    /// Reference-frame width this SF covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reference-frame height this SF covers.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the plane of phase `(fx, fy)` (quarter-pel units, `0..4`).
    pub fn phase(&self, fx: u8, fy: u8) -> &Plane<u8> {
        &self.phases[fy as usize * 4 + fx as usize]
    }

    /// Sample at quarter-pel coordinates (clamped at frame borders).
    #[inline]
    pub fn sample(&self, qx: isize, qy: isize) -> u8 {
        let fx = qx.rem_euclid(4) as usize;
        let fy = qy.rem_euclid(4) as usize;
        let x = qx.div_euclid(4);
        let y = qy.div_euclid(4);
        self.phases[fy * 4 + fx].get_clamped(x, y)
    }

    /// Copy a `w × h` prediction block whose top-left full-pel anchor is
    /// `(bx, by)` displaced by the quarter-pel motion vector `mv`, into
    /// `dst` (row-major, stride `w`).
    pub fn predict_block(
        &self,
        bx: usize,
        by: usize,
        mv: QpelMv,
        w: usize,
        h: usize,
        dst: &mut [i16],
    ) {
        debug_assert_eq!(dst.len(), w * h);
        let qx0 = bx as isize * 4 + mv.x as isize;
        let qy0 = by as isize * 4 + mv.y as isize;
        let fx = qx0.rem_euclid(4) as usize;
        let fy = qy0.rem_euclid(4) as usize;
        let x0 = qx0.div_euclid(4);
        let y0 = qy0.div_euclid(4);
        let plane = &self.phases[fy * 4 + fx];
        for row in 0..h {
            for col in 0..w {
                dst[row * w + col] = plane.get_clamped(x0 + col as isize, y0 + row as isize) as i16;
            }
        }
    }

    /// Interpolate the pixel rows covered by the MB rows of `rows`, reading
    /// the reference plane `rf`. May be called for disjoint ranges by
    /// different devices; the union covers the whole SF.
    pub fn interpolate_rows(&mut self, rf: &Plane<u8>, rows: RowRange) {
        assert_eq!(rf.width(), self.width);
        assert_eq!(rf.height(), self.height);
        let y0 = (rows.start * MB_SIZE).min(self.height);
        let y1 = (rows.end * MB_SIZE).min(self.height);
        if y0 >= y1 {
            return;
        }
        // Split each phase plane into [0, y0), [y0, y1), [y1, h) bands and
        // hand the middle band to the row kernel.
        let width = self.width;
        let height = self.height;
        let mut bands: Vec<_> = self
            .phases
            .iter_mut()
            .map(|p| {
                let counts = [y0, y1 - y0, height - y1];
                let nonzero: Vec<usize> = counts.to_vec();
                let mut b = p.split_rows_mut(&nonzero);
                b.swap_remove(1) // keep the middle band
            })
            .collect();
        interpolate_band(rf, width, y0, y1, &mut bands);
    }

    /// Interpolate the full frame with rayon parallelism over MB-row chunks.
    pub fn interpolate_all_parallel(&mut self, rf: &Plane<u8>) {
        assert_eq!(rf.width(), self.width);
        assert_eq!(rf.height(), self.height);
        let width = self.width;
        let mb_rows = self.height / MB_SIZE;
        // Split every phase plane into one band per MB row, regroup by row.
        let row_counts = vec![MB_SIZE; mb_rows];
        let mut per_phase: Vec<Vec<_>> = self
            .phases
            .iter_mut()
            .map(|p| p.split_rows_mut(&row_counts))
            .collect();
        // Transpose: per_row[r] = the 16 phase bands of MB row r.
        let mut per_row: Vec<Vec<_>> = (0..mb_rows).map(|_| Vec::with_capacity(16)).collect();
        for phase_bands in per_phase.drain(..) {
            for (r, band) in phase_bands.into_iter().enumerate() {
                per_row[r].push(band);
            }
        }
        per_row.par_iter_mut().enumerate().for_each(|(r, bands)| {
            let y0 = r * MB_SIZE;
            let y1 = y0 + MB_SIZE;
            interpolate_band(rf, width, y0, y1, bands);
        });
    }
}

/// Build a full SF for `rf` (single call convenience).
pub fn interpolate(rf: &Plane<u8>) -> SubpelFrame {
    let mut sf = SubpelFrame::new(rf.width(), rf.height());
    let mb_rows = rf.height().div_ceil(MB_SIZE);
    sf.interpolate_rows(rf, RowRange::new(0, mb_rows));
    sf
}

/// 6-tap Wiener filter on six consecutive samples (unnormalized).
#[inline]
fn tap6(a: i32, b: i32, c: i32, d: i32, e: i32, f: i32) -> i32 {
    a - 5 * b + 20 * c + 20 * d - 5 * e + f
}

#[inline]
fn clip8(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

#[inline]
fn avg(a: u8, b: u8) -> u8 {
    ((a as u16 + b as u16 + 1) >> 1) as u8
}

/// Interpolate pixel rows `[y0, y1)` of all 16 phases into `bands`
/// (index = fy*4+fx), reading `rf` with clamped halos.
fn interpolate_band(
    rf: &Plane<u8>,
    width: usize,
    y0: usize,
    y1: usize,
    bands: &mut [feves_video::plane::PlaneBandMut<'_, u8>],
) {
    debug_assert_eq!(bands.len(), 16);
    let h = y1 - y0;
    // We need half-pel rows y0..y1 *plus one* (quarter-pel rows average the
    // next row's half-pels), and the vertical 6-tap needs a ±2/+3 source
    // halo. Precompute, for rows y0-2 .. y1+3, the horizontal unnormalized
    // 6-tap intermediates B1 (for b and j) and the source row G.
    let halo_top = 2isize;
    let halo_bot = 3isize;
    let ext_rows = (h + 1) + (halo_top + halo_bot) as usize; // rows y0-2 .. y1+3
    let mut b1 = vec![0i32; ext_rows * width]; // horizontal 6-tap intermediates
    let mut g = vec![0u8; ext_rows * width]; // clamped source samples
    for (ri, yy) in (-halo_top..(h + 1) as isize + halo_bot).enumerate() {
        let sy = y0 as isize + yy;
        for x in 0..width {
            let xi = x as isize;
            g[ri * width + x] = rf.get_clamped(xi, sy);
            b1[ri * width + x] = tap6(
                rf.get_clamped(xi - 2, sy) as i32,
                rf.get_clamped(xi - 1, sy) as i32,
                rf.get_clamped(xi, sy) as i32,
                rf.get_clamped(xi + 1, sy) as i32,
                rf.get_clamped(xi + 2, sy) as i32,
                rf.get_clamped(xi + 3, sy) as i32,
            );
        }
    }
    let row = |r: isize| -> &[u8] {
        let ri = (r + halo_top) as usize;
        &g[ri * width..(ri + 1) * width]
    };
    let b1row = |r: isize| -> &[i32] {
        let ri = (r + halo_top) as usize;
        &b1[ri * width..(ri + 1) * width]
    };

    // Half-pel planes for rows 0..h+1 (local coordinates).
    let hw = width;
    let mut bp = vec![0u8; (h + 1) * hw]; // b: (2,0)
    let mut hp = vec![0u8; (h + 1) * hw]; // h: (0,2)
    let mut jp = vec![0u8; (h + 1) * hw]; // j: (2,2)
    for ly in 0..(h + 1) as isize {
        for x in 0..width {
            // b: horizontal half-pel.
            bp[ly as usize * hw + x] = clip8((b1row(ly)[x] + 16) >> 5);
            // h: vertical half-pel on source samples.
            let h1 = tap6(
                row(ly - 2)[x] as i32,
                row(ly - 1)[x] as i32,
                row(ly)[x] as i32,
                row(ly + 1)[x] as i32,
                row(ly + 2)[x] as i32,
                row(ly + 3)[x] as i32,
            );
            hp[ly as usize * hw + x] = clip8((h1 + 16) >> 5);
            // j: vertical 6-tap over horizontal intermediates (20-bit path).
            let j1 = tap6(
                b1row(ly - 2)[x],
                b1row(ly - 1)[x],
                b1row(ly)[x],
                b1row(ly + 1)[x],
                b1row(ly + 2)[x],
                b1row(ly + 3)[x],
            );
            jp[ly as usize * hw + x] = clip8((j1 + 512) >> 10);
        }
    }

    // Helper closures over local row coordinates (0..h+1 valid).
    let gv = |x: usize, ly: usize| row(ly as isize)[x.min(width - 1)];
    let bv = |x: usize, ly: usize| bp[ly * hw + x.min(width - 1)];
    let hv = |x: usize, ly: usize| hp[ly * hw + x.min(width - 1)];
    let jv = |x: usize, ly: usize| jp[ly * hw + x.min(width - 1)];

    for ly in 0..h {
        let y = y0 + ly;
        for x in 0..width {
            let xr = (x + 1).min(width - 1); // clamped right neighbor
            let g00 = gv(x, ly);
            let b00 = bv(x, ly);
            let h00 = hv(x, ly);
            let j00 = jv(x, ly);
            let g_d = gv(x, ly + 1); // G one row down
            let b_d = bv(x, ly + 1); // b one row down
            let h_r = hv(xr, ly); // h one column right
            let g_r = gv(xr, ly); // G one column right

            // Integer and half-pel phases.
            bands[0].row_mut(y)[x] = g00; // (0,0)
            bands[2].row_mut(y)[x] = b00; // (2,0)
            bands[8].row_mut(y)[x] = h00; // (0,2)
            bands[10].row_mut(y)[x] = j00; // (2,2)

            // Quarter-pel phases (H.264 §8.4.2.2.2 averaging pattern).
            bands[1].row_mut(y)[x] = avg(g00, b00); // a (1,0)
            bands[3].row_mut(y)[x] = avg(b00, g_r); // c (3,0)
            bands[4].row_mut(y)[x] = avg(g00, h00); // d (0,1)
            bands[12].row_mut(y)[x] = avg(h00, g_d); // n (0,3)
            bands[6].row_mut(y)[x] = avg(b00, j00); // f (2,1)
            bands[14].row_mut(y)[x] = avg(j00, b_d); // q (2,3)
            bands[9].row_mut(y)[x] = avg(h00, j00); // i (1,2)
            bands[11].row_mut(y)[x] = avg(j00, h_r); // k (3,2)
            bands[5].row_mut(y)[x] = avg(b00, h00); // e (1,1)
            bands[7].row_mut(y)[x] = avg(b00, h_r); // g (3,1)
            bands[13].row_mut(y)[x] = avg(h00, b_d); // p (1,3)
            bands[15].row_mut(y)[x] = avg(h_r, b_d); // r (3,3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn integer_phase_reproduces_source() {
        let rf = plane_from_fn(32, 32, |x, y| ((x * 7) ^ (y * 3)) as u8);
        let sf = interpolate(&rf);
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(sf.sample(x as isize * 4, y as isize * 4), rf.get(x, y));
            }
        }
    }

    #[test]
    fn constant_plane_stays_constant() {
        let mut rf = Plane::new(32, 32);
        rf.fill(77);
        let sf = interpolate(&rf);
        for fy in 0..4u8 {
            for fx in 0..4u8 {
                for y in 0..32 {
                    for x in 0..32 {
                        assert_eq!(
                            sf.phase(fx, fy).get(x, y),
                            77,
                            "phase ({fx},{fy}) at {x},{y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn horizontal_ramp_half_pel_is_midpoint() {
        // On a linear horizontal ramp, the 6-tap half-pel interpolates the
        // midpoint exactly: taps sum to 32 and are symmetric.
        let rf = plane_from_fn(64, 16, |x, _| (x * 2) as u8);
        let sf = interpolate(&rf);
        for y in 2..14 {
            for x in 8..48 {
                let expect = (rf.get(x, y) as u16 + rf.get(x + 1, y) as u16).div_ceil(2) as u8;
                assert_eq!(sf.phase(2, 0).get(x, y), expect, "at {x},{y}");
            }
        }
    }

    #[test]
    fn vertical_matches_transposed_horizontal() {
        let rf = plane_from_fn(40, 40, |x, y| ((x * 13 + y * 7) % 256) as u8);
        let rf_t = plane_from_fn(40, 40, |x, y| rf.get(y, x));
        let sf = interpolate(&rf);
        let sf_t = interpolate(&rf_t);
        // h of original == b of transpose (away from borders where the
        // clamping halo differs in direction).
        for y in 4..36 {
            for x in 4..36 {
                assert_eq!(
                    sf.phase(0, 2).get(x, y),
                    sf_t.phase(2, 0).get(y, x),
                    "at {x},{y}"
                );
            }
        }
    }

    #[test]
    fn row_partitioned_equals_full() {
        let rf = plane_from_fn(48, 64, |x, y| ((x * 31) ^ (y * 5)) as u8);
        let full = interpolate(&rf);

        let mut split = SubpelFrame::new(48, 64);
        split.interpolate_rows(&rf, RowRange::new(0, 1));
        split.interpolate_rows(&rf, RowRange::new(1, 3));
        split.interpolate_rows(&rf, RowRange::new(3, 4));
        assert_eq!(full, split, "row-partitioned SF must be bit-identical");
    }

    #[test]
    fn parallel_equals_sequential() {
        let rf = plane_from_fn(48, 64, |x, y| ((x * 11) ^ (y * 17)) as u8);
        let seq = interpolate(&rf);
        let mut par = SubpelFrame::new(48, 64);
        par.interpolate_all_parallel(&rf);
        assert_eq!(seq, par);
    }

    #[test]
    fn predict_block_at_zero_mv_copies_source() {
        let rf = plane_from_fn(32, 32, |x, y| (x + y * 2) as u8);
        let sf = interpolate(&rf);
        let mut dst = [0i16; 16];
        sf.predict_block(8, 8, QpelMv::ZERO, 4, 4, &mut dst);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(dst[row * 4 + col], rf.get(8 + col, 8 + row) as i16);
            }
        }
    }

    #[test]
    fn predict_block_full_pel_mv() {
        let rf = plane_from_fn(32, 32, |x, y| ((x * 5) ^ y) as u8);
        let sf = interpolate(&rf);
        let mut dst = [0i16; 16];
        sf.predict_block(8, 8, QpelMv::new(-8, 4), 4, 4, &mut dst);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(dst[row * 4 + col], rf.get(6 + col, 9 + row) as i16);
            }
        }
    }

    #[test]
    fn sample_clamps_outside_frame() {
        let rf = plane_from_fn(16, 16, |x, y| (x + y) as u8);
        let sf = interpolate(&rf);
        assert_eq!(sf.sample(-40, -40), rf.get(0, 0));
        assert_eq!(sf.sample(100 * 4, 100 * 4), rf.get(15, 15));
    }
}
