//! Sub-pixel interpolation (the paper's INT module).
//!
//! Builds the Sub-pixel interpolated Frame (SF) from a reconstructed
//! reference frame: half-pel samples via the H.264/AVC 6-tap Wiener filter
//! `(1, -5, 20, 20, -5, 1)/32` and quarter-pel samples via bilinear
//! averaging, exactly the standard's §8.4.2.2 scheme. The SF is stored as 16
//! phase planes — one per quarter-pel phase `(fx, fy) ∈ {0..3}²` — so it "is
//! as large as 16 RFs" just as the paper states, and so a contiguous stripe
//! of MB rows of the SF is a well-defined transfer unit for the scheduler.
//!
//! Interpolation of an output row depends only on a ±3-row halo of the
//! *source* reference frame, never on other SF rows, so any row-partitioned
//! execution produces bit-identical SFs (the partition-invariance the
//! framework relies on).
//!
//! The row kernel itself lives in [`crate::kernels`]
//! (`FEVES_KERNELS=scalar|fast`): the fast path hoists the border clamping
//! into padded rows and computes the quarter-pel averages with packed SWAR
//! byte math, bit-exact against the scalar reference.

use crate::types::QpelMv;
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;
use rayon::prelude::*;

/// The sub-pixel interpolated frame: 16 quarter-pel phase planes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubpelFrame {
    phases: Vec<Plane<u8>>,
    width: usize,
    height: usize,
}

impl SubpelFrame {
    /// Allocate an SF for a `width × height` (padded) reference frame.
    pub fn new(width: usize, height: usize) -> Self {
        SubpelFrame {
            phases: (0..16).map(|_| Plane::new(width, height)).collect(),
            width,
            height,
        }
    }

    /// Reference-frame width this SF covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reference-frame height this SF covers.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the plane of phase `(fx, fy)` (quarter-pel units, `0..4`).
    pub fn phase(&self, fx: u8, fy: u8) -> &Plane<u8> {
        &self.phases[fy as usize * 4 + fx as usize]
    }

    /// Sample at quarter-pel coordinates (clamped at frame borders).
    #[inline]
    pub fn sample(&self, qx: isize, qy: isize) -> u8 {
        let fx = qx.rem_euclid(4) as usize;
        let fy = qy.rem_euclid(4) as usize;
        let x = qx.div_euclid(4);
        let y = qy.div_euclid(4);
        self.phases[fy * 4 + fx].get_clamped(x, y)
    }

    /// Copy a `w × h` prediction block whose top-left full-pel anchor is
    /// `(bx, by)` displaced by the quarter-pel motion vector `mv`, into
    /// `dst` (row-major, stride `w`).
    pub fn predict_block(
        &self,
        bx: usize,
        by: usize,
        mv: QpelMv,
        w: usize,
        h: usize,
        dst: &mut [i16],
    ) {
        debug_assert_eq!(dst.len(), w * h);
        let qx0 = bx as isize * 4 + mv.x as isize;
        let qy0 = by as isize * 4 + mv.y as isize;
        let fx = qx0.rem_euclid(4) as usize;
        let fy = qy0.rem_euclid(4) as usize;
        let x0 = qx0.div_euclid(4);
        let y0 = qy0.div_euclid(4);
        let plane = &self.phases[fy * 4 + fx];
        for row in 0..h {
            for col in 0..w {
                dst[row * w + col] = plane.get_clamped(x0 + col as isize, y0 + row as isize) as i16;
            }
        }
    }

    /// Interpolate the pixel rows covered by the MB rows of `rows`, reading
    /// the reference plane `rf`. May be called for disjoint ranges by
    /// different devices; the union covers the whole SF.
    pub fn interpolate_rows(&mut self, rf: &Plane<u8>, rows: RowRange) {
        assert_eq!(rf.width(), self.width);
        assert_eq!(rf.height(), self.height);
        let y0 = (rows.start * MB_SIZE).min(self.height);
        let y1 = (rows.end * MB_SIZE).min(self.height);
        if y0 >= y1 {
            return;
        }
        // Split each phase plane into [0, y0), [y0, y1), [y1, h) bands and
        // hand the middle band to the row kernel.
        let width = self.width;
        let height = self.height;
        let mut bands: Vec<_> = self
            .phases
            .iter_mut()
            .map(|p| {
                let counts = [y0, y1 - y0, height - y1];
                let nonzero: Vec<usize> = counts.to_vec();
                let mut b = p.split_rows_mut(&nonzero);
                b.swap_remove(1) // keep the middle band
            })
            .collect();
        crate::kernels::interp_band(rf, width, y0, y1, &mut bands);
    }

    /// Interpolate the full frame with rayon parallelism over MB-row chunks.
    pub fn interpolate_all_parallel(&mut self, rf: &Plane<u8>) {
        assert_eq!(rf.width(), self.width);
        assert_eq!(rf.height(), self.height);
        let width = self.width;
        let mb_rows = self.height / MB_SIZE;
        // Split every phase plane into one band per MB row, regroup by row.
        let row_counts = vec![MB_SIZE; mb_rows];
        let mut per_phase: Vec<Vec<_>> = self
            .phases
            .iter_mut()
            .map(|p| p.split_rows_mut(&row_counts))
            .collect();
        // Transpose: per_row[r] = the 16 phase bands of MB row r.
        let mut per_row: Vec<Vec<_>> = (0..mb_rows).map(|_| Vec::with_capacity(16)).collect();
        for phase_bands in per_phase.drain(..) {
            for (r, band) in phase_bands.into_iter().enumerate() {
                per_row[r].push(band);
            }
        }
        per_row.par_iter_mut().enumerate().for_each(|(r, bands)| {
            let y0 = r * MB_SIZE;
            let y1 = y0 + MB_SIZE;
            crate::kernels::interp_band(rf, width, y0, y1, bands);
        });
    }
}

/// Build a full SF for `rf` (single call convenience).
pub fn interpolate(rf: &Plane<u8>) -> SubpelFrame {
    let mut sf = SubpelFrame::new(rf.width(), rf.height());
    let mb_rows = rf.height().div_ceil(MB_SIZE);
    sf.interpolate_rows(rf, RowRange::new(0, mb_rows));
    sf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn integer_phase_reproduces_source() {
        let rf = plane_from_fn(32, 32, |x, y| ((x * 7) ^ (y * 3)) as u8);
        let sf = interpolate(&rf);
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(sf.sample(x as isize * 4, y as isize * 4), rf.get(x, y));
            }
        }
    }

    #[test]
    fn constant_plane_stays_constant() {
        let mut rf = Plane::new(32, 32);
        rf.fill(77);
        let sf = interpolate(&rf);
        for fy in 0..4u8 {
            for fx in 0..4u8 {
                for y in 0..32 {
                    for x in 0..32 {
                        assert_eq!(
                            sf.phase(fx, fy).get(x, y),
                            77,
                            "phase ({fx},{fy}) at {x},{y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn horizontal_ramp_half_pel_is_midpoint() {
        // On a linear horizontal ramp, the 6-tap half-pel interpolates the
        // midpoint exactly: taps sum to 32 and are symmetric.
        let rf = plane_from_fn(64, 16, |x, _| (x * 2) as u8);
        let sf = interpolate(&rf);
        for y in 2..14 {
            for x in 8..48 {
                let expect = (rf.get(x, y) as u16 + rf.get(x + 1, y) as u16).div_ceil(2) as u8;
                assert_eq!(sf.phase(2, 0).get(x, y), expect, "at {x},{y}");
            }
        }
    }

    #[test]
    fn vertical_matches_transposed_horizontal() {
        let rf = plane_from_fn(40, 40, |x, y| ((x * 13 + y * 7) % 256) as u8);
        let rf_t = plane_from_fn(40, 40, |x, y| rf.get(y, x));
        let sf = interpolate(&rf);
        let sf_t = interpolate(&rf_t);
        // h of original == b of transpose (away from borders where the
        // clamping halo differs in direction).
        for y in 4..36 {
            for x in 4..36 {
                assert_eq!(
                    sf.phase(0, 2).get(x, y),
                    sf_t.phase(2, 0).get(y, x),
                    "at {x},{y}"
                );
            }
        }
    }

    #[test]
    fn row_partitioned_equals_full() {
        let rf = plane_from_fn(48, 64, |x, y| ((x * 31) ^ (y * 5)) as u8);
        let full = interpolate(&rf);

        let mut split = SubpelFrame::new(48, 64);
        split.interpolate_rows(&rf, RowRange::new(0, 1));
        split.interpolate_rows(&rf, RowRange::new(1, 3));
        split.interpolate_rows(&rf, RowRange::new(3, 4));
        assert_eq!(full, split, "row-partitioned SF must be bit-identical");
    }

    #[test]
    fn parallel_equals_sequential() {
        let rf = plane_from_fn(48, 64, |x, y| ((x * 11) ^ (y * 17)) as u8);
        let seq = interpolate(&rf);
        let mut par = SubpelFrame::new(48, 64);
        par.interpolate_all_parallel(&rf);
        assert_eq!(seq, par);
    }

    #[test]
    fn predict_block_at_zero_mv_copies_source() {
        let rf = plane_from_fn(32, 32, |x, y| (x + y * 2) as u8);
        let sf = interpolate(&rf);
        let mut dst = [0i16; 16];
        sf.predict_block(8, 8, QpelMv::ZERO, 4, 4, &mut dst);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(dst[row * 4 + col], rf.get(8 + col, 8 + row) as i16);
            }
        }
    }

    #[test]
    fn predict_block_full_pel_mv() {
        let rf = plane_from_fn(32, 32, |x, y| ((x * 5) ^ y) as u8);
        let sf = interpolate(&rf);
        let mut dst = [0i16; 16];
        sf.predict_block(8, 8, QpelMv::new(-8, 4), 4, 4, &mut dst);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(dst[row * 4 + col], rf.get(6 + col, 9 + row) as i16);
            }
        }
    }

    #[test]
    fn sample_clamps_outside_frame() {
        let rf = plane_from_fn(16, 16, |x, y| (x + y) as u8);
        let sf = interpolate(&rf);
        assert_eq!(sf.sample(-40, -40), rf.get(0, 0));
        assert_eq!(sf.sample(100 * 4, 100 * 4), rf.get(15, 15));
    }

    // ---- scalar vs fast differential (direct kernel calls) ----

    /// Signature shared by the scalar and fast band kernels.
    type BandKernel =
        fn(&Plane<u8>, usize, usize, usize, &mut [feves_video::plane::PlaneBandMut<'_, u8>]);

    /// Build a full SF by driving a specific band kernel directly.
    fn interpolate_with(rf: &Plane<u8>, kernel: BandKernel) -> SubpelFrame {
        let (w, h) = (rf.width(), rf.height());
        let mut sf = SubpelFrame::new(w, h);
        let mut bands: Vec<_> = sf
            .phases
            .iter_mut()
            .map(|p| {
                let mut b = p.split_rows_mut(&[h]);
                b.pop().unwrap()
            })
            .collect();
        kernel(rf, w, 0, h, &mut bands);
        drop(bands);
        sf
    }

    #[test]
    fn differential_band_kernels_odd_sizes() {
        // Widths around the 8-byte SWAR boundary and non-MB-aligned heights
        // exercise every tail path of the fast kernel.
        for &(w, h) in &[
            (1usize, 1usize),
            (3, 5),
            (7, 9),
            (8, 8),
            (9, 17),
            (16, 16),
            (23, 11),
            (48, 32),
        ] {
            let rf = plane_from_fn(w, h, |x, y| ((x * 37) ^ (y * 101)).wrapping_mul(13) as u8);
            let a = interpolate_with(&rf, crate::kernels::scalar::interp_band);
            let b = interpolate_with(&rf, crate::kernels::fast::interp_band);
            assert_eq!(a, b, "SF mismatch at {w}x{h}");
        }
    }
}
