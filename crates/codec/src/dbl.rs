//! In-loop deblocking filter (the paper's DBL module, last of R\*).
//!
//! Structurally follows H.264/AVC §8.7: per macroblock, the four vertical
//! 4-pixel edges are filtered left→right, then the four horizontal edges
//! top→bottom; boundary strength is derived from coded coefficients and
//! motion-vector/reference differences; sample filtering uses the standard
//! α/β activity thresholds and the clipped Δ update. The `tc0` clipping
//! table is replaced by a documented monotone approximation (`β·bS/4`) —
//! the filter's behaviour (strength monotone in QP and bS, edge-activity
//! gating) is preserved, which is what the encoding-time model and the
//! framework depend on; DBL is <3 % of inter-loop time.
//!
//! Neighbouring macroblocks must already be filtered when a macroblock is
//! processed (raster order), which is exactly why the paper assigns DBL to a
//! single device instead of distributing it.

use crate::mc::ModeField;
use crate::recon::CoeffField;
use crate::types::QpelMv;
use feves_video::geometry::MB_SIZE;
use feves_video::plane::Plane;

/// α activity threshold, indexed by QP (H.264 Table 8-16).
const ALPHA: [u8; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20,
    22, 25, 28, 32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203, 226,
    255, 255,
];

/// β activity threshold, indexed by QP (H.264 Table 8-16).
const BETA: [u8; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
    9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18,
];

/// Boundary strength of an edge between two 4×4 blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoundaryStrength(pub u8);

/// Motion summary of one 4×4 block used for bS derivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlockInfo {
    coded: bool,
    rf: u8,
    mv: QpelMv,
}

fn block_info(modes: &ModeField, coeffs: &CoeffField, bx4: usize, by4: usize) -> BlockInfo {
    let (mbx, mby) = (bx4 / 4, by4 / 4);
    let (sx, sy) = (bx4 % 4, by4 % 4);
    let mb_mode = modes.mb(mbx, mby);
    let coded = coeffs.mb(mbx, mby).coded_mask & (1 << (sy * 4 + sx)) != 0;
    // Find the partition of the winning mode containing sub-block (sx, sy).
    let mode = mb_mode.mode;
    let (w, h) = mode.dims();
    let per_row = MB_SIZE / w;
    let idx = (sy * 4 / h) * per_row + (sx * 4 / w);
    let blk = &mb_mode.mvs[idx];
    BlockInfo {
        coded,
        rf: blk.rf,
        mv: blk.mv,
    }
}

/// Derive the boundary strength between blocks `p` and `q` (inter slices:
/// 2 if either is coded, 1 on reference/motion discontinuity, else 0).
fn boundary_strength(p: BlockInfo, q: BlockInfo) -> BoundaryStrength {
    if p.coded || q.coded {
        BoundaryStrength(2)
    } else if p.rf != q.rf || (p.mv.x - q.mv.x).abs() >= 4 || (p.mv.y - q.mv.y).abs() >= 4 {
        BoundaryStrength(1)
    } else {
        BoundaryStrength(0)
    }
}

/// Monotone stand-in for the spec's `tc0` table (see module docs).
#[inline]
fn tc0(qp: u8, bs: BoundaryStrength) -> i16 {
    ((BETA[qp as usize] as i16) * bs.0 as i16) >> 2
}

/// Filter one line of samples across an edge. `p2..q2` are the six samples
/// straddling the edge (p-side then q-side); returns the filtered
/// `(p1, p0, q0, q1)`.
#[allow(clippy::too_many_arguments)]
fn filter_line(
    p2: u8,
    p1: u8,
    p0: u8,
    q0: u8,
    q1: u8,
    q2: u8,
    qp: u8,
    bs: BoundaryStrength,
) -> (u8, u8, u8, u8) {
    let alpha = ALPHA[qp as usize] as i16;
    let beta = BETA[qp as usize] as i16;
    let (p2, p1i, p0i, q0i, q1i, q2) = (
        p2 as i16, p1 as i16, p0 as i16, q0 as i16, q1 as i16, q2 as i16,
    );
    // Activity gating: only real blocking artifacts are smoothed; genuine
    // image edges (large |p0-q0|) pass through.
    if (p0i - q0i).abs() >= alpha || (p1i - p0i).abs() >= beta || (q1i - q0i).abs() >= beta {
        return (p1, p0, q0, q1);
    }
    let ap = (p2 - p0i).abs() < beta;
    let aq = (q2 - q0i).abs() < beta;
    let tc = tc0(qp, bs) + i16::from(ap) + i16::from(aq);
    let delta = (((q0i - p0i) * 4 + (p1i - q1i) + 4) >> 3).clamp(-tc, tc);
    let new_p0 = (p0i + delta).clamp(0, 255) as u8;
    let new_q0 = (q0i - delta).clamp(0, 255) as u8;
    let t0 = tc0(qp, bs);
    let new_p1 = if ap {
        let dp = ((p2 + ((p0i + q0i + 1) >> 1) - 2 * p1i) >> 1).clamp(-t0, t0);
        (p1i + dp).clamp(0, 255) as u8
    } else {
        p1
    };
    let new_q1 = if aq {
        let dq = ((q2 + ((p0i + q0i + 1) >> 1) - 2 * q1i) >> 1).clamp(-t0, t0);
        (q1i + dq).clamp(0, 255) as u8
    } else {
        q1
    };
    (new_p1, new_p0, new_q0, new_q1)
}

/// Deblock a reconstructed luma plane in place.
///
/// Macroblocks are visited in raster order; within each MB, vertical edges
/// are filtered before horizontal ones (H.264 edge order).
pub fn deblock_frame(recon: &mut Plane<u8>, modes: &ModeField, coeffs: &CoeffField, qp: u8) {
    let mb_cols = modes.mb_cols();
    let mb_rows = modes.mb_rows();
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            // Vertical edges at x = mbx*16 + {0, 4, 8, 12}; the x=0 edge only
            // exists when there is a left neighbour.
            for e in 0..4usize {
                if e == 0 && mbx == 0 {
                    continue;
                }
                let xe = mbx * MB_SIZE + e * 4;
                for y in mby * MB_SIZE..(mby + 1) * MB_SIZE {
                    let by4 = y / 4;
                    let q = block_info(modes, coeffs, xe / 4, by4);
                    let p = block_info(modes, coeffs, xe / 4 - 1, by4);
                    let bs = boundary_strength(p, q);
                    if bs.0 == 0 {
                        continue;
                    }
                    let row = recon.row_mut(y);
                    let (np1, np0, nq0, nq1) = filter_line(
                        row[xe - 3],
                        row[xe - 2],
                        row[xe - 1],
                        row[xe],
                        row[xe + 1],
                        row[xe + 2],
                        qp,
                        bs,
                    );
                    row[xe - 2] = np1;
                    row[xe - 1] = np0;
                    row[xe] = nq0;
                    row[xe + 1] = nq1;
                }
            }
            // Horizontal edges at y = mby*16 + {0, 4, 8, 12}.
            for e in 0..4usize {
                if e == 0 && mby == 0 {
                    continue;
                }
                let ye = mby * MB_SIZE + e * 4;
                for x in mbx * MB_SIZE..(mbx + 1) * MB_SIZE {
                    let bx4 = x / 4;
                    let q = block_info(modes, coeffs, bx4, ye / 4);
                    let p = block_info(modes, coeffs, bx4, ye / 4 - 1);
                    let bs = boundary_strength(p, q);
                    if bs.0 == 0 {
                        continue;
                    }
                    let (np1, np0, nq0, nq1) = filter_line(
                        recon.get(x, ye - 3),
                        recon.get(x, ye - 2),
                        recon.get(x, ye - 1),
                        recon.get(x, ye),
                        recon.get(x, ye + 1),
                        recon.get(x, ye + 2),
                        qp,
                        bs,
                    );
                    recon.set(x, ye - 2, np1);
                    recon.set(x, ye - 1, np0);
                    recon.set(x, ye, nq0);
                    recon.set(x, ye + 1, nq1);
                }
            }
        }
    }
}

/// Wavefront-parallel deblocking.
///
/// A macroblock's filtering depends on its left and top neighbours being
/// filtered first, so macroblocks on the same anti-diagonal
/// (`mbx + mby = d`) are mutually independent and can run concurrently.
/// This produces **bit-identical** output to [`deblock_frame`]: processing
/// diagonals in order, and MBs within a diagonal by ascending row, visits
/// every pair of sample-overlapping MBs in the same relative order as the
/// raster scan (an MB's filters only read/write samples shared with its
/// left, top, and top-right neighbours — all on earlier diagonals or
/// earlier within the same diagonal).
///
/// Same-diagonal MBs are *not* fully disjoint (a vertical-edge filter
/// overhangs three columns into the left MB), so the sample pass stays
/// sequential per diagonal; the boundary-strength *decision* pass — the
/// bulk of DBL's branching work — runs in parallel. This is exactly the
/// paper's §III-B point quantified: even with wavefront parallelism, DBL
/// keeps 2·N−1 synchronization points per frame and its ≈2–5 % share of
/// frame time bounds any cross-device gain (Amdahl), which is why FEVES
/// maps the whole R\* group to a single device.
pub fn deblock_frame_wavefront(
    recon: &mut Plane<u8>,
    modes: &ModeField,
    coeffs: &CoeffField,
    qp: u8,
) {
    let mb_cols = modes.mb_cols();
    let mb_rows = modes.mb_rows();
    // SAFETY-free sharing: each diagonal's MBs touch disjoint sample
    // regions (see doc comment), so we hand each worker a raw pointer
    // wrapper… avoided entirely: process each diagonal by splitting the
    // plane into row bands is not possible (edges cross MB rows), so we
    // instead serialize *per diagonal* but compute the per-MB filter
    // decisions (boundary strengths) in parallel ahead of the sample pass.
    for d in 0..(mb_cols + mb_rows - 1) {
        let mbs: Vec<(usize, usize)> = (0..=d.min(mb_rows - 1))
            .filter_map(|mby| {
                let mbx = d - mby;
                (mbx < mb_cols).then_some((mbx, mby))
            })
            .collect();
        // Decision pass (parallel-safe, read-only).
        use rayon::prelude::*;
        let decisions: Vec<(usize, usize)> = mbs
            .par_iter()
            .copied()
            .filter(|&(mbx, mby)| {
                // Cheap cull: skip MBs whose every edge has bS = 0.
                mb_has_active_edge(modes, coeffs, mbx, mby, mb_cols)
            })
            .collect();
        // Sample pass (sequential within the diagonal; regions disjoint, but
        // `Plane` has no disjoint 2-D split — the decision pass carries the
        // parallel share of the work).
        for (mbx, mby) in decisions {
            deblock_mb(recon, modes, coeffs, qp, mbx, mby);
        }
    }
}

fn mb_has_active_edge(
    modes: &ModeField,
    coeffs: &CoeffField,
    mbx: usize,
    mby: usize,
    _mb_cols: usize,
) -> bool {
    for e in 0..4usize {
        if e == 0 && mbx == 0 {
            continue;
        }
        let bx4 = mbx * 4 + e;
        for sy in 0..4 {
            let q = block_info(modes, coeffs, bx4, mby * 4 + sy);
            let p = block_info(modes, coeffs, bx4 - 1, mby * 4 + sy);
            if boundary_strength(p, q).0 != 0 {
                return true;
            }
        }
    }
    for e in 0..4usize {
        if e == 0 && mby == 0 {
            continue;
        }
        let by4 = mby * 4 + e;
        for sx in 0..4 {
            let q = block_info(modes, coeffs, mbx * 4 + sx, by4);
            let p = block_info(modes, coeffs, mbx * 4 + sx, by4 - 1);
            if boundary_strength(p, q).0 != 0 {
                return true;
            }
        }
    }
    false
}

/// Filter the edges of one macroblock (raster-order body of
/// [`deblock_frame`], factored for the wavefront driver).
fn deblock_mb(
    recon: &mut Plane<u8>,
    modes: &ModeField,
    coeffs: &CoeffField,
    qp: u8,
    mbx: usize,
    mby: usize,
) {
    for e in 0..4usize {
        if e == 0 && mbx == 0 {
            continue;
        }
        let xe = mbx * MB_SIZE + e * 4;
        for y in mby * MB_SIZE..(mby + 1) * MB_SIZE {
            let by4 = y / 4;
            let q = block_info(modes, coeffs, xe / 4, by4);
            let p = block_info(modes, coeffs, xe / 4 - 1, by4);
            let bs = boundary_strength(p, q);
            if bs.0 == 0 {
                continue;
            }
            let row = recon.row_mut(y);
            let (np1, np0, nq0, nq1) = filter_line(
                row[xe - 3],
                row[xe - 2],
                row[xe - 1],
                row[xe],
                row[xe + 1],
                row[xe + 2],
                qp,
                bs,
            );
            row[xe - 2] = np1;
            row[xe - 1] = np0;
            row[xe] = nq0;
            row[xe + 1] = nq1;
        }
    }
    for e in 0..4usize {
        if e == 0 && mby == 0 {
            continue;
        }
        let ye = mby * MB_SIZE + e * 4;
        for x in mbx * MB_SIZE..(mbx + 1) * MB_SIZE {
            let bx4 = x / 4;
            let q = block_info(modes, coeffs, bx4, ye / 4);
            let p = block_info(modes, coeffs, bx4, ye / 4 - 1);
            let bs = boundary_strength(p, q);
            if bs.0 == 0 {
                continue;
            }
            let (np1, np0, nq0, nq1) = filter_line(
                recon.get(x, ye - 3),
                recon.get(x, ye - 2),
                recon.get(x, ye - 1),
                recon.get(x, ye),
                recon.get(x, ye + 1),
                recon.get(x, ye + 2),
                qp,
                bs,
            );
            recon.set(x, ye - 2, np1);
            recon.set(x, ye - 1, np0);
            recon.set(x, ye, nq0);
            recon.set(x, ye + 1, nq1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sme::SmeBlockMv;

    fn setup(mb_cols: usize, mb_rows: usize) -> (ModeField, CoeffField) {
        (
            ModeField::new(mb_cols, mb_rows),
            CoeffField::new(mb_cols, mb_rows),
        )
    }

    #[test]
    fn flat_frame_unchanged() {
        let (mut modes, coeffs) = setup(2, 2);
        // Give MBs identical motion so bS = 0 everywhere.
        for mby in 0..2 {
            for mbx in 0..2 {
                let m = modes.mb_mut(mbx, mby);
                m.cost = 0;
                m.mvs = [SmeBlockMv {
                    rf: 0,
                    mv: QpelMv::ZERO,
                    cost: 0,
                }; 16];
            }
        }
        let mut plane: Plane<u8> = Plane::new(32, 32);
        plane.fill(100);
        let before = plane.clone();
        deblock_frame(&mut plane, &modes, &coeffs, 30);
        assert_eq!(plane, before, "bS=0 everywhere → no filtering");
    }

    #[test]
    fn coded_blocks_get_smoothed() {
        let (mut modes, mut coeffs) = setup(2, 1);
        for mbx in 0..2 {
            let m = modes.mb_mut(mbx, 0);
            m.mvs = [SmeBlockMv {
                rf: 0,
                mv: QpelMv::ZERO,
                cost: 0,
            }; 16];
            coeffs.mb_mut(mbx, 0).coded_mask = 0xFFFF; // all blocks coded
        }
        // Step edge exactly at the MB boundary (x = 16), small enough to be
        // a blocking artifact at QP 36 (alpha = 50).
        let mut plane: Plane<u8> = Plane::new(32, 16);
        for y in 0..16 {
            for x in 0..32 {
                plane.set(x, y, if x < 16 { 100 } else { 120 });
            }
        }
        let before = plane.clone();
        deblock_frame(&mut plane, &modes, &coeffs, 36);
        // Samples adjacent to the edge must have moved toward each other.
        for y in 0..16 {
            assert!(
                plane.get(15, y) > before.get(15, y),
                "p0 at y={y} must increase"
            );
            assert!(
                plane.get(16, y) < before.get(16, y),
                "q0 at y={y} must decrease"
            );
        }
    }

    #[test]
    fn genuine_edges_preserved() {
        // A step larger than alpha must NOT be filtered.
        let (mut modes, mut coeffs) = setup(2, 1);
        for mbx in 0..2 {
            modes.mb_mut(mbx, 0).mvs = [SmeBlockMv {
                rf: 0,
                mv: QpelMv::ZERO,
                cost: 0,
            }; 16];
            coeffs.mb_mut(mbx, 0).coded_mask = 0xFFFF;
        }
        let mut plane: Plane<u8> = Plane::new(32, 16);
        for y in 0..16 {
            for x in 0..32 {
                plane.set(x, y, if x < 16 { 30 } else { 220 });
            }
        }
        let before = plane.clone();
        deblock_frame(&mut plane, &modes, &coeffs, 30);
        assert_eq!(plane, before, "real edges must survive deblocking");
    }

    #[test]
    fn motion_discontinuity_triggers_bs1() {
        let p = BlockInfo {
            coded: false,
            rf: 0,
            mv: QpelMv::new(0, 0),
        };
        let q_same = BlockInfo {
            coded: false,
            rf: 0,
            mv: QpelMv::new(3, 0), // < 1 full pel difference
        };
        let q_far = BlockInfo {
            coded: false,
            rf: 0,
            mv: QpelMv::new(4, 0), // exactly 1 full pel
        };
        let q_rf = BlockInfo {
            coded: false,
            rf: 1,
            mv: QpelMv::new(0, 0),
        };
        assert_eq!(boundary_strength(p, q_same).0, 0);
        assert_eq!(boundary_strength(p, q_far).0, 1);
        assert_eq!(boundary_strength(p, q_rf).0, 1);
        let coded = BlockInfo { coded: true, ..p };
        assert_eq!(boundary_strength(coded, q_same).0, 2);
    }

    #[test]
    fn deblocking_is_deterministic() {
        let (mut modes, mut coeffs) = setup(3, 3);
        for mby in 0..3 {
            for mbx in 0..3 {
                modes.mb_mut(mbx, mby).mvs = [SmeBlockMv {
                    rf: 0,
                    mv: QpelMv::new((mbx * 4) as i16, 0),
                    cost: 0,
                }; 16];
                coeffs.mb_mut(mbx, mby).coded_mask = if (mbx + mby) % 2 == 0 { 0xFFFF } else { 0 };
            }
        }
        let mut a: Plane<u8> = Plane::new(48, 48);
        for y in 0..48 {
            for x in 0..48 {
                a.set(x, y, ((x * 5 + y * 3) % 256) as u8);
            }
        }
        let mut b = a.clone();
        deblock_frame(&mut a, &modes, &coeffs, 32);
        deblock_frame(&mut b, &modes, &coeffs, 32);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod wavefront_tests {
    use super::*;
    use crate::sme::SmeBlockMv;
    use crate::types::QpelMv;

    #[test]
    fn wavefront_matches_raster_exactly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let (mb_cols, mb_rows) = (6, 5);
        let mut modes = ModeField::new(mb_cols, mb_rows);
        let mut coeffs = CoeffField::new(mb_cols, mb_rows);
        for mby in 0..mb_rows {
            for mbx in 0..mb_cols {
                let mut mvs = [SmeBlockMv {
                    rf: rng.gen_range(0..2),
                    mv: QpelMv::new(rng.gen_range(-20..20), rng.gen_range(-20..20)),
                    cost: 0,
                }; 16];
                for mv in mvs.iter_mut() {
                    mv.mv = QpelMv::new(rng.gen_range(-20..20), rng.gen_range(-20..20));
                }
                modes.mb_mut(mbx, mby).mvs = mvs;
                coeffs.mb_mut(mbx, mby).coded_mask = rng.gen();
            }
        }
        let mut plane: Plane<u8> = Plane::new(mb_cols * 16, mb_rows * 16);
        for y in 0..plane.height() {
            for x in 0..plane.width() {
                plane.set(x, y, rng.gen());
            }
        }
        let mut raster = plane.clone();
        let mut wave = plane;
        deblock_frame(&mut raster, &modes, &coeffs, 32);
        deblock_frame_wavefront(&mut wave, &modes, &coeffs, 32);
        assert_eq!(raster, wave, "wavefront order must be bit-identical");
    }
}
