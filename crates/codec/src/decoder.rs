//! Inter-frame **decoder**: reconstruct pixels from the bitstream alone.
//!
//! The encoder's reconstruction loop (MC → TQ⁻¹ → DBL) is re-run here from
//! *decoded* syntax — modes, motion vectors and quantized levels — against
//! the same reference store. Decoding must reproduce the encoder's
//! reconstruction **bit-exactly** (the closed-loop property every hybrid
//! codec rests on); the round-trip tests assert it. This is the strongest
//! possible evidence that the bitstream is complete and self-contained:
//! nothing the encoder knows beyond the references is needed to rebuild
//! the frame.

use crate::chroma::{chroma_qp, predict_chroma_block, ChromaField};
use crate::dbl::deblock_frame;
use crate::entropy::{decode_frame, decode_frame_yuv, DecodeError};
use crate::inter_loop::ReferenceStore;
use crate::mc::{predict_mb, ModeField};
use crate::quant::itq_block;
use crate::recon::CoeffField;
use feves_video::geometry::MB_SIZE;
use feves_video::plane::Plane;

/// A decoded inter frame.
#[derive(Clone, Debug)]
pub struct DecodedFrame {
    /// Reconstructed luma (deblocked — identical to the encoder's RF).
    pub y: Plane<u8>,
    /// Reconstructed chroma planes when the stream carries them.
    pub chroma: Option<(Plane<u8>, Plane<u8>)>,
    /// QP signalled in the stream.
    pub qp: u8,
}

/// Rebuild the luma reconstruction from decoded syntax.
fn reconstruct_luma(
    modes: &ModeField,
    coeffs: &CoeffField,
    store: &ReferenceStore,
    qp: u8,
) -> Plane<u8> {
    let sfs = store.sfs();
    let width = sfs[0].width();
    let height = sfs[0].height();
    let mut recon: Plane<u8> = Plane::new(width, height);
    let mut pbuf = [0i16; 256];
    for mby in 0..modes.mb_rows() {
        for mbx in 0..modes.mb_cols() {
            let m = modes.mb(mbx, mby);
            let (cx, cy) = (mbx * MB_SIZE, mby * MB_SIZE);
            predict_mb(m, &sfs, cx, cy, &mut pbuf);
            let c = coeffs.mb(mbx, mby);
            for blk in 0..16 {
                let bx = (blk % 4) * 4;
                let by = (blk / 4) * 4;
                let residual = if c.coded_mask & (1 << blk) != 0 {
                    itq_block(&c.blocks[blk], qp)
                } else {
                    [0i16; 16]
                };
                for row in 0..4 {
                    for col in 0..4 {
                        let idx = (by + row) * MB_SIZE + bx + col;
                        let v =
                            (pbuf[idx].clamp(0, 255) + residual[row * 4 + col]).clamp(0, 255) as u8;
                        recon.set(cx + bx + col, cy + by + row, v);
                    }
                }
            }
        }
    }
    deblock_frame(&mut recon, modes, coeffs, qp);
    recon
}

/// Rebuild the chroma reconstructions from decoded syntax.
fn reconstruct_chroma(
    modes: &ModeField,
    chroma: &ChromaField,
    store: &ReferenceStore,
    luma_qp: u8,
) -> Option<(Plane<u8>, Plane<u8>)> {
    let (refs_u, refs_v) = store.chroma_planes()?;
    let qp_c = chroma_qp(luma_qp);
    let (cw, ch) = (refs_u[0].width(), refs_u[0].height());
    let mut out_u: Plane<u8> = Plane::new(cw, ch);
    let mut out_v: Plane<u8> = Plane::new(cw, ch);
    let mut block = vec![0i16; 64];
    for mby in 0..modes.mb_rows() {
        for mbx in 0..modes.mb_cols() {
            let m = modes.mb(mbx, mby);
            let cm = chroma.mb(mbx, mby);
            let (cx, cy) = (mbx * 8, mby * 8);
            let mode = m.mode;
            let (lw, lh) = mode.dims();
            let (w, h) = (lw / 2, lh / 2);
            for (ci, (refs, out, blocks, mask_shift)) in [
                (&refs_u, &mut out_u, &cm.cb, 0u8),
                (&refs_v, &mut out_v, &cm.cr, 4u8),
            ]
            .into_iter()
            .enumerate()
            {
                let _ = ci;
                let mut pred8 = [0i16; 64];
                for i in 0..mode.count() {
                    let (ox, oy) = mode.offset(i);
                    let (ox, oy) = (ox / 2, oy / 2);
                    let blk = &m.mvs[i];
                    block.truncate(0);
                    block.resize(w * h, 0);
                    predict_chroma_block(
                        refs[blk.rf as usize],
                        cx + ox,
                        cy + oy,
                        blk.mv,
                        w,
                        h,
                        &mut block,
                    );
                    for row in 0..h {
                        for col in 0..w {
                            pred8[(oy + row) * 8 + ox + col] = block[row * w + col];
                        }
                    }
                }
                #[allow(clippy::needless_range_loop)] // b indexes geometry AND blocks
                for b in 0..4 {
                    let bx = (b % 2) * 4;
                    let by = (b / 2) * 4;
                    let residual = if cm.coded_mask & (1 << (b as u8 + mask_shift)) != 0 {
                        itq_block(&blocks[b], qp_c)
                    } else {
                        [0i16; 16]
                    };
                    for row in 0..4 {
                        for col in 0..4 {
                            let p = pred8[(by + row) * 8 + bx + col];
                            let v = (p + residual[row * 4 + col]).clamp(0, 255) as u8;
                            out.set(cx + bx + col, cy + by + row, v);
                        }
                    }
                }
            }
        }
    }
    Some((out_u, out_v))
}

/// Decode a luma-only stream written by [`crate::entropy::encode_frame`].
pub fn decode_inter_frame(
    bitstream: &[u8],
    store: &ReferenceStore,
) -> Result<DecodedFrame, DecodeError> {
    let (modes, coeffs, qp) = decode_frame(bitstream)?;
    let y = reconstruct_luma(&modes, &coeffs, store, qp);
    Ok(DecodedFrame {
        y,
        chroma: None,
        qp,
    })
}

/// Decode a YUV stream written by [`crate::entropy::encode_frame_yuv`].
pub fn decode_inter_frame_yuv(
    bitstream: &[u8],
    store: &ReferenceStore,
) -> Result<DecodedFrame, DecodeError> {
    let (modes, coeffs, chroma, qp) = decode_frame_yuv(bitstream)?;
    let y = reconstruct_luma(&modes, &coeffs, store, qp);
    let chroma = reconstruct_chroma(&modes, &chroma, store, qp);
    Ok(DecodedFrame { y, chroma, qp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inter_loop::{encode_inter_frame, encode_inter_frame_yuv};
    use crate::interp::interpolate;
    use crate::types::{EncodeParams, SearchArea};
    use feves_video::synth::{SynthConfig, SynthSequence};

    fn params() -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(16),
            n_ref: 2,
            ..Default::default()
        }
    }

    #[test]
    fn decoder_reproduces_encoder_reconstruction() {
        let mut cfg = SynthConfig::tiny_test();
        cfg.resolution = feves_video::geometry::Resolution::QCIF;
        let frames = SynthSequence::new(cfg).take_frames(4);
        let params = params();
        let intra = crate::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
        let mut store = ReferenceStore::new(params.n_ref);
        store.push(intra.recon);
        for f in &frames[1..] {
            let out = encode_inter_frame(f.y(), &store, &params);
            let decoded =
                decode_inter_frame(&out.bitstream, &store).expect("own stream must decode");
            assert_eq!(decoded.qp, params.qp);
            assert_eq!(
                decoded.y, out.recon,
                "decoder must match encoder reconstruction bit-exactly"
            );
            store.push(out.recon);
        }
    }

    #[test]
    fn yuv_decoder_matches_encoder_chroma() {
        let mut cfg = SynthConfig::tiny_test();
        cfg.resolution = feves_video::geometry::Resolution::QCIF;
        let frames = SynthSequence::new(cfg).take_frames(3);
        let params = params();
        let intra = crate::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
        let chroma0 = crate::chroma::encode_chroma_intra(
            frames[0].u(),
            frames[0].v(),
            frames[0].mb_cols(),
            frames[0].mb_rows(),
            params.qp_intra,
        );
        let mut store = ReferenceStore::new(params.n_ref);
        let sf = interpolate(&intra.recon);
        store.push_yuv(intra.recon, sf, chroma0.recon_u, chroma0.recon_v);
        for f in &frames[1..] {
            let out = encode_inter_frame_yuv(f, &store, &params);
            let (stream, _) = crate::entropy::encode_frame_yuv(
                &out.luma.modes,
                &out.luma.coeffs,
                &out.chroma.coeffs,
                params.qp,
            );
            let decoded = decode_inter_frame_yuv(&stream, &store).unwrap();
            assert_eq!(decoded.y, out.luma.recon, "luma mismatch");
            let (du, dv) = decoded.chroma.expect("stream carries chroma");
            assert_eq!(du, out.chroma.recon_u, "Cb mismatch");
            assert_eq!(dv, out.chroma.recon_v, "Cr mismatch");
            let sf = interpolate(&out.luma.recon);
            store.push_yuv(out.luma.recon, sf, out.chroma.recon_u, out.chroma.recon_v);
        }
    }

    #[test]
    fn corrupted_stream_does_not_panic() {
        let mut cfg = SynthConfig::tiny_test();
        cfg.resolution = feves_video::geometry::Resolution::QCIF;
        let frames = SynthSequence::new(cfg).take_frames(2);
        let params = params();
        let intra = crate::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
        let mut store = ReferenceStore::new(params.n_ref);
        store.push(intra.recon);
        let out = encode_inter_frame(frames[1].y(), &store, &params);
        let mut corrupted = out.bitstream.to_vec();
        for i in (0..corrupted.len()).step_by(7) {
            corrupted[i] ^= 0xA5;
        }
        let _ = decode_inter_frame(&corrupted, &store); // Err or garbage, no panic
        let _ = decode_inter_frame(&corrupted[..3.min(corrupted.len())], &store);
    }
}
