//! The H.264/AVC 4×4 integer core transform (forward and inverse).
//!
//! Forward: `W = Cf · X · Cfᵀ` with `Cf = [[1,1,1,1],[2,1,-1,-2],
//! [1,-1,-1,1],[1,-2,2,-1]]`, computed with exact integer butterflies.
//! Inverse uses the standard half-pel weighted butterfly with the final
//! `(x + 32) >> 6` rounding, matching the reference decoder bit-exactly so
//! encoder and (hypothetical) decoder reconstruct identically.

/// Forward 4×4 core transform, in place (row-major 16 coefficients).
pub fn forward_4x4(b: &mut [i32; 16]) {
    // Rows.
    for r in 0..4 {
        let (x0, x1, x2, x3) = (b[r * 4], b[r * 4 + 1], b[r * 4 + 2], b[r * 4 + 3]);
        let s0 = x0 + x3;
        let s1 = x1 + x2;
        let d0 = x0 - x3;
        let d1 = x1 - x2;
        b[r * 4] = s0 + s1;
        b[r * 4 + 1] = 2 * d0 + d1;
        b[r * 4 + 2] = s0 - s1;
        b[r * 4 + 3] = d0 - 2 * d1;
    }
    // Columns.
    for c in 0..4 {
        let (x0, x1, x2, x3) = (b[c], b[4 + c], b[8 + c], b[12 + c]);
        let s0 = x0 + x3;
        let s1 = x1 + x2;
        let d0 = x0 - x3;
        let d1 = x1 - x2;
        b[c] = s0 + s1;
        b[4 + c] = 2 * d0 + d1;
        b[8 + c] = s0 - s1;
        b[12 + c] = d0 - 2 * d1;
    }
}

/// Inverse 4×4 core transform, in place, including the final
/// `(x + 32) >> 6` normalization.
pub fn inverse_4x4(b: &mut [i32; 16]) {
    // Rows.
    for r in 0..4 {
        let (w0, w1, w2, w3) = (b[r * 4], b[r * 4 + 1], b[r * 4 + 2], b[r * 4 + 3]);
        let e0 = w0 + w2;
        let e1 = w0 - w2;
        let e2 = (w1 >> 1) - w3;
        let e3 = w1 + (w3 >> 1);
        b[r * 4] = e0 + e3;
        b[r * 4 + 1] = e1 + e2;
        b[r * 4 + 2] = e1 - e2;
        b[r * 4 + 3] = e0 - e3;
    }
    // Columns, then normalize.
    for c in 0..4 {
        let (w0, w1, w2, w3) = (b[c], b[4 + c], b[8 + c], b[12 + c]);
        let e0 = w0 + w2;
        let e1 = w0 - w2;
        let e2 = (w1 >> 1) - w3;
        let e3 = w1 + (w3 >> 1);
        b[c] = (e0 + e3 + 32) >> 6;
        b[4 + c] = (e1 + e2 + 32) >> 6;
        b[8 + c] = (e1 - e2 + 32) >> 6;
        b[12 + c] = (e0 - e3 + 32) >> 6;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference matrix implementation of the forward transform.
    fn forward_naive(x: &[i32; 16]) -> [i32; 16] {
        const CF: [[i32; 4]; 4] = [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]];
        let mut t = [[0i32; 4]; 4];
        // T = Cf * X
        for i in 0..4 {
            for j in 0..4 {
                t[i][j] = (0..4).map(|k| CF[i][k] * x[k * 4 + j]).sum();
            }
        }
        // W = T * Cf^T
        let mut w = [0i32; 16];
        for i in 0..4 {
            for j in 0..4 {
                w[i * 4 + j] = (0..4).map(|k| t[i][k] * CF[j][k]).sum();
            }
        }
        w
    }

    #[test]
    fn butterfly_matches_matrix_form() {
        let mut x: [i32; 16] = core::array::from_fn(|i| (i as i32 * 7 - 40) % 61);
        let expected = forward_naive(&x);
        forward_4x4(&mut x);
        assert_eq!(x, expected);
    }

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let mut b = [5i32; 16];
        forward_4x4(&mut b);
        assert_eq!(b[0], 16 * 5);
        assert!(b[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn forward_inverse_reconstructs_with_scale() {
        // Without quantization, inverse(forward(x)) must reproduce x exactly
        // when the inverse's input is pre-scaled by the standard's dequant
        // identity at QP where MF*V = 2^20-ish. The pure-transform identity
        // is: inverse(forward(x) elementwise-scaled to the inverse domain).
        // Here we verify the scale structure: Cf.Cf^T has diagonal (4,5,4,5),
        // so forward then inverse with per-position rescale reproduces x.
        let x: [i32; 16] = core::array::from_fn(|i| (i as i32 * 13 - 90) % 128);
        let mut w = x;
        forward_4x4(&mut w);
        // Per-position rescale into the inverse transform's expected domain:
        // the standard embeds this in MF/V; the combined identity is
        // inverse(W ∘ S) == x with S = 64 / (norm_f ∘ norm_i). Use the known
        // per-class weights: class0 (corners) 16/4=..., easier: verify via
        // quant/dequant path in quant.rs tests. Here check linearity instead.
        let mut w2 = x.map(|v| v * 2);
        forward_4x4(&mut w2);
        for i in 0..16 {
            assert_eq!(w2[i], 2 * w[i], "transform must be linear");
        }
    }

    #[test]
    fn inverse_of_zero_is_zero() {
        let mut b = [0i32; 16];
        inverse_4x4(&mut b);
        assert_eq!(b, [0i32; 16]);
    }

    #[test]
    fn inverse_dc_only() {
        // A pure DC coefficient of 64 must reconstruct a flat block of 1:
        // each inverse pass multiplies DC by 1 and the final >>6 divides 64.
        let mut b = [0i32; 16];
        b[0] = 64;
        inverse_4x4(&mut b);
        assert_eq!(b, [1i32; 16]);
    }
}
