//! Motion estimation: Full-Search Block-Matching (FSBM) over multiple
//! reference frames with all seven H.264/AVC partition modes.
//!
//! For every candidate displacement the sixteen 4×4 SADs of the macroblock
//! are computed once ([`crate::sad::SadGrid`]) and hierarchically aggregated
//! into the 41 partition blocks — the "fast full search" scheme used by the
//! JM reference software, which is also how the paper's CPU/GPU kernels are
//! structured. Results are *independent per macroblock*, which is what makes
//! the paper's row-wise cross-device distribution possible: any split of MB
//! rows over devices yields bit-identical motion fields.
//!
//! The search is exhaustive and content-independent (the basis for the
//! paper's observation that encoding time does not vary with content), and
//! the per-block winner is the minimum-SAD candidate with a deterministic
//! tie-break (first in `rf`-then-raster scan order).
//!
//! The SAD grid evaluation dispatches through [`crate::kernels`]
//! (`FEVES_KERNELS=scalar|fast`); both implementations are bit-exact, so the
//! selected kernel affects throughput only, never the motion field.

use crate::sad::{sad_grid_16x16, SadGrid};
use crate::types::{EncodeParams, Mv, PartitionMode, TOTAL_PARTITION_BLOCKS};
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;
use rayon::prelude::*;

/// Best match for one partition block: reference index, motion vector, SAD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMv {
    /// Reference-frame index (0 = most recent).
    pub rf: u8,
    /// Full-pel motion vector.
    pub mv: Mv,
    /// SAD of the winning candidate.
    pub cost: u32,
}

impl Default for BlockMv {
    fn default() -> Self {
        BlockMv {
            rf: 0,
            mv: Mv::ZERO,
            cost: u32::MAX,
        }
    }
}

/// Motion data of one macroblock: best [`BlockMv`] for each of the 41
/// partition blocks across the 7 modes, stored mode-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbMotion {
    blocks: [BlockMv; TOTAL_PARTITION_BLOCKS],
}

impl Default for MbMotion {
    fn default() -> Self {
        MbMotion {
            blocks: [BlockMv::default(); TOTAL_PARTITION_BLOCKS],
        }
    }
}

/// Offset of a partition mode's first block in the mode-major layout.
pub const fn mode_base(mode: PartitionMode) -> usize {
    match mode {
        PartitionMode::P16x16 => 0,
        PartitionMode::P16x8 => 1,
        PartitionMode::P8x16 => 3,
        PartitionMode::P8x8 => 5,
        PartitionMode::P8x4 => 9,
        PartitionMode::P4x8 => 17,
        PartitionMode::P4x4 => 25,
    }
}

impl MbMotion {
    /// Best match for block `idx` of `mode`.
    #[inline]
    pub fn block(&self, mode: PartitionMode, idx: usize) -> &BlockMv {
        debug_assert!(idx < mode.count());
        &self.blocks[mode_base(mode) + idx]
    }

    /// Mutable access to block `idx` of `mode`.
    #[inline]
    pub fn block_mut(&mut self, mode: PartitionMode, idx: usize) -> &mut BlockMv {
        debug_assert!(idx < mode.count());
        &mut self.blocks[mode_base(mode) + idx]
    }

    /// All 41 blocks, mode-major.
    pub fn all_blocks(&self) -> &[BlockMv; TOTAL_PARTITION_BLOCKS] {
        &self.blocks
    }

    /// Total SAD of a partition mode (sum over its blocks).
    pub fn mode_cost(&self, mode: PartitionMode) -> u64 {
        (0..mode.count())
            .map(|i| self.block(mode, i).cost as u64)
            .sum()
    }
}

/// The motion field of a frame: one [`MbMotion`] per macroblock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeField {
    mbs: Vec<MbMotion>,
    mb_cols: usize,
    mb_rows: usize,
}

impl MeField {
    /// Create an empty (all-default) motion field.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        MeField {
            mbs: vec![MbMotion::default(); mb_cols * mb_rows],
            mb_cols,
            mb_rows,
        }
    }

    /// Macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Motion data of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb(&self, mbx: usize, mby: usize) -> &MbMotion {
        &self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable motion data of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb_mut(&mut self, mbx: usize, mby: usize) -> &mut MbMotion {
        &mut self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable slice covering the MB rows of `range` (for row-partitioned
    /// fills by different devices).
    pub fn rows_mut(&mut self, range: RowRange) -> &mut [MbMotion] {
        &mut self.mbs[range.start * self.mb_cols..range.end * self.mb_cols]
    }

    /// Borrow the rows of `range`.
    pub fn rows(&self, range: RowRange) -> &[MbMotion] {
        &self.mbs[range.start * self.mb_cols..range.end * self.mb_cols]
    }
}

/// Hierarchically aggregate a 4×4 [`SadGrid`] into the 41 partition SADs
/// (mode-major layout matching [`mode_base`]).
#[inline]
pub fn aggregate_partitions(grid: &SadGrid) -> [u32; TOTAL_PARTITION_BLOCKS] {
    let mut out = [0u32; TOTAL_PARTITION_BLOCKS];
    // 4x4: direct copy.
    out[25..41].copy_from_slice(&grid[..]);
    // 8x4 (two horizontal 4x4s), raster of 2 cols x 4 rows.
    let mut p8x4 = [0u32; 8];
    for (j, v) in p8x4.iter_mut().enumerate() {
        let gx = (j % 2) * 2;
        let gy = j / 2;
        *v = grid[gy * 4 + gx] + grid[gy * 4 + gx + 1];
    }
    out[9..17].copy_from_slice(&p8x4);
    // 4x8 (two vertical 4x4s), raster of 4 cols x 2 rows.
    let mut p4x8 = [0u32; 8];
    for (j, v) in p4x8.iter_mut().enumerate() {
        let gx = j % 4;
        let gy = (j / 4) * 2;
        *v = grid[gy * 4 + gx] + grid[(gy + 1) * 4 + gx];
    }
    out[17..25].copy_from_slice(&p4x8);
    // 8x8 from two stacked 8x4s.
    let mut p8x8 = [0u32; 4];
    for (k, v) in p8x8.iter_mut().enumerate() {
        let col = k % 2;
        let row = (k / 2) * 2;
        *v = p8x4[row * 2 + col] + p8x4[(row + 1) * 2 + col];
    }
    out[5..9].copy_from_slice(&p8x8);
    // 16x8 / 8x16 / 16x16 from 8x8 quadrants.
    out[1] = p8x8[0] + p8x8[1];
    out[2] = p8x8[2] + p8x8[3];
    out[3] = p8x8[0] + p8x8[2];
    out[4] = p8x8[1] + p8x8[3];
    out[0] = out[1] + out[2];
    out
}

/// Run FSBM for one macroblock against all reference frames, returning the
/// per-partition best matches.
pub fn motion_estimate_mb(
    cf: &Plane<u8>,
    rfs: &[&Plane<u8>],
    params: &EncodeParams,
    mbx: usize,
    mby: usize,
) -> MbMotion {
    let mut best = MbMotion::default();
    let range = params.search_area.range();
    let cx = mbx * MB_SIZE;
    let cy = mby * MB_SIZE;
    for (rf_idx, rf) in rfs.iter().enumerate().take(params.n_ref) {
        for dy in -range..range {
            let ry = cy as isize + dy as isize;
            for dx in -range..range {
                let rx = cx as isize + dx as isize;
                let grid = sad_grid_16x16(cf, cx, cy, rf, rx, ry);
                let parts = aggregate_partitions(&grid);
                let mv = Mv::new(dx, dy);
                for (b, &cost) in best.blocks.iter_mut().zip(parts.iter()) {
                    // Strict `<` keeps the first candidate in scan order on
                    // ties → deterministic regardless of parallel split.
                    if cost < b.cost {
                        *b = BlockMv {
                            rf: rf_idx as u8,
                            mv,
                            cost,
                        };
                    }
                }
            }
        }
    }
    best
}

/// Run FSBM over the MB rows of `rows`, writing into `out` (one entry per MB
/// of the range, raster order). This is the row-sliced entry point the
/// framework assigns to each device.
pub fn motion_estimate_rows(
    cf: &Plane<u8>,
    rfs: &[&Plane<u8>],
    params: &EncodeParams,
    rows: RowRange,
    out: &mut [MbMotion],
) {
    let mb_cols = cf.width() / MB_SIZE;
    assert_eq!(
        out.len(),
        rows.len() * mb_cols,
        "output slice size mismatch"
    );
    for (i, mby) in rows.iter().enumerate() {
        for mbx in 0..mb_cols {
            out[i * mb_cols + mbx] = motion_estimate_mb(cf, rfs, params, mbx, mby);
        }
    }
}

/// Multi-threaded variant of [`motion_estimate_rows`] (rayon over MB rows) —
/// the "OpenMP across cores" axis of the paper's CPU kernels.
pub fn motion_estimate_rows_parallel(
    cf: &Plane<u8>,
    rfs: &[&Plane<u8>],
    params: &EncodeParams,
    rows: RowRange,
    out: &mut [MbMotion],
) {
    let mb_cols = cf.width() / MB_SIZE;
    assert_eq!(
        out.len(),
        rows.len() * mb_cols,
        "output slice size mismatch"
    );
    out.par_chunks_mut(mb_cols)
        .zip(rows.start..rows.end)
        .for_each(|(row_out, mby)| {
            for (mbx, out) in row_out.iter_mut().enumerate() {
                *out = motion_estimate_mb(cf, rfs, params, mbx, mby);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SearchArea, ALL_PARTITION_MODES};

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    fn small_params() -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_matches_naive_sums() {
        let grid: SadGrid = core::array::from_fn(|i| (i as u32 + 1) * 3);
        let parts = aggregate_partitions(&grid);
        for mode in ALL_PARTITION_MODES {
            for i in 0..mode.count() {
                let (ox, oy) = mode.offset(i);
                let (w, h) = mode.dims();
                let naive = crate::sad::grid_partition_sad(&grid, ox, oy, w, h);
                assert_eq!(
                    parts[mode_base(mode) + i],
                    naive,
                    "{mode:?} block {i} mismatch"
                );
            }
        }
    }

    #[test]
    fn finds_exact_translation() {
        // Reference = textured plane; current = reference shifted by (3, -2).
        let rf = plane_from_fn(64, 64, |x, y| ((x * 37) ^ (y * 11)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| {
            rf.get_clamped(x as isize + 3, y as isize - 2)
        });
        let m = motion_estimate_mb(&cf, &[&rf], &small_params(), 1, 1);
        let b = m.block(PartitionMode::P16x16, 0);
        assert_eq!(b.mv, Mv::new(3, -2));
        assert_eq!(b.cost, 0);
        // Every partition of every mode must also find the same shift.
        for mode in ALL_PARTITION_MODES {
            for i in 0..mode.count() {
                assert_eq!(m.block(mode, i).mv, Mv::new(3, -2), "{mode:?}/{i}");
                assert_eq!(m.block(mode, i).cost, 0);
            }
        }
    }

    #[test]
    fn zero_motion_on_identical_frames_with_tiebreak() {
        let rf = plane_from_fn(48, 48, |x, y| ((x + 2 * y) % 256) as u8);
        let m = motion_estimate_mb(&rf, &[&rf], &small_params(), 1, 1);
        // Identical frames: zero-cost match exists at (0,0); scan order must
        // pick the *first* zero-cost candidate deterministically. A diagonal
        // gradient is also zero-cost along an anti-diagonal, so the winner is
        // the first in scan order — assert cost 0 and determinism.
        let again = motion_estimate_mb(&rf, &[&rf], &small_params(), 1, 1);
        assert_eq!(m, again);
        assert_eq!(m.block(PartitionMode::P16x16, 0).cost, 0);
    }

    #[test]
    fn second_reference_wins_when_better() {
        let rf_far = plane_from_fn(64, 64, |x, y| ((x * 37) ^ (y * 11)) as u8);
        let rf_near = plane_from_fn(64, 64, |_, _| 0); // useless reference
        let cf = rf_far.clone();
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 2,
            ..Default::default()
        };
        // rfs[0] is useless, rfs[1] is a perfect match.
        let m = motion_estimate_mb(&cf, &[&rf_near, &rf_far], &params, 1, 1);
        let b = m.block(PartitionMode::P16x16, 0);
        assert_eq!(b.rf, 1);
        assert_eq!(b.cost, 0);
    }

    #[test]
    fn n_ref_limits_search() {
        let rf0 = plane_from_fn(64, 64, |_, _| 0);
        let rf1 = plane_from_fn(64, 64, |x, y| ((x * 37) ^ (y * 11)) as u8);
        let cf = rf1.clone();
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1, // only rfs[0] may be searched
            ..Default::default()
        };
        let m = motion_estimate_mb(&cf, &[&rf0, &rf1], &params, 1, 1);
        assert_eq!(m.block(PartitionMode::P16x16, 0).rf, 0);
        assert!(m.block(PartitionMode::P16x16, 0).cost > 0);
    }

    #[test]
    fn row_sliced_equals_whole_frame() {
        let rf = plane_from_fn(64, 80, |x, y| ((x * 3 + y * 7) % 251) as u8);
        let cf = plane_from_fn(64, 80, |x, y| {
            rf.get_clamped(x as isize - 1, y as isize + 1)
                .wrapping_add(1)
        });
        let params = small_params();
        let mb_cols = 4;
        let mb_rows = 5;

        let mut whole = vec![MbMotion::default(); mb_cols * mb_rows];
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 5), &mut whole);

        // Split 2 + 3 rows as two "devices" would.
        let mut top = vec![MbMotion::default(); mb_cols * 2];
        let mut bottom = vec![MbMotion::default(); mb_cols * 3];
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 2), &mut top);
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(2, 5), &mut bottom);

        let stitched: Vec<MbMotion> = top.into_iter().chain(bottom).collect();
        assert_eq!(whole, stitched, "row partitioning must not change results");
    }

    #[test]
    fn parallel_equals_sequential() {
        let rf = plane_from_fn(64, 64, |x, y| ((x * 5) ^ (y * 3)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| rf.get_clamped(x as isize + 2, y as isize));
        let params = small_params();
        let mut seq = vec![MbMotion::default(); 16];
        let mut par = vec![MbMotion::default(); 16];
        motion_estimate_rows(&cf, &[&rf], &params, RowRange::new(0, 4), &mut seq);
        motion_estimate_rows_parallel(&cf, &[&rf], &params, RowRange::new(0, 4), &mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn me_field_row_views() {
        let mut f = MeField::new(4, 6);
        f.mb_mut(2, 3).block_mut(PartitionMode::P16x16, 0).cost = 7;
        let rows = f.rows(RowRange::new(3, 4));
        assert_eq!(rows[2].block(PartitionMode::P16x16, 0).cost, 7);
        assert_eq!(f.rows_mut(RowRange::new(0, 6)).len(), 24);
    }
}
