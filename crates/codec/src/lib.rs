#![warn(missing_docs)]
//! H.264/AVC-style inter-loop encoding library for FEVES.
//!
//! Implements every module of the paper's Fig 1 inter-loop as independent,
//! row-sliceable kernels:
//!
//! | module | paper role | entry point |
//! |---|---|---|
//! | [`me`] | Motion Estimation (FSBM, 7 partitions, multi-RF) | [`me::motion_estimate_rows`] |
//! | [`interp`] | Interpolation → SF (6-tap + bilinear) | [`interp::SubpelFrame`] |
//! | [`sme`] | Sub-pixel Motion Estimation | [`sme::sme_rows`] |
//! | [`mc`] | Motion Compensation + mode decision (R\*) | [`mc::mc_rows`] |
//! | [`transform`] / [`quant`] / [`recon`] | TQ and TQ⁻¹ (R\*) | [`recon::tq_rows`], [`recon::itq_recon_rows`] |
//! | [`dbl`] | Deblocking Filtering (R\*) | [`dbl::deblock_frame`] |
//! | [`entropy`] | Entropy coding | [`entropy::encode_frame`] |
//! | [`intra`] | I-slice coding | [`intra::encode_intra_frame`] |
//! | [`kernels`] | SSE/AVX-style hot-kernel fast paths (SWAR) | [`kernels::active_kind`] |
//!
//! The ME/INT/SME kernels are *partition-invariant*: their result for a
//! macroblock row depends only on the frame data, so distributing MB rows
//! across heterogeneous devices (the whole point of FEVES) cannot change the
//! encoded output. [`inter_loop::encode_inter_frame`] is the single-device
//! golden reference the framework is tested against, and [`workload`] is the
//! analytic cost model the platform simulator charges time with.

pub mod cabac;
pub mod chroma;
pub mod dbl;
pub mod decoder;
pub mod entropy;
pub mod inter_loop;
pub mod interp;
pub mod intra;
pub mod kernels;
pub mod mc;
pub mod me;
pub mod quant;
pub mod rate;
pub mod recon;
pub mod sad;
pub mod sme;
pub mod transform;
pub mod types;
pub mod workload;

pub use inter_loop::{encode_inter_frame, InterFrameOutput, ReferenceStore};
pub use interp::SubpelFrame;
pub use kernels::KernelKind;
pub use me::{MbMotion, MeField};
pub use sme::{MbSubMotion, SmeField};
pub use types::{EncodeParams, Module, Mv, PartitionMode, QpelMv, SearchArea};
