//! Intra-frame coding: 16×16 luma intra prediction (DC / Vertical /
//! Horizontal / Plane) with the shared TQ/TQ⁻¹ reconstruction path.
//!
//! The paper evaluates IPPP sequences: the first frame is intra-coded, every
//! subsequent frame runs the inter-loop. Intra coding here is sequential per
//! macroblock (prediction uses already-reconstructed neighbours), which is
//! fine — it happens once per sequence and is not part of the balanced load.

use crate::quant::{has_coefficients, itq_block, tq_block};
use crate::recon::{CoeffField, MbCoeffs};
use feves_video::geometry::MB_SIZE;
use feves_video::plane::Plane;

/// The four H.264 16×16 luma intra prediction modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntraMode {
    /// Mean of available neighbours (fallback 128).
    Dc,
    /// Copy the row above downward.
    Vertical,
    /// Copy the left column rightward.
    Horizontal,
    /// First-order plane fit from the top and left borders.
    Plane,
}

/// The nine-ish 4×4 luma intra prediction modes (the directional subset
/// implemented here; the codec is self-consistent, so the exact mode set
/// only affects compression, not correctness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intra4Mode {
    /// Copy the row above.
    Vertical,
    /// Copy the left column.
    Horizontal,
    /// Mean of available neighbours.
    Dc,
    /// 45° down-left diagonal from the above/above-right samples.
    DiagDownLeft,
    /// 45° down-right diagonal from above/left/corner samples.
    DiagDownRight,
}

/// All implemented 4×4 modes in coding order.
pub const ALL_INTRA4_MODES: [Intra4Mode; 5] = [
    Intra4Mode::Vertical,
    Intra4Mode::Horizontal,
    Intra4Mode::Dc,
    Intra4Mode::DiagDownLeft,
    Intra4Mode::DiagDownRight,
];

/// Macroblock-level intra choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MbIntraChoice {
    /// One whole-MB 16×16 prediction.
    I16(IntraMode),
    /// Sixteen independent 4×4 predictions (modes not retained per block).
    I4,
}

/// Result of intra-encoding a frame.
#[derive(Clone, Debug)]
pub struct IntraFrameResult {
    /// Reconstructed frame (becomes the first reference frame).
    pub recon: Plane<u8>,
    /// Winning prediction choice per macroblock (raster order).
    pub modes: Vec<MbIntraChoice>,
    /// Quantized coefficients (for entropy coding / diagnostics).
    pub coeffs: CoeffField,
    /// Approximate coded bits (mode symbols + coefficient bits).
    pub bits: u64,
}

fn predict_dc(recon: &Plane<u8>, cx: usize, cy: usize, pred: &mut [i16; 256]) {
    let mut sum = 0u32;
    let mut n = 0u32;
    if cy > 0 {
        for x in 0..MB_SIZE {
            sum += recon.get(cx + x, cy - 1) as u32;
        }
        n += 16;
    }
    if cx > 0 {
        for y in 0..MB_SIZE {
            sum += recon.get(cx - 1, cy + y) as u32;
        }
        n += 16;
    }
    let dc = (sum + n / 2).checked_div(n).map_or(128, |v| v as i16);
    pred.fill(dc);
}

fn predict_vertical(recon: &Plane<u8>, cx: usize, cy: usize, pred: &mut [i16; 256]) {
    for x in 0..MB_SIZE {
        let v = recon.get(cx + x, cy - 1) as i16;
        for y in 0..MB_SIZE {
            pred[y * MB_SIZE + x] = v;
        }
    }
}

fn predict_horizontal(recon: &Plane<u8>, cx: usize, cy: usize, pred: &mut [i16; 256]) {
    for y in 0..MB_SIZE {
        let v = recon.get(cx - 1, cy + y) as i16;
        pred[y * MB_SIZE..(y + 1) * MB_SIZE].fill(v);
    }
}

fn predict_plane(recon: &Plane<u8>, cx: usize, cy: usize, pred: &mut [i16; 256]) {
    let top = |x: isize| recon.get_clamped(cx as isize + x, cy as isize - 1) as i32;
    let left = |y: isize| recon.get_clamped(cx as isize - 1, cy as isize + y) as i32;
    let mut hgrad = 0i32;
    let mut vgrad = 0i32;
    for i in 1..=8i32 {
        hgrad += i * (top((7 + i) as isize) - top((7 - i) as isize));
        vgrad += i * (left((7 + i) as isize) - left((7 - i) as isize));
    }
    let a = 16 * (left(15) + top(15));
    let b = (5 * hgrad + 32) >> 6;
    let c = (5 * vgrad + 32) >> 6;
    for y in 0..MB_SIZE as i32 {
        for x in 0..MB_SIZE as i32 {
            let v = (a + b * (x - 7) + c * (y - 7) + 16) >> 5;
            pred[(y as usize) * MB_SIZE + x as usize] = v.clamp(0, 255) as i16;
        }
    }
}

fn sad_pred(cf: &Plane<u8>, cx: usize, cy: usize, pred: &[i16; 256]) -> u32 {
    let mut acc = 0u32;
    for y in 0..MB_SIZE {
        let row = &cf.row(cy + y)[cx..cx + MB_SIZE];
        for x in 0..MB_SIZE {
            acc += (row[x] as i16 - pred[y * MB_SIZE + x]).unsigned_abs() as u32;
        }
    }
    acc
}

/// Predict one 4×4 block from reconstructed neighbours. `avail_*` flags
/// say which neighbours exist; `above_right` falls back to replicating the
/// last above sample when unavailable (the H.264 rule).
#[allow(clippy::too_many_arguments)]
fn predict4(
    recon: &Plane<u8>,
    bx: usize,
    by: usize,
    mode: Intra4Mode,
    avail_left: bool,
    avail_above: bool,
    avail_above_right: bool,
    pred: &mut [i16; 16],
) {
    let above = |i: usize| -> i16 {
        if i < 4 {
            recon.get(bx + i, by - 1) as i16
        } else if avail_above_right {
            recon.get((bx + i).min(recon.width() - 1), by - 1) as i16
        } else {
            recon.get(bx + 3, by - 1) as i16
        }
    };
    let left = |i: usize| recon.get(bx - 1, by + i) as i16;
    let corner = || recon.get(bx - 1, by - 1) as i16;
    match mode {
        Intra4Mode::Vertical => {
            for y in 0..4 {
                for x in 0..4 {
                    pred[y * 4 + x] = above(x);
                }
            }
        }
        Intra4Mode::Horizontal => {
            for y in 0..4 {
                let v = left(y);
                pred[y * 4..y * 4 + 4].fill(v);
            }
        }
        Intra4Mode::Dc => {
            let mut sum = 0i32;
            let mut n = 0i32;
            if avail_above {
                for x in 0..4 {
                    sum += above(x) as i32;
                }
                n += 4;
            }
            if avail_left {
                for y in 0..4 {
                    sum += left(y) as i32;
                }
                n += 4;
            }
            let dc = if n == 0 {
                128
            } else {
                ((sum + n / 2) / n) as i16
            };
            pred.fill(dc);
        }
        Intra4Mode::DiagDownLeft => {
            // p[x,y] = (a(x+y) + 2·a(x+y+1) + a(x+y+2) + 2) >> 2.
            for y in 0..4 {
                for x in 0..4 {
                    let i = x + y;
                    let v = (above(i) + 2 * above(i + 1) + above((i + 2).min(7)) + 2) >> 2;
                    pred[y * 4 + x] = v;
                }
            }
        }
        Intra4Mode::DiagDownRight => {
            // Diagonal from corner: p[x,y] depends on x-y.
            for y in 0..4i32 {
                for x in 0..4i32 {
                    let d = x - y;
                    let v = match d.cmp(&0) {
                        std::cmp::Ordering::Greater => {
                            let i = (d - 1) as usize;
                            let a0 = if i == 0 { corner() } else { above(i - 1) };
                            (a0 + 2 * above(i) + above(i + 1) + 2) >> 2
                        }
                        std::cmp::Ordering::Equal => (above(0) + 2 * corner() + left(0) + 2) >> 2,
                        std::cmp::Ordering::Less => {
                            let i = (-d - 1) as usize;
                            let l0 = if i == 0 { corner() } else { left(i - 1) };
                            (l0 + 2 * left(i) + left((i + 1).min(3)) + 2) >> 2
                        }
                    };
                    pred[(y * 4 + x) as usize] = v;
                }
            }
        }
    }
}

/// Modes usable for a 4×4 block given neighbour availability.
fn modes4_for(avail_left: bool, avail_above: bool) -> &'static [Intra4Mode] {
    match (avail_left, avail_above) {
        (true, true) => &ALL_INTRA4_MODES,
        (false, true) => &[
            Intra4Mode::Dc,
            Intra4Mode::Vertical,
            Intra4Mode::DiagDownLeft,
        ],
        (true, false) => &[Intra4Mode::Dc, Intra4Mode::Horizontal],
        (false, false) => &[Intra4Mode::Dc],
    }
}

/// Code one macroblock in I4×4: per 4×4 block choose the best mode, code
/// the residual, reconstruct in place (blocks within the MB predict from
/// each other's fresh reconstructions, as the standard requires).
/// Returns (coefficients, SAD-cost, bits).
fn code_mb_i4(
    cf: &Plane<u8>,
    recon: &mut Plane<u8>,
    cx: usize,
    cy: usize,
    qp: u8,
) -> (MbCoeffs, u32, u64) {
    let mut mb = MbCoeffs::default();
    let mut total_cost = 0u32;
    let mut bits = 0u64;
    let mut pred = [0i16; 16];
    let mut best_pred = [0i16; 16];
    for blk in 0..16usize {
        let bx = cx + (blk % 4) * 4;
        let by = cy + (blk / 4) * 4;
        let avail_left = bx > 0;
        let avail_above = by > 0;
        // Above-right is reconstructed only if it lies in a previous MB row
        // or an earlier block of this MB (conservative: same-MB rule).
        let avail_ar =
            avail_above && (bx + 4) < recon.width() && (blk % 4 != 3 || !by.is_multiple_of(16));
        let mut best_cost = u32::MAX;
        for &mode in modes4_for(avail_left, avail_above) {
            predict4(
                recon,
                bx,
                by,
                mode,
                avail_left,
                avail_above,
                avail_ar,
                &mut pred,
            );
            let mut cost = 0u32;
            for y in 0..4 {
                for x in 0..4 {
                    cost += (cf.get(bx + x, by + y) as i16 - pred[y * 4 + x]).unsigned_abs() as u32;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_pred.copy_from_slice(&pred);
            }
        }
        total_cost += best_cost;
        bits += 3; // 4x4 mode symbol
                   // Residual → TQ → recon.
        let mut rbuf = [0i16; 16];
        for y in 0..4 {
            for x in 0..4 {
                rbuf[y * 4 + x] = cf.get(bx + x, by + y) as i16 - best_pred[y * 4 + x];
            }
        }
        let levels = tq_block(&rbuf, qp, true);
        if has_coefficients(&levels) {
            mb.coded_mask |= 1 << blk;
            bits += 6 * levels.iter().filter(|&&v| v != 0).count() as u64;
        }
        mb.blocks[blk] = levels;
        let r = itq_block(&levels, qp);
        for y in 0..4 {
            for x in 0..4 {
                let v = (best_pred[y * 4 + x] + r[y * 4 + x]).clamp(0, 255) as u8;
                recon.set(bx + x, by + y, v);
            }
        }
    }
    (mb, total_cost, bits)
}

/// Encode one frame in intra mode; returns reconstruction, modes and bits.
pub fn encode_intra_frame(cf: &Plane<u8>, qp: u8) -> IntraFrameResult {
    let mb_cols = cf.width() / MB_SIZE;
    let mb_rows = cf.height() / MB_SIZE;
    let mut recon: Plane<u8> = Plane::new(cf.width(), cf.height());
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    let mut modes = Vec::with_capacity(mb_cols * mb_rows);
    let mut bits = 0u64;
    let mut pred = [0i16; 256];
    let mut best_pred = [0i16; 256];

    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            let (cx, cy) = (mbx * MB_SIZE, mby * MB_SIZE);
            // Candidate modes limited by neighbour availability.
            let mut best_mode = IntraMode::Dc;
            let mut best_cost = u32::MAX;
            let candidates: &[IntraMode] = match (mbx > 0, mby > 0) {
                (true, true) => &[
                    IntraMode::Dc,
                    IntraMode::Vertical,
                    IntraMode::Horizontal,
                    IntraMode::Plane,
                ],
                (false, true) => &[IntraMode::Dc, IntraMode::Vertical],
                (true, false) => &[IntraMode::Dc, IntraMode::Horizontal],
                (false, false) => &[IntraMode::Dc],
            };
            for &mode in candidates {
                match mode {
                    IntraMode::Dc => predict_dc(&recon, cx, cy, &mut pred),
                    IntraMode::Vertical => predict_vertical(&recon, cx, cy, &mut pred),
                    IntraMode::Horizontal => predict_horizontal(&recon, cx, cy, &mut pred),
                    IntraMode::Plane => predict_plane(&recon, cx, cy, &mut pred),
                }
                let cost = sad_pred(cf, cx, cy, &pred);
                if cost < best_cost {
                    best_cost = cost;
                    best_mode = mode;
                    best_pred.copy_from_slice(&pred);
                }
            }

            // Trial-code the macroblock in I4×4 (mutates recon); if the
            // 16×16 mode wins the Lagrangian comparison (its header is ~45
            // bits lighter), restore and code I16 instead.
            let backup: Vec<Vec<u8>> = (0..MB_SIZE)
                .map(|row| recon.row(cy + row)[cx..cx + MB_SIZE].to_vec())
                .collect();
            let (mb4, cost4, bits4) = code_mb_i4(cf, &mut recon, cx, cy, qp);
            let header_penalty = (crate::mc::lambda_mode(qp) * 45.0).round() as u32;
            if cost4.saturating_add(header_penalty) < best_cost {
                modes.push(MbIntraChoice::I4);
                bits += bits4 + 1;
                *coeffs.mb_mut(mbx, mby) = mb4;
                continue;
            }
            // Restore and code as I16.
            for (row, data) in backup.iter().enumerate() {
                recon.row_mut(cy + row)[cx..cx + MB_SIZE].copy_from_slice(data);
            }
            modes.push(MbIntraChoice::I16(best_mode));
            bits += 3; // mode symbol

            // Residual → TQ → TQ⁻¹ → reconstruction, block by block.
            let mb = MbCoeffs::default();
            let mut mb = mb;
            let mut rbuf = [0i16; 16];
            for blk in 0..16 {
                let bx = (blk % 4) * 4;
                let by = (blk / 4) * 4;
                for row in 0..4 {
                    for col in 0..4 {
                        let idx = (by + row) * MB_SIZE + bx + col;
                        rbuf[row * 4 + col] =
                            cf.get(cx + bx + col, cy + by + row) as i16 - best_pred[idx];
                    }
                }
                let levels = tq_block(&rbuf, qp, true);
                if has_coefficients(&levels) {
                    mb.coded_mask |= 1 << blk;
                    // ~6 bits per non-zero level is a serviceable estimate;
                    // exact numbers come from the entropy coder.
                    bits += 6 * levels.iter().filter(|&&v| v != 0).count() as u64;
                }
                mb.blocks[blk] = levels;
                let r = itq_block(&levels, qp);
                for row in 0..4 {
                    for col in 0..4 {
                        let idx = (by + row) * MB_SIZE + bx + col;
                        let v = (best_pred[idx] + r[row * 4 + col]).clamp(0, 255) as u8;
                        recon.set(cx + bx + col, cy + by + row, v);
                    }
                }
            }
            *coeffs.mb_mut(mbx, mby) = mb;
        }
    }
    IntraFrameResult {
        recon,
        modes,
        coeffs,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_video::metrics::psnr;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn flat_frame_reconstructs_exactly() {
        let mut cf = Plane::new(48, 48);
        cf.fill(200);
        let r = encode_intra_frame(&cf, 28);
        assert_eq!(r.recon, cf, "flat content must be coded losslessly");
        // Only MB (0,0) lacks neighbours (DC falls back to 128 → a real
        // residual); every other MB predicts exactly from reconstructed
        // neighbours and needs no coefficients.
        assert!(
            r.coeffs.nonzero_levels() <= 16,
            "only the first MB may carry levels, got {}",
            r.coeffs.nonzero_levels()
        );
    }

    #[test]
    fn reconstruction_quality_tracks_qp() {
        let cf = plane_from_fn(64, 64, |x, y| (((x * 13) ^ (y * 29)) % 256) as u8);
        let lo = encode_intra_frame(&cf, 12);
        let hi = encode_intra_frame(&cf, 44);
        let psnr_lo = psnr(&lo.recon, &cf);
        let psnr_hi = psnr(&hi.recon, &cf);
        assert!(
            psnr_lo > psnr_hi + 3.0,
            "QP 12 ({psnr_lo:.1} dB) must beat QP 44 ({psnr_hi:.1} dB)"
        );
        assert!(
            psnr_lo > 35.0,
            "QP 12 must be near-transparent, got {psnr_lo:.1}"
        );
    }

    #[test]
    fn vertical_content_picks_vertical_mode() {
        // Columns of constant value: after the first MB row, vertical
        // prediction is exact.
        let cf = plane_from_fn(64, 64, |x, _| ((x * 9) % 256) as u8);
        let r = encode_intra_frame(&cf, 20);
        let mb_cols = 4;
        let mut vertical_wins = 0;
        for mby in 1..4 {
            for mbx in 0..4 {
                if r.modes[mby * mb_cols + mbx] == MbIntraChoice::I16(IntraMode::Vertical) {
                    vertical_wins += 1;
                }
            }
        }
        assert!(
            vertical_wins >= 10,
            "vertical mode must dominate columns, got {vertical_wins}/12"
        );
    }

    #[test]
    fn horizontal_content_picks_horizontal_mode() {
        let cf = plane_from_fn(64, 64, |_, y| ((y * 9) % 256) as u8);
        let r = encode_intra_frame(&cf, 20);
        let mut wins = 0;
        for mby in 0..4 {
            for mbx in 1..4 {
                if r.modes[mby * 4 + mbx] == MbIntraChoice::I16(IntraMode::Horizontal) {
                    wins += 1;
                }
            }
        }
        assert!(
            wins >= 10,
            "horizontal mode must dominate rows, got {wins}/12"
        );
    }

    #[test]
    fn bits_increase_with_detail() {
        let flat = {
            let mut p = Plane::new(64, 64);
            p.fill(90);
            p
        };
        let busy = plane_from_fn(64, 64, |x, y| (((x * 37) ^ (y * 53)) % 256) as u8);
        let bf = encode_intra_frame(&flat, 28).bits;
        let bb = encode_intra_frame(&busy, 28).bits;
        assert!(bb > bf * 2, "busy {bb} vs flat {bf}");
    }
}

#[cfg(test)]
mod i4_tests {
    use super::*;
    use feves_video::metrics::psnr;

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn fine_detail_selects_i4_macroblocks() {
        // 4-pixel-period vertical stripes alternating per 4x4 block row:
        // no 16x16 mode fits, but 4x4 V/H modes predict well.
        let cf = plane_from_fn(64, 64, |x, y| {
            if (y / 4) % 2 == 0 {
                if x % 4 < 2 {
                    40
                } else {
                    200
                }
            } else if y % 4 < 2 {
                40
            } else {
                200
            }
        });
        let r = encode_intra_frame(&cf, 24);
        let i4_count = r
            .modes
            .iter()
            .filter(|m| matches!(m, MbIntraChoice::I4))
            .count();
        assert!(
            i4_count >= 4,
            "fine detail should drive MBs to I4, got {i4_count}/16"
        );
        assert!(psnr(&r.recon, &cf) > 28.0);
    }

    #[test]
    fn i4_improves_quality_on_structured_content() {
        // Diagonal edges: I4's directional modes track them better than any
        // whole-MB predictor; quality should be solid at moderate QP.
        let cf = plane_from_fn(64, 64, |x, y| if (x + y) % 11 < 5 { 60 } else { 190 });
        let r = encode_intra_frame(&cf, 28);
        let q = psnr(&r.recon, &cf);
        assert!(q > 30.0, "structured content PSNR too low: {q:.1}");
    }

    #[test]
    fn predict4_modes_are_exact_on_their_patterns() {
        // Vertical stripes → V mode residual 0 away from the first row.
        let cf = plane_from_fn(16, 16, |x, _| (x * 16) as u8);
        let mut pred = [0i16; 16];
        predict4(&cf, 4, 4, Intra4Mode::Vertical, true, true, true, &mut pred);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(pred[y * 4 + x], cf.get(4 + x, 3) as i16);
            }
        }
        // Horizontal bands → H mode copies the left column.
        let cfh = plane_from_fn(16, 16, |_, y| (y * 16) as u8);
        predict4(
            &cfh,
            4,
            4,
            Intra4Mode::Horizontal,
            true,
            true,
            true,
            &mut pred,
        );
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(pred[y * 4 + x], cfh.get(3, 4 + y) as i16);
            }
        }
    }

    #[test]
    fn flat_content_still_codes_flat() {
        // The first MB's DC-128 residual quantizes with a small error; the
        // rest of the frame then predicts that flat value exactly, so the
        // reconstruction is uniform and within one quantization step.
        let mut cf = Plane::new(48, 48);
        cf.fill(133);
        let r = encode_intra_frame(&cf, 28);
        let first = r.recon.get(0, 0);
        for y in 0..48 {
            for x in 0..48 {
                assert_eq!(r.recon.get(x, y), first, "must stay flat");
            }
        }
        assert!(
            ((first as i16 - 133i16).abs() as f64) <= crate::quant::qstep(28),
            "flat offset too large: {first}"
        );
    }
}
