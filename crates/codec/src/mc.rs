//! Motion compensation and partition-mode decision (the paper's MC module,
//! first of the R\* group).
//!
//! Per macroblock: select the best of the 7 partition modes from the refined
//! SME costs (distortion + λ·rate, the standard Lagrangian mode decision),
//! sample the prediction from the sub-pixel frames at the refined vectors,
//! and emit the prediction residual for TQ.

use crate::interp::SubpelFrame;
use crate::sme::{MbSubMotion, SmeBlockMv};
use crate::types::{PartitionMode, ALL_PARTITION_MODES};
use feves_video::geometry::{RowRange, MB_SIZE};
use feves_video::plane::Plane;

/// Mode decision + motion data of one coded macroblock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbMode {
    /// Winning partition mode.
    pub mode: PartitionMode,
    /// Winning blocks (`mode.count()` entries are valid).
    pub mvs: [SmeBlockMv; 16],
    /// Lagrangian cost of the winner (distortion + λ·rate).
    pub cost: u64,
}

impl Default for MbMode {
    fn default() -> Self {
        MbMode {
            mode: PartitionMode::P16x16,
            mvs: [SmeBlockMv::default(); 16],
            cost: u64::MAX,
        }
    }
}

/// Mode-decision output for a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeField {
    mbs: Vec<MbMode>,
    mb_cols: usize,
    mb_rows: usize,
}

impl ModeField {
    /// Create an empty field.
    pub fn new(mb_cols: usize, mb_rows: usize) -> Self {
        ModeField {
            mbs: vec![MbMode::default(); mb_cols * mb_rows],
            mb_cols,
            mb_rows,
        }
    }

    /// Macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Mode data of macroblock `(mbx, mby)`.
    #[inline]
    pub fn mb(&self, mbx: usize, mby: usize) -> &MbMode {
        &self.mbs[mby * self.mb_cols + mbx]
    }

    /// Mutable mode data.
    #[inline]
    pub fn mb_mut(&mut self, mbx: usize, mby: usize) -> &mut MbMode {
        &mut self.mbs[mby * self.mb_cols + mbx]
    }
}

/// Lagrange multiplier for mode decision: `0.85 · 2^((QP-12)/3)`.
pub fn lambda_mode(qp: u8) -> f64 {
    0.85 * f64::powf(2.0, (qp as f64 - 12.0) / 3.0)
}

/// Estimated header bits for coding a macroblock in `mode` (mode symbol +
/// per-partition reference index and motion-vector difference).
pub fn mode_overhead_bits(mode: PartitionMode) -> u64 {
    const MODE_BITS: [u64; 7] = [1, 3, 3, 5, 7, 7, 9];
    MODE_BITS[mode.index()] + mode.count() as u64 * 8
}

/// Choose the best partition mode for one macroblock from its SME output.
pub fn decide_mode(sme: &MbSubMotion, qp: u8) -> MbMode {
    let lambda = lambda_mode(qp);
    let mut best = MbMode::default();
    for mode in ALL_PARTITION_MODES {
        let cost = sme.mode_cost(mode) + (lambda * mode_overhead_bits(mode) as f64).round() as u64;
        // Strict `<`: ties resolve to the earlier (coarser) mode.
        if cost < best.cost {
            let mut mvs = [SmeBlockMv::default(); 16];
            for (i, mv) in mvs.iter_mut().enumerate().take(mode.count()) {
                *mv = *sme.block(mode, i);
            }
            best = MbMode { mode, mvs, cost };
        }
    }
    best
}

/// Build the prediction for one macroblock into `pred` (16×16 row-major).
pub fn predict_mb(
    mb_mode: &MbMode,
    sfs: &[&SubpelFrame],
    cx: usize,
    cy: usize,
    pred: &mut [i16; 256],
) {
    let mode = mb_mode.mode;
    let (w, h) = mode.dims();
    let mut block = vec![0i16; w * h];
    for i in 0..mode.count() {
        let (ox, oy) = mode.offset(i);
        let blk = &mb_mode.mvs[i];
        sfs[blk.rf as usize].predict_block(cx + ox, cy + oy, blk.mv, w, h, &mut block);
        for row in 0..h {
            let dst = &mut pred[(oy + row) * MB_SIZE + ox..(oy + row) * MB_SIZE + ox + w];
            dst.copy_from_slice(&block[row * w..(row + 1) * w]);
        }
    }
}

/// Run mode decision + motion compensation for the MB rows of `rows`.
///
/// Writes the winning modes into `modes`, the prediction samples into
/// `pred` and the residual (`cf − pred`) into `residual` (both full-frame
/// planes; only the rows of `rows` are touched).
#[allow(clippy::too_many_arguments)] // mirrors the MC module's natural inputs
pub fn mc_rows(
    cf: &Plane<u8>,
    sfs: &[&SubpelFrame],
    sme_rows: &[MbSubMotion],
    qp: u8,
    rows: RowRange,
    modes: &mut ModeField,
    pred: &mut Plane<u8>,
    residual: &mut Plane<i16>,
) {
    let mb_cols = cf.width() / MB_SIZE;
    assert_eq!(
        sme_rows.len(),
        rows.len() * mb_cols,
        "SME input size mismatch"
    );
    let mut pbuf = [0i16; 256];
    for (i, mby) in rows.iter().enumerate() {
        for mbx in 0..mb_cols {
            let sme = &sme_rows[i * mb_cols + mbx];
            let decided = decide_mode(sme, qp);
            let (cx, cy) = (mbx * MB_SIZE, mby * MB_SIZE);
            predict_mb(&decided, sfs, cx, cy, &mut pbuf);
            for row in 0..MB_SIZE {
                let crow = &cf.row(cy + row)[cx..cx + MB_SIZE];
                let prow = &mut pred.row_mut(cy + row)[cx..cx + MB_SIZE];
                let rrow = &mut residual.row_mut(cy + row)[cx..cx + MB_SIZE];
                for col in 0..MB_SIZE {
                    let p = pbuf[row * MB_SIZE + col].clamp(0, 255);
                    prow[col] = p as u8;
                    rrow[col] = crow[col] as i16 - p;
                }
            }
            *modes.mb_mut(mbx, mby) = decided;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpolate;
    use crate::me::motion_estimate_rows;
    use crate::sme::sme_rows as run_sme_rows;
    use crate::types::{EncodeParams, SearchArea};

    fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    #[test]
    fn lambda_grows_with_qp() {
        assert!(lambda_mode(40) > lambda_mode(20));
        assert!((lambda_mode(12) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn perfect_translation_gives_zero_residual() {
        let rf = plane_from_fn(64, 64, |x, y| ((x * 37) ^ (y * 11)) as u8);
        let cf = plane_from_fn(64, 64, |x, y| {
            rf.get_clamped(x as isize + 3, y as isize - 2)
        });
        let params = EncodeParams {
            search_area: SearchArea(16),
            n_ref: 1,
            ..Default::default()
        };
        let sf = interpolate(&rf);
        let rows = RowRange::new(1, 3);
        let mb_cols = 4;
        let mut me = vec![crate::me::MbMotion::default(); rows.len() * mb_cols];
        motion_estimate_rows(&cf, &[&rf], &params, rows, &mut me);
        let mut sme = vec![MbSubMotion::default(); rows.len() * mb_cols];
        run_sme_rows(&cf, &[&sf], &me, rows, &mut sme);

        let mut modes = ModeField::new(mb_cols, 4);
        let mut pred: Plane<u8> = Plane::new(64, 64);
        let mut residual: Plane<i16> = Plane::new(64, 64);
        mc_rows(
            &cf,
            &[&sf],
            &sme,
            28,
            rows,
            &mut modes,
            &mut pred,
            &mut residual,
        );

        // Interior MBs (away from the clamped frame border) must predict
        // perfectly: residual 0, and the coarse 16x16 mode must win (it has
        // the lowest overhead at equal distortion).
        for mby in rows.iter() {
            for mbx in 1..3 {
                let m = modes.mb(mbx, mby);
                assert_eq!(m.mode, PartitionMode::P16x16, "mb {mbx},{mby}");
                for row in mby * 16..mby * 16 + 16 {
                    for col in mbx * 16..mbx * 16 + 16 {
                        assert_eq!(residual.get(col, row), 0, "at {col},{row}");
                    }
                }
            }
        }
    }

    #[test]
    fn residual_plus_pred_equals_source() {
        let rf = plane_from_fn(48, 48, |x, y| ((x * 5 + y * 3) % 256) as u8);
        let cf = plane_from_fn(48, 48, |x, y| ((x * 7) ^ (y * 2)) as u8);
        let params = EncodeParams {
            search_area: SearchArea(8),
            n_ref: 1,
            ..Default::default()
        };
        let sf = interpolate(&rf);
        let rows = RowRange::new(0, 3);
        let mb_cols = 3;
        let mut me = vec![crate::me::MbMotion::default(); rows.len() * mb_cols];
        motion_estimate_rows(&cf, &[&rf], &params, rows, &mut me);
        let mut sme = vec![MbSubMotion::default(); rows.len() * mb_cols];
        run_sme_rows(&cf, &[&sf], &me, rows, &mut sme);

        let mut modes = ModeField::new(mb_cols, 3);
        let mut pred: Plane<u8> = Plane::new(48, 48);
        let mut residual: Plane<i16> = Plane::new(48, 48);
        mc_rows(
            &cf,
            &[&sf],
            &sme,
            28,
            rows,
            &mut modes,
            &mut pred,
            &mut residual,
        );
        for y in 0..48 {
            for x in 0..48 {
                assert_eq!(
                    pred.get(x, y) as i16 + residual.get(x, y),
                    cf.get(x, y) as i16,
                    "at {x},{y}"
                );
            }
        }
    }

    #[test]
    fn high_qp_prefers_coarse_modes() {
        // With huge lambda, overhead dominates: 16x16 must win even when
        // finer modes have slightly lower SAD.
        let mut sme = MbSubMotion::default();
        for mode in ALL_PARTITION_MODES {
            for i in 0..mode.count() {
                sme.block_mut(mode, i).cost = match mode {
                    PartitionMode::P16x16 => 1000,
                    _ => 900 / mode.count() as u32, // finer modes slightly better
                };
            }
        }
        let d = decide_mode(&sme, 51);
        assert_eq!(d.mode, PartitionMode::P16x16);
    }

    #[test]
    fn zero_lambda_prefers_min_distortion() {
        let mut sme = MbSubMotion::default();
        for mode in ALL_PARTITION_MODES {
            for i in 0..mode.count() {
                sme.block_mut(mode, i).cost = match mode {
                    PartitionMode::P4x4 => 0,
                    _ => 10_000,
                };
            }
        }
        // QP 0 → tiny lambda; 4x4 with zero distortion must win.
        let d = decide_mode(&sme, 0);
        assert_eq!(d.mode, PartitionMode::P4x4);
    }
}
