//! Vendored `proptest` subset. Strategies generate random values from a
//! deterministic per-case RNG; there is **no shrinking** — on failure the
//! `proptest!` harness reports the case number and seed so the exact inputs
//! can be replayed by rerunning the test. The strategy combinators cover
//! what this workspace uses: ranges, `Just`, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `array::uniform16`, `option::of`,
//! `bool::ANY` and `any::<T>()`.

pub mod strategy {
    use rand::Rng;

    /// The per-case random source handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy (what `prop_oneof!` unions over).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>() * 2.0 - 1.0
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f32>() * 2.0 - 1.0
        }
    }

    /// Strategy produced by [`crate::any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<A>(pub(crate) PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<A: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<A> {
    arbitrary::AnyStrategy(std::marker::PhantomData)
}

pub mod bool {
    /// `proptest::bool::ANY`.
    pub const ANY: crate::arbitrary::AnyStrategy<bool> =
        crate::arbitrary::AnyStrategy(std::marker::PhantomData);
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with per-element strategy and length bounds.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element_strategy, len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy for fixed-size arrays of independently drawn elements.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `proptest::array::uniform16(strategy)`.
    pub fn uniform16<S: Strategy>(elem: S) -> UniformArray<S, 16> {
        UniformArray(elem)
    }

    /// `proptest::array::uniform4(strategy)`.
    pub fn uniform4<S: Strategy>(elem: S) -> UniformArray<S, 4> {
        UniformArray(elem)
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `None` one time in four (like upstream's default
    /// 3:1 some-to-none weighting).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Run configuration (only the case count is meaningful here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG for one test case. The stream is fixed per case
    /// number so failures reproduce across runs.
    pub fn rng_for_case(case: u32) -> crate::strategy::TestRng {
        crate::strategy::TestRng::seed_from_u64(
            0x5EED_0000_0000_0000 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Define property tests. Matches the upstream surface used here: an
/// optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert within a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, bool)> {
        (0u8..=9, crate::bool::ANY)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(v in crate::collection::vec(0u32..100, 1..8), x in arb_pair()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(x.0 <= 9);
        }

        #[test]
        fn oneof_and_just(sa in prop_oneof![Just(32u16), Just(64)], arr in crate::array::uniform16(-3i16..=3)) {
            prop_assert!(sa == 32 || sa == 64);
            prop_assert!(arr.iter().all(|&e| (-3..=3).contains(&e)));
        }

        #[test]
        fn mapped_split(mut cuts in crate::collection::vec(0usize..=10, 2).prop_map(|mut c| { c.sort_unstable(); c })) {
            prop_assert!(cuts[0] <= cuts[1]);
            cuts.push(11);
            prop_assert_eq!(cuts.len(), 3);
        }

        #[test]
        fn options(o in crate::option::of(1usize..4)) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_cases() {
        let s = 0u64..u64::MAX;
        let a = s.generate(&mut crate::test_runner::rng_for_case(3));
        let b = s.generate(&mut crate::test_runner::rng_for_case(3));
        assert_eq!(a, b);
    }
}
