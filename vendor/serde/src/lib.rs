//! Vendored `serde` subset built on an explicit value model.
//!
//! Upstream serde abstracts over (de)serializers with a visitor API; this
//! offline stand-in collapses that to one intermediate [`Value`] tree:
//! `Serialize` renders a type *to* a `Value`, `Deserialize` rebuilds it
//! *from* one, and `serde_json` (the only data format in the workspace)
//! renders/parses `Value` as JSON text. Objects keep insertion order, so all
//! output is deterministic — which the golden-file tests rely on.
//!
//! Conventions match serde_json: structs are objects in field order; newtype
//! structs are transparent; unit enum variants are strings; data-carrying
//! variants are single-key objects (externally tagged); `None` is null and a
//! missing object key deserializes as null (so `Option` fields tolerate
//! absence, like upstream's `missing_field` machinery).

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The data-model tree every type (de)serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also covers unsigned values ≤ `i64::MAX`).
    Int(i64),
    /// Unsigned values above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Ordered key/value pairs — insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up an object key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Numeric value as `f64`, if this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error for both directions of conversion.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the serde [`Value`] model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the serde [`Value`] model.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible alias: our `Deserialize` has no borrowed lifetimes,
/// so every implementor is already "owned".
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Derive-macro support (hidden, like serde::__private).

#[doc(hidden)]
pub static __NULL: Value = Value::Null;

/// Fetch a struct field from an object; missing keys read as null so that
/// `Option` fields tolerate absence (mirrors serde's `missing_field`).
#[doc(hidden)]
pub fn __field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&__NULL)
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match *v {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    // Tolerate integral floats (JSON writers disagree here).
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {} out of range for {}", wide, stringify!($t))))
            }
        }
    )*};
}
impl_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Int(i) if i >= 0 => Ok(i as u64),
            Value::UInt(u) => Ok(u),
            Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => Ok(f as u64),
            ref other => Err(Error::msg(format!(
                "expected unsigned integer, found {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    ref other => Err(Error::msg(format!(
                        "expected number, found {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Compound impls.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {}", v.type_name())))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {}, found {}",
                N,
                items.len()
            )));
        }
        let mut parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        // Drain into a fixed array without requiring T: Default/Copy.
        let mut drain = parsed.drain(..);
        Ok(std::array::from_fn(|_| {
            drain.next().expect("length checked")
        }))
    }
}

impl<K: AsRef<str> + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, found {}", v.type_name())))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, found {}", v.type_name())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of length {}, found {}",
                        expected,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_missing_field_semantics() {
        let obj = vec![("a".to_string(), Value::Int(3))];
        assert_eq!(*__field(&obj, "a"), Value::Int(3));
        assert_eq!(*__field(&obj, "zzz"), Value::Null);
        let none: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
        let some: Option<u32> = Deserialize::from_value(&Value::Int(7)).unwrap();
        assert_eq!(some, Some(7));
    }

    #[test]
    fn arrays_roundtrip() {
        let a: [u8; 3] = [1, 2, 3];
        let v = a.to_value();
        let back: [u8; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        let bad: Result<[u8; 4], _> = Deserialize::from_value(&v);
        assert!(bad.is_err());
    }

    #[test]
    fn numeric_coercions() {
        let f: f64 = Deserialize::from_value(&Value::Int(2)).unwrap();
        assert_eq!(f, 2.0);
        let n: u32 = Deserialize::from_value(&Value::Float(9.0)).unwrap();
        assert_eq!(n, 9);
        let bad: Result<u8, _> = Deserialize::from_value(&Value::Int(300));
        assert!(bad.is_err());
    }
}
