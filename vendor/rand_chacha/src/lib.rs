//! Vendored ChaCha8 random generator implementing the workspace's `rand`
//! traits. The keystream is a faithful ChaCha with 8 rounds (RFC 7539 state
//! layout, zero nonce); it is *not* bit-for-bit identical to the upstream
//! `rand_chacha` output order, which is fine here — the workspace only relies
//! on seed-determinism, never on specific draw values.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded by a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(init) {
            *w = w.wrapping_add(i);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Export the full generator state as `(key, counter, idx)`.
    ///
    /// `counter` is the block counter of the *next* block to be generated and
    /// `idx` the draw position inside the current block (16 = exhausted).
    /// Feeding the triple to [`ChaCha8Rng::from_state`] yields a generator
    /// that continues the keystream exactly where this one stands.
    pub fn state(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.idx.min(16))
    }

    /// Rebuild a generator from a [`ChaCha8Rng::state`] triple.
    ///
    /// The buffered block is not part of the snapshot; when `idx < 16` the
    /// block is regenerated from `counter - 1` (refill advances the counter
    /// back), which is cheap and keeps snapshots at 44 bytes.
    pub fn from_state(key: [u32; 8], counter: u64, idx: usize) -> Self {
        let mut rng = ChaCha8Rng {
            key,
            counter,
            buf: [0; 16],
            idx: 16,
        };
        if idx < 16 {
            rng.counter = counter.wrapping_sub(1);
            rng.refill(); // restores counter and the in-flight block
            rng.idx = idx;
        }
        rng
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            *k = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16, // force refill on first draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_resumes_keystream() {
        // Capture at every draw offset inside a block, including the
        // fresh-from-seed (idx = 16) and mid-block positions.
        for warmup in [0usize, 1, 7, 15, 16, 17, 40] {
            let mut a = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..warmup {
                a.next_u32();
            }
            let (key, counter, idx) = a.state();
            let mut b = ChaCha8Rng::from_state(key, counter, idx);
            let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
            let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
            assert_eq!(xs, ys, "diverged after warmup {warmup}");
        }
    }

    #[test]
    fn works_with_rng_ext() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..500 {
            let f = rng.gen_range(0.9f64..=1.1);
            assert!((0.9..=1.1).contains(&f));
            let v = rng.gen_range(-255i16..=255);
            assert!((-255..=255).contains(&v));
        }
    }
}
