//! Vendored `serde_json` subset: renders the vendored serde [`Value`] model
//! to JSON text (`to_string` / `to_string_pretty`, 2-space indent like
//! upstream) and parses JSON back (`from_str`). Floats are formatted with
//! Rust's shortest round-trip `{:?}` (`1.0`, not `1`), matching upstream's
//! ryu output for the values this workspace produces; object order follows
//! the `Value` tree, so output is deterministic.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Rendering.

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) -> Result<()> {
    if !f.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {f}")));
    }
    // `{:?}` is Rust's shortest round-trip form and always keeps a `.0`
    // on integral values, matching serde_json's ryu output.
    out.push_str(&format!("{f:?}"));
    Ok(())
}

fn write_compact(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out)?,
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> Result<()> {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

/// Serialize as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this workspace's data.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a JSON document into the serde `Value` tree.
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value of `T` from a JSON document.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = value_from_str(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_formats_match_serde_json() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("SysHK".into())),
            (
                "devices".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("link".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"name":"SysHK","devices":[1,2.5],"link":null}"#);
        let back = value_from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2 = value_from_str(&pretty).unwrap();
        assert_eq!(back2, v);
        assert!(pretty.contains("\n  \"name\": \"SysHK\""));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("12 34").is_err());
        let e = from_str::<bool>("3").unwrap_err();
        assert!(e.to_string().contains("expected bool"));
    }
}
