//! Vendored `bytes` API subset: an immutable shared byte buffer ([`Bytes`]),
//! a growable builder ([`BytesMut`]) and the [`BufMut`] write trait. Backed
//! by `Arc<[u8]>`/`Vec<u8>` — no manual vtables; clones of `Bytes` are cheap
//! reference bumps, which is the property the bitstream plumbing relies on.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable contiguous byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a static/borrowed slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a borrowed slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

/// Sequential byte-writing operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, n: u8);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, n: u8) {
        self.vec.push(n);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, n: u8) {
        self.push(n);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 4);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[0xAB, 1, 2, 3]);
        assert_eq!(frozen, Bytes::from(vec![0xAB, 1, 2, 3]));
        let clone = frozen.clone();
        assert_eq!(clone.len(), 4);
        assert_eq!(&clone[1..3], &[1, 2]);
    }
}
