//! Vendored `criterion` subset: a wall-clock micro-benchmark harness with
//! the upstream API shape (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`). Measurement is simpler than real
//! criterion — warm-up, then timed batches sized to ~100 ms, reporting
//! min/mean/max per iteration — but it runs fully offline and prints
//! comparable `time: [low mean high]` lines.

use std::fmt;
use std::time::{Duration, Instant};

/// Format a duration the way criterion does (ns/µs/ms/s with 4 sig figs).
fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Measurement state handed to the closure of `bench_function`.
pub struct Bencher {
    /// (min, mean, max) per-iteration time of the measurement phase.
    result: Option<(Duration, Duration, Duration)>,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration) -> Self {
        Bencher {
            result: None,
            warm_up,
            measure,
        }
    }

    /// Time the routine: warm up, pick a batch size targeting ~10 ms per
    /// batch, then run batches until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also yields a first per-iter estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut batches: Vec<Duration> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || batches.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            batches.push(t0.elapsed() / batch as u32);
            if batches.len() >= 500 {
                break;
            }
        }
        let min = *batches.iter().min().expect("at least one batch");
        let max = *batches.iter().max().expect("at least one batch");
        let mean = batches.iter().sum::<Duration>() / batches.len() as u32;
        self.result = Some((min, mean, max));
    }
}

/// Benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier (group name supplies the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation (reported as elements/bytes per second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Upstream builder hook; command-line configuration is not supported
    /// offline, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.warm_up, self.measure, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let (warm_up, measure) = (self.warm_up, self.measure);
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            warm_up,
            measure,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measure: Duration,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, self.warm_up, self.measure, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, self.warm_up, self.measure, f);
        self
    }

    /// Finish the group (upstream writes reports here; offline it is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measure: Duration,
    f: F,
) {
    let mut b = Bencher::new(warm_up, measure);
    f(&mut b);
    match b.result {
        Some((min, mean, max)) => {
            print!(
                "{name:<50} time: [{} {} {}]",
                fmt_time(min),
                fmt_time(mean),
                fmt_time(max)
            );
            if let Some(t) = throughput {
                let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
                match t {
                    Throughput::Elements(n) => print!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6),
                    Throughput::Bytes(n) => {
                        print!("  thrpt: {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0))
                    }
                }
            }
            println!();
        }
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Re-export for bench code that uses `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`;
            // measuring there would only slow the suite down.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("SysHK").id, "SysHK");
    }
}
