//! Vendored `crossbeam` scoped-thread subset, implemented on
//! `std::thread::scope` (stable since 1.63). Only the surface FEVES uses is
//! provided: `crossbeam::scope(|s| { s.spawn(move |_| ...); })` returning
//! `Result` (a panic in any spawned thread surfaces as `Err`, matching the
//! upstream contract the `.expect(...)` call sites rely on).

pub mod queue;

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to the `scope` closure; spawned closures receive a copy so
/// they can spawn siblings, mirroring crossbeam's `&Scope` parameter.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure's argument is the scope itself
    /// (crossbeam passes `&Scope`; auto-ref makes `|_|` call sites identical).
    pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Errors carry the payload of whichever spawned thread panicked first.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

pub mod thread {
    pub use crate::{scope, Scope, ScopeResult};
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_write_disjoint_bands() {
        let mut data = vec![0u32; 8];
        {
            let (a, b) = data.split_at_mut(4);
            crate::scope(|s| {
                s.spawn(move |_| a.iter_mut().for_each(|x| *x = 1));
                s.spawn(move |_| b.iter_mut().for_each(|x| *x = 2));
            })
            .expect("no panics");
        }
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
