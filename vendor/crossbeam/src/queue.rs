//! Vendored `crossbeam::queue` subset: a bounded lock-free MPMC
//! [`ArrayQueue`] (Dmitry Vyukov's bounded MPMC algorithm, the same design
//! upstream crossbeam uses).
//!
//! The queue never blocks: [`ArrayQueue::push`] on a full queue returns the
//! value back immediately (`Err(v)`), and [`ArrayQueue::pop`] on an empty
//! queue returns `None`. Elements pushed by one producer are popped in that
//! producer's push order (per-producer FIFO) — the property the FEVES
//! telemetry bus relies on for "never reordered within a session".

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One queue slot: a generation stamp plus (possibly uninitialized) storage.
///
/// The stamp encodes which "lap" the slot is on: it equals the push position
/// when the slot is free for that position, and the push position + 1 while
/// it holds that position's value.
struct Slot<T> {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
pub struct ArrayQueue<T> {
    /// Next position to push at (monotonic; slot index is `pos % cap`).
    tail: AtomicUsize,
    /// Next position to pop at.
    head: AtomicUsize,
    slots: Box<[Slot<T>]>,
    cap: usize,
}

unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// A queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ArrayQueue capacity must be non-zero");
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            slots,
            cap,
        }
    }

    /// Maximum number of elements the queue holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Attempt to push; a full queue returns the value back without
    /// blocking or spinning on consumers.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                // The slot is free for this lap; claim the position.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if stamp.wrapping_add(self.cap) == tail.wrapping_add(1) {
                // The slot still holds the value from one lap ago: the
                // queue is full *unless* a concurrent pop advanced head in
                // the meantime — re-check before reporting full.
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(self.cap) == tail {
                    return Err(value);
                }
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                // A concurrent push claimed this position; reload and retry.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempt to pop; an empty queue returns `None` without blocking.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                // The slot holds this position's value; claim it.
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Free the slot for the push one full lap ahead.
                        slot.stamp
                            .store(head.wrapping_add(self.cap), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if stamp == head {
                // The slot has not been written this lap: the queue is
                // empty *unless* a concurrent push advanced tail.
                let tail = self.tail.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                head = self.head.load(Ordering::Relaxed);
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements (exact when quiescent).
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            if self.tail.load(Ordering::SeqCst) == tail {
                return tail.wrapping_sub(head).min(self.cap);
            }
        }
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        // Drain remaining elements so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = ArrayQueue::new(4);
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.push(99), Err(99), "full queue rejects without blocking");
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraps_laps() {
        let q = ArrayQueue::new(3);
        for lap in 0..10 {
            for i in 0..3 {
                q.push(lap * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(lap * 3 + i));
            }
        }
    }

    #[test]
    fn concurrent_producers_preserve_per_producer_order() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 10_000;
        let q = Arc::new(ArrayQueue::new(64));
        let popped = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        // Spin until accepted: this test wants conservation,
                        // not drop policy.
                        let mut v = p << 32 | i;
                        while let Err(back) = q.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = q.clone();
            let popped = &popped;
            s.spawn(move || {
                let mut got = Vec::new();
                while got.len() < (PRODUCERS * PER) as usize {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                *popped.lock().unwrap() = got;
            });
        });
        let got = popped.into_inner().unwrap();
        assert_eq!(got.len(), (PRODUCERS * PER) as usize);
        let mut last = [None::<u64>; PRODUCERS as usize];
        for v in got {
            let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p} reordered: {i} after {prev}");
            }
            last[p] = Some(i);
        }
        for (p, l) in last.iter().enumerate() {
            assert_eq!(*l, Some(PER - 1), "producer {p} lost elements");
        }
    }

    #[test]
    fn drops_remaining_elements() {
        let q = ArrayQueue::new(8);
        let token = Arc::new(());
        for _ in 0..5 {
            q.push(token.clone()).unwrap();
        }
        assert_eq!(Arc::strong_count(&token), 6);
        drop(q);
        assert_eq!(Arc::strong_count(&token), 1);
    }
}
