//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-model serde. No `syn`/`quote` (the build is offline), so
//! the item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is emitted as source text. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields (object in declaration order)
//! * newtype structs (transparent) and tuple structs (array)
//! * enums with unit / newtype / tuple / struct variants (externally tagged)
//! * simple type generics (`Foo<T>`), each param bounded by the derived trait
//!
//! Field *types* are never parsed: the generated code leans on type
//! inference (`serde::Deserialize::from_value(...)?` infers the field type),
//! which is what keeps a full type grammar out of this macro.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    type_params: Vec<String>,
    lifetimes: Vec<String>,
    shape: Shape,
}

/// Skip one `#[...]` / `#![...]` attribute if `i` points at its `#`.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            *i += 1;
            if let Some(TokenTree::Punct(q)) = tokens.get(*i) {
                if q.as_char() == '!' {
                    *i += 1;
                }
            }
            *i += 1; // the [...] group
            return true;
        }
    }
    false
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tokens: &[TokenTree], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Parse `<...>` generics starting at the `<`; returns (type params, lifetimes)
/// and leaves `i` after the closing `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut type_params = Vec::new();
    let mut lifetimes = Vec::new();
    let mut depth = 0i32;
    let mut expecting_param = false;
    let mut in_bound = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                if depth == 1 {
                    expecting_param = true;
                    in_bound = false;
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return (type_params, lifetimes);
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
                in_bound = false;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                in_bound = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 && !in_bound => {
                if expecting_param {
                    if let Some(lt) = ident_at(tokens, *i + 1) {
                        lifetimes.push(format!("'{lt}"));
                    }
                    expecting_param = false;
                }
                *i += 1; // the lifetime ident
            }
            Some(TokenTree::Ident(id)) if depth == 1 && expecting_param && !in_bound => {
                let name = id.to_string();
                if name == "const" {
                    panic!("serde_derive stub: const generics are not supported");
                }
                type_params.push(name);
                expecting_param = false;
            }
            Some(_) => {}
            None => panic!("serde_derive stub: unterminated generics"),
        }
        *i += 1;
    }
}

/// Count comma-separated segments in a tuple-field token list (angle-aware).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut seen_any = false;
    let mut last_was_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                last_was_comma = true;
                continue;
            }
            _ => {}
        }
        seen_any = true;
        last_was_comma = false;
    }
    if !seen_any {
        0
    } else if last_was_comma {
        fields - 1 // trailing comma
    } else {
        fields
    }
}

/// Extract field names from a named-field body (`{ a: T, pub b: U }`).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if skip_attr(tokens, &mut i) {
            continue;
        }
        if ident_at(tokens, i).as_deref() == Some("pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        let name = ident_at(tokens, i).unwrap_or_else(|| {
            panic!(
                "serde_derive stub: expected field name, got {:?}",
                tokens.get(i)
            )
        });
        names.push(name);
        i += 1;
        assert!(
            is_punct(tokens, i, ':'),
            "serde_derive stub: expected ':' after field name"
        );
        // Skip the type: advance to the next top-level comma (angle-aware).
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if skip_attr(tokens, &mut i) {
            continue;
        }
        let name = ident_at(tokens, i).unwrap_or_else(|| {
            panic!(
                "serde_derive stub: expected variant name, got {:?}",
                tokens.get(i)
            )
        });
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Unnamed(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        if is_punct(tokens, i, ',') {
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    while skip_attr(&tokens, &mut i) {}
    if ident_at(&tokens, i).as_deref() == Some("pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = ident_at(&tokens, i).unwrap_or_else(|| {
        panic!(
            "serde_derive stub: expected struct/enum, got {:?}",
            tokens.get(i)
        )
    });
    assert!(
        kind == "struct" || kind == "enum",
        "serde_derive stub: only structs and enums are supported (got {kind})"
    );
    i += 1;
    let name = ident_at(&tokens, i).expect("serde_derive stub: expected item name");
    i += 1;
    let (type_params, lifetimes) = if is_punct(&tokens, i, '<') {
        parse_generics(&tokens, &mut i)
    } else {
        (Vec::new(), Vec::new())
    };
    // Skip any `where` clause: advance to the body group / tuple parens.
    let shape = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break if kind == "struct" {
                    Shape::Struct(Fields::Named(parse_named_fields(&inner)))
                } else {
                    Shape::Enum(parse_variants(&inner))
                };
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break Shape::Struct(Fields::Unnamed(count_tuple_fields(&inner)));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Shape::Struct(Fields::Unit),
            Some(_) => i += 1,
            None => break Shape::Struct(Fields::Unit),
        }
    };
    Item {
        name,
        type_params,
        lifetimes,
        shape,
    }
}

/// `impl<...> serde::Trait for Name<...>` header pieces.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    let mut params: Vec<String> = item.lifetimes.clone();
    params.extend(
        item.type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}")),
    );
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let mut args: Vec<String> = item.lifetimes.clone();
    args.extend(item.type_params.iter().cloned());
    let ty_generics = if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    };
    (impl_generics, ty_generics)
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Struct(Fields::Unnamed(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Unnamed(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Unnamed(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Unnamed(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{ig} ::serde::Serialize for {name}{tg} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn named_field_inits(fields: &[String], obj: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::__field({obj}, \"{f}\"))?,")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits = named_field_inits(fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Struct(Fields::Unnamed(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(Fields::Unnamed(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Unnamed(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Unnamed(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{v}\"))?;\n\
                                if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple length for {name}::{v}\")); }}\n\
                                ::std::result::Result::Ok({name}::{v}({}))\n\
                            }}",
                            inits.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits = named_field_inits(fs, "__obj");
                        Some(format!(
                            "\"{v}\" => {{\n\
                                let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}::{v}\"))?;\n\
                                ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                            }}",
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant {{}} for {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__k, __inner) = &__o[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant {{}} for {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"invalid value for enum {name}: {{:?}}\", __other))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}
