//! Vendored `rayon` API subset. `par_iter`/`par_iter_mut`/`par_chunks`/
//! `par_chunks_mut` return the corresponding *sequential* std iterators, so
//! every std adapter (`zip`, `enumerate`, `filter`, `for_each`, `collect`)
//! keeps working unchanged. FEVES gets its device-level concurrency from
//! `crossbeam::scope` stripes in the framework layer; intra-stripe rayon
//! parallelism degrades to sequential execution on this offline build, which
//! changes wall-clock only, never results.

/// `par_iter`/`par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for rayon's parallel iterator.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Sequential stand-in for rayon's parallel chunk iterator.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for rayon's parallel mutable iterator.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Sequential stand-in for rayon's parallel mutable chunk iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Owned containers (`Vec`, ranges) — `into_par_iter`.
pub trait IntoParallelIterator {
    /// The sequential iterator standing in for the parallel one.
    type Iter: Iterator;
    /// Sequential stand-in for rayon's consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_adapters_compose() {
        let v = vec![1u32, 2, 3, 4, 5, 6];
        let evens: Vec<u32> = v.par_iter().copied().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![2, 4, 6]);

        let mut out = vec![0u32; 6];
        out.par_chunks_mut(2)
            .zip(v.par_chunks(2))
            .for_each(|(o, i)| {
                o.copy_from_slice(i);
            });
        assert_eq!(out, v);

        let mut w = vec![0usize; 4];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        assert_eq!(w, vec![0, 1, 4, 9]);

        let sum: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(sum, 45);
    }
}
