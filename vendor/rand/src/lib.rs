//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal re-implementation of exactly the surface FEVES uses:
//! [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//! `gen`, `gen_range` (over half-open and inclusive integer/float ranges)
//! and `gen_bool`. Generators are deterministic for a given seed, which is
//! all the simulator's seeded-noise and synthetic-sequence machinery needs.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (SplitMix64-expanded, like upstream rand).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` (unbiased via rejection of the tail).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        Standard::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Included generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Xoshiro256** — small, fast, high-quality; stands in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Never all-zero.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xD1B54A32D192ED03,
                    0x8CB92BA72F3D8DD7,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-20i32..20);
            assert!((-20..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        assert!(vals.iter().any(|&v| v != vals[0]), "constant output");
    }
}
