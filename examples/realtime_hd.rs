//! The paper's headline experiment: real-time 1080p H.264/AVC inter-loop
//! encoding on commodity CPU+GPU systems.
//!
//! Sweeps the three evaluated platforms over search-area sizes and
//! reference-frame counts (timing mode — the virtual platform carries the
//! load; see DESIGN.md §2) and prints which configurations achieve ≥25 fps.
//!
//! ```sh
//! cargo run --release --example realtime_hd
//! ```

use feves::core::prelude::*;

fn fps(platform: Platform, sa: u16, n_ref: usize) -> f64 {
    let params = EncodeParams {
        search_area: SearchArea(sa),
        n_ref,
        ..Default::default()
    };
    let mut enc = FevesEncoder::new(platform, EncoderConfig::full_hd(params)).unwrap();
    enc.run_timing(20).steady_fps(n_ref + 3)
}

fn main() {
    println!("FEVES on full-HD (1080p) IPPP, QP 27/28, FSBM — ≥25 fps is real-time\n");
    let platforms = [
        ("SysNF ", Platform::sys_nf as fn() -> Platform),
        ("SysNFF", Platform::sys_nff),
        ("SysHK ", Platform::sys_hk),
    ];

    println!("— search-area sweep (1 reference frame) —");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "system", "32x32", "64x64", "128x128", "256x256"
    );
    for (name, p) in &platforms {
        let row: Vec<String> = [32u16, 64, 128, 256]
            .iter()
            .map(|&sa| {
                let f = fps(p(), sa, 1);
                format!("{f:6.1}{}", if f >= 25.0 { " *" } else { "  " })
            })
            .collect();
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            name, row[0], row[1], row[2], row[3]
        );
    }

    println!("\n— reference-frame sweep (32x32 search area) —");
    print!("{:>8}", "system");
    for rf in 1..=8 {
        print!(" {rf:>8}");
    }
    println!();
    for (name, p) in &platforms {
        print!("{name:>8}");
        for rf in 1..=8usize {
            let f = fps(p(), 32, rf);
            print!(" {:>6.1}{}", f, if f >= 25.0 { " *" } else { "  " });
        }
        println!();
    }
    println!("\n(*) real-time. Expected per the paper: all systems real-time at");
    println!("32x32/1RF; SysHK also at 64x64/1RF and at 32x32 up to 4 RFs.");
}
