//! Encode a YUV4MPEG2 (.y4m) file with the FEVES functional pipeline and
//! write the reconstructed sequence next to it.
//!
//! ```sh
//! cargo run --release --example y4m_encode -- input.y4m [recon.y4m]
//! ```
//!
//! Without arguments a small synthetic clip is generated, written to
//! `target/demo_input.y4m`, encoded, and reconstructed to
//! `target/demo_recon.y4m` — so the example is runnable out of the box.

use feves::core::prelude::*;
use feves::video::y4m::{Y4mHeader, Y4mReader, Y4mWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (input, output) = match args.len() {
        1 => {
            // Self-contained demo input.
            std::fs::create_dir_all("target").ok();
            let path = "target/demo_input.y4m".to_string();
            let mut synth = SynthConfig::toys_and_calendar();
            synth.resolution = Resolution::QCIF;
            let mut seq = SynthSequence::new(synth);
            let header = Y4mHeader {
                resolution: Resolution::QCIF,
                fps: (25, 1),
            };
            let mut w = Y4mWriter::new(BufWriter::new(File::create(&path).unwrap()), header);
            for _ in 0..8 {
                w.write_frame(&seq.next_frame()).unwrap();
            }
            w.finish().unwrap();
            println!("generated demo input: {path}");
            (path, "target/demo_recon.y4m".to_string())
        }
        2 => (args[1].clone(), format!("{}.recon.y4m", args[1])),
        _ => (args[1].clone(), args[2].clone()),
    };

    let mut reader = Y4mReader::new(BufReader::new(File::open(&input).expect("open input")))
        .expect("parse y4m header");
    let header = reader.header();
    let frames = reader.read_all().expect("read frames");
    println!(
        "{}: {}x{} @ {}/{} fps, {} frames",
        input,
        header.resolution.width,
        header.resolution.height,
        header.fps.0,
        header.fps.1,
        frames.len()
    );

    let params = EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.resolution = header.resolution;
    cfg.mode = ExecutionMode::Functional;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).expect("config");

    let mut writer = Y4mWriter::new(BufWriter::new(File::create(&output).unwrap()), header);
    let mut report_frames = Vec::new();
    for f in &frames {
        let rep = enc.encode_frame(f);
        // Full YUV reconstruction: coded luma + coded chroma.
        let mut recon_frame = f.clone();
        let (y, u, v) = enc.last_reconstruction_yuv().unwrap();
        recon_frame.y_mut().copy_from(y);
        recon_frame.u_mut().copy_from(u);
        recon_frame.v_mut().copy_from(v);
        writer.write_frame(&recon_frame).unwrap();
        println!(
            "frame {:>3} ({}) — {:>8} bits, PSNR {:>6.2} dB, simulated {:>6.2} ms",
            rep.frame,
            if rep.is_intra { "I" } else { "P" },
            rep.bits.unwrap_or(0),
            rep.psnr_y.unwrap_or(f64::NAN),
            rep.tau_tot * 1e3
        );
        report_frames.push(rep);
    }
    writer.finish().unwrap();
    let report = EncodeReport::new("SysHK".into(), report_frames);
    println!(
        "\nwrote {output} — mean PSNR {:.2} dB, {} total bits",
        report.mean_psnr().unwrap_or(f64::NAN),
        report.total_bits()
    );
}
