//! Self-adaptation demo (the Fig 7 phenomenon): a non-dedicated system
//! suddenly slows one device; FEVES' per-frame performance characterization
//! redistributes the load and recovers within a single inter-frame.
//!
//! ```sh
//! cargo run --release --example adaptive_rebalance
//! ```

use feves::core::prelude::*;

fn main() {
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.noise_amp = 0.02;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();

    // "Other processes start running" on the GPU for frames 12-14, and on
    // two CPU cores for frames 25-28.
    enc.add_perturbation(Perturbation {
        device: 0,
        frames: 12..15,
        factor: 0.45,
    });
    for core in [1, 2] {
        enc.add_perturbation(Perturbation {
            device: core,
            frames: 25..29,
            factor: 0.3,
        });
    }

    println!("SysHK, 1080p, SA 32x32, 2 RFs — GPU slowed 12-14, cores 1-2 slowed 25-28\n");
    println!(
        "{:>5} {:>9} {:>7} {:>22} {:>22}",
        "frame", "time[ms]", "fps", "ME rows GPU/cores", "SME rows GPU/cores"
    );
    let report = enc.run_timing(40);
    for f in report.inter_frames() {
        let d = f.distribution.as_ref().unwrap();
        let cpu_me: usize = d.me[1..].iter().sum();
        let cpu_sme: usize = d.sme[1..].iter().sum();
        let marker = if (12..15).contains(&f.frame) || (25..29).contains(&f.frame) {
            "  <- perturbed"
        } else {
            ""
        };
        println!(
            "{:>5} {:>9.2} {:>7.1} {:>14}/{:<7} {:>14}/{:<7}{}",
            f.frame,
            f.tau_tot * 1e3,
            f.fps(),
            d.me[0],
            cpu_me,
            d.sme[0],
            cpu_sme,
            marker
        );
    }
    println!(
        "\nWatch the GPU's row share drop while it is perturbed and snap back\n\
         one frame after the perturbation ends — the paper's 'very fast\n\
         recovery of the performance curves'."
    );
}
