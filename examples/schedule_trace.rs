//! Visualize the Fig 4 execution timeline: encode a few 1080p frames on
//! SysHK and print the ASCII Gantt chart of a steady-state frame — kernels
//! and transfers per device lane with the τ1/τ2 synchronization points.
//!
//! ```sh
//! cargo run --release --example schedule_trace
//! ```

use feves::core::prelude::*;

fn main() {
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();

    println!("== frame 1: the equidistant probe (initialization phase) ==\n");
    enc.encode_inter_timing();
    println!("{}", enc.last_trace().unwrap().render_gantt(100));

    for _ in 0..4 {
        enc.encode_inter_timing();
    }
    println!("== frame 6: LP-balanced steady state ==\n");
    let report = enc.encode_inter_timing();
    let trace = enc.last_trace().unwrap();
    println!("{}", trace.render_gantt(100));
    println!(
        "steady frame time {:.2} ms ({:.1} fps); device lanes: dev0 = GPU_K\n\
         (with its INT stream and two copy engines), dev1..dev4 = CPU_H cores.\n\
         Note ME∥INT on the GPU, SF↓ overlapping kernels, the τ barriers, and\n\
         the R* tail on dev0 after τ2.",
        report.tau_tot * 1e3,
        report.fps()
    );

    // Machine-readable version for tooling.
    std::fs::create_dir_all("target").ok();
    let json = serde_json::to_string_pretty(trace).unwrap();
    std::fs::write("target/schedule_trace.json", &json).unwrap();
    println!("\n(wrote target/schedule_trace.json — {} tasks)", trace.tasks.len());
}
