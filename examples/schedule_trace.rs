//! Visualize the Fig 4 execution timeline: encode a few 1080p frames on
//! SysHK and print the ASCII Gantt chart of a steady-state frame — kernels
//! and transfers per device lane with the τ1/τ2 synchronization points.
//!
//! ```sh
//! cargo run --release --example schedule_trace
//! ```

use feves::core::prelude::*;
use feves::obs::MemoryRecorder;
use std::sync::Arc;

fn main() {
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    let rec = Arc::new(MemoryRecorder::new());
    feves::obs::install(rec.clone()); // catch the library-internal spans too
    enc.set_recorder(rec.clone());

    println!("== frame 1: the equidistant probe (initialization phase) ==\n");
    let mut frames = vec![enc.encode_inter_timing()];
    println!("{}", enc.last_trace().unwrap().render_gantt(100));

    for _ in 0..4 {
        frames.push(enc.encode_inter_timing());
    }
    println!("== frame 6: LP-balanced steady state ==\n");
    let report = enc.encode_inter_timing();
    frames.push(report.clone());
    let trace = enc.last_trace().unwrap();
    println!("{}", trace.render_gantt(100));
    println!(
        "steady frame time {:.2} ms ({:.1} fps); device lanes: dev0 = GPU_K\n\
         (with its INT stream and two copy engines), dev1..dev4 = CPU_H cores.\n\
         Note ME∥INT on the GPU, SF↓ overlapping kernels, the τ barriers, and\n\
         the R* tail on dev0 after τ2.",
        report.tau_tot * 1e3,
        report.fps()
    );

    // Percentile rollups over the six encoded frames, straight off the
    // per-frame reports.
    let seq = EncodeReport::new("SysHK".into(), frames);
    if let (Some(tau), Some(sched)) = (seq.tau_tot_rollup(), seq.sched_overhead_rollup()) {
        println!(
            "\nrollups over {} frames: tau_tot p50 {:.2} / p95 {:.2} / p99 {:.2} ms; \
             sched overhead p99 {:.1} us",
            seq.frames.len(),
            tau.p50,
            tau.p95,
            tau.p99,
            sched.p99 * 1e3
        );
    }

    // The same run through the metrics recorder.
    println!("\n== recorded metrics ==\n\n{}", rec.render_stats());

    // Machine-readable versions for tooling.
    std::fs::create_dir_all("target").ok();
    let json = serde_json::to_string_pretty(trace).unwrap();
    std::fs::write("target/schedule_trace.json", &json).unwrap();
    println!(
        "\n(wrote target/schedule_trace.json — {} tasks)",
        trace.tasks.len()
    );
    let chrome = trace.to_chrome_trace().to_json();
    std::fs::write("target/schedule_trace.chrome.json", &chrome).unwrap();
    println!(
        "(wrote target/schedule_trace.chrome.json — open at ui.perfetto.dev or chrome://tracing)"
    );
}
