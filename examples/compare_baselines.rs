//! Scheduler shoot-out: the Algorithm-2 LP against the equidistant split
//! (related work [8] / the paper's init phase), the per-module proportional
//! balancer (prior work [9]) and the single-device executions, on the
//! dual-GPU SysNFF platform.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use feves::core::prelude::*;

fn run(balancer: BalancerKind, platform: Platform, n_ref: usize) -> EncodeReport {
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.balancer = balancer;
    let mut enc = FevesEncoder::new(platform, cfg).unwrap();
    enc.run_timing(20)
}

fn main() {
    println!("SysNFF (CPU_N + 2x GPU_F), 1080p, SA 32x32 — steady-state fps\n");
    println!(
        "{:>16} {:>8} {:>8} {:>8}",
        "balancer", "1 RF", "2 RF", "4 RF"
    );
    let rows: Vec<(&str, BalancerKind)> = vec![
        ("feves (Alg 2)", BalancerKind::Feves),
        ("proportional[9]", BalancerKind::Proportional),
        ("equidistant[8]", BalancerKind::Equidistant),
        ("GPU_F only", BalancerKind::SingleAccelerator(0)),
        ("CPU_N only", BalancerKind::CpuOnly),
    ];
    let mut feves_fps = [0.0f64; 3];
    for (name, kind) in rows {
        let mut cells = Vec::new();
        for (i, rf) in [1usize, 2, 4].iter().enumerate() {
            let fps = run(kind, Platform::sys_nff(), *rf).steady_fps(rf + 3);
            if name.starts_with("feves") {
                feves_fps[i] = fps;
            }
            cells.push(format!("{fps:7.1}{}", if fps >= 25.0 { "*" } else { " " }));
        }
        println!(
            "{:>16} {:>8} {:>8} {:>8}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!("\n(*) ≥ 25 fps. The LP accounts for communication, copy-engine");
    println!("concurrency and cross-module coupling, which the per-module and");
    println!("equidistant policies ignore — hence the gap.");
    println!(
        "\nFEVES speedup vs single GPU_F at 1 RF: {:.2}x",
        feves_fps[0]
            / run(BalancerKind::SingleAccelerator(0), Platform::sys_nff(), 1).steady_fps(4)
    );
}
