//! Quickstart: functionally encode a short synthetic sequence on a
//! simulated CPU+GPU platform and print per-frame statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use feves::core::prelude::*;

fn main() {
    // A small synthetic clip (CIF) so the real kernels run in seconds.
    let mut synth_cfg = SynthConfig::rolling_tomatoes();
    synth_cfg.resolution = Resolution::CIF;
    let frames = SynthSequence::new(synth_cfg).take_frames(10);

    // Encoder: H.264-style inter loop, 32×32 full search, 2 reference
    // frames, on the paper's SysHK platform (Haswell CPU + Kepler GPU).
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        ..Default::default()
    };
    let mut config = EncoderConfig::full_hd(params);
    config.resolution = Resolution::CIF;
    config.mode = ExecutionMode::Functional;

    let mut encoder = FevesEncoder::new(Platform::sys_hk(), config).expect("valid config");
    println!("platform: {}", encoder.platform().name);
    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>10} {:>8}",
        "frame", "type", "time[ms]", "fps", "bits", "PSNR[dB]"
    );

    let report = encoder.encode_sequence(&frames);
    for f in &report.frames {
        println!(
            "{:>5} {:>6} {:>9.2} {:>9.1} {:>10} {:>8.2}",
            f.frame,
            if f.is_intra { "I" } else { "P" },
            f.tau_tot * 1e3,
            f.fps(),
            f.bits.unwrap_or(0),
            f.psnr_y.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nmean speed {:.1} fps | mean PSNR {:.2} dB | total {} bits",
        report.mean_fps(),
        report.mean_psnr().unwrap_or(f64::NAN),
        report.total_bits()
    );
    println!(
        "note: frame times come from the simulated heterogeneous platform \
         (virtual clock), while bits/PSNR come from the real kernels."
    );
}
